"""Quickstart: detect anomalies in a synthetic star field with AERO.

Generates a small synthetic astronomical dataset (independent stars plus
concurrent noise plus injected celestial events), trains the two-stage AERO
detector and prints the evaluation under the paper's POT + point-adjust
protocol.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import AeroConfig, AeroDetector
from repro.data import load_synthetic


def main() -> None:
    # A scaled-down version of the paper's SyntheticMiddle dataset so the
    # example runs in well under a minute on a laptop CPU.
    dataset = load_synthetic("SyntheticMiddle", scale=0.08)
    print(f"dataset: {dataset.name}")
    print(f"  train shape : {dataset.train.shape}")
    print(f"  test shape  : {dataset.test.shape}")
    print(f"  anomaly rate: {100 * dataset.anomaly_rate:.3f}%")
    print(f"  noise rate  : {100 * dataset.noise_rate:.3f}%")

    # AeroConfig.paper() holds the paper's exact hyperparameters (W=200,
    # omega=60, ...); the fast profile shrinks them for CPU execution.
    config = AeroConfig.fast(window=40, short_window=12).scaled(
        max_epochs_stage1=15, max_epochs_stage2=8, learning_rate=5e-3
    )
    detector = AeroDetector(config, verbose=True)
    # Hold out the last 20% of training windows: early stopping monitors the
    # holdout loss and each stage keeps its best-loss epoch's weights
    # (repro.training.TrainingSession), which stabilises this small workload.
    detector.fit(dataset.train, validation_split=0.2)

    report = detector.evaluate(dataset.test, dataset.test_labels)
    result = report.outcome.result
    print("\nAERO evaluation (POT threshold + point adjust):")
    print(f"  precision = {100 * result.precision:.2f}%")
    print(f"  recall    = {100 * result.recall:.2f}%")
    print(f"  F1        = {100 * result.f1:.2f}%")
    print(f"  threshold = {report.outcome.threshold:.4f}")

    labels = detector.detect(dataset.test)
    flagged = np.flatnonzero(labels.any(axis=1))
    if flagged.size:
        print(f"\nflagged {flagged.size} timestamps; first alarms at t = {flagged[:5].tolist()}")


if __name__ == "__main__":
    main()
