"""Closed-loop continual learning: drift trips → retrain → canary → promote.

The paper's fleet is meant to run unattended for months, but a fixed model
goes stale the first time the instrument refocuses or the seasonal
baseline moves.  This walkthrough closes the loop that keeps it serving:
a :class:`~repro.training.ContinualLearningController` wrapped around the
live :class:`~repro.streaming.FleetManager`, watching its drift monitor
and deciding — with no human in the loop — when to retrain, whether the
candidate is safe to promote, and whether a fresh promotion has to be
rolled back.

1. build quiet and drift-faulted variants of one survey night (shared,
   bit-identical train/calibration stretches), fit one detector and one
   drift reference for both;
2. serve the *drifted* night through the controller: the monitor trips
   mid-night, the loop fine-tunes a candidate on the recorded traffic
   ring (warm-started from the live registry artifact), shadow-scores it
   against the live model with synthetic probes injected, and gates
   promotion on explicit budgets (recall, quiet-star false alerts, score
   PSI).  An under-trained first candidate is *rejected* by the recall
   gate; the second, trained on more history, passes, is published with
   fresh calibration + drift sidecars, deployed, and survives its watch
   window;
3. serve the *quiet* night through an identical controller: it never
   triggers — the baseline version serves untouched end to end;
4. every decision is a structured :class:`~repro.training.LoopEvent`, and
   the whole loop is deterministic under its seed.

Run with:  PYTHONPATH=src python examples/continual_loop.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.obs import calibrate_drift_monitor
from repro.simulation import ReplayHarness, ScenarioConfig, build_scenario
from repro.streaming import AlertPolicy, FleetManager
from repro.training import ContinualLearningController, ModelRegistry

#: A long clean-cadence night so the full trigger → reject → retrigger →
#: promote → watch-clear arc fits inside one run.
NIGHT = dict(
    seed=11, train_length=240, calibration_length=160, night_length=280,
    num_events=0, num_dropouts=0, nan_fraction=0.0,
    num_duplicate_frames=0, num_reordered_frames=0,
)

MONITOR = dict(
    halflife=48, check_interval=4, min_observations=64, warmup_ticks=48,
    psi_trip=1.0, psi_clear=0.30, ks_trip=0.60, ks_clear=0.20,
    trip_after=2, clear_after=8,
)


def build_controller(scenario, detector, cal_scores, threshold, root):
    fleet = FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
        drift_monitor=calibrate_drift_monitor(
            cal_scores, num_stars=scenario.num_stars, **MONITOR
        ),
    )
    controller = ContinualLearningController(
        fleet,
        ModelRegistry(root / "registry"),
        "gwac-field",
        root / "work",
        history_ticks=160, min_history_ticks=80, calibration_ticks=48,
        cooldown_ticks=48, watch_ticks=48, pot_q=5e-3, seed=23,
    )
    return controller, fleet


def main() -> None:
    # --- 1. one night, two variants, one detector -----------------------
    quiet = build_scenario(ScenarioConfig(num_drift_stars=0, **NIGHT))
    drifted = build_scenario(
        ScenarioConfig(num_drift_stars=2, drift_amplitude=1.0, **NIGHT)
    )
    assert np.array_equal(quiet.train, drifted.train)

    config = AeroConfig.fast(window=24, short_window=8).scaled(
        max_epochs_stage1=2, max_epochs_stage2=1, learning_rate=5e-3,
        d_model=16, num_heads=2, train_stride=3, batch_size=16,
    )
    detector = AeroDetector(config)
    detector.fit(quiet.train, quiet.train_timestamps)
    cal_scores = detector.score(quiet.calibration, quiet.calibration_timestamps)
    threshold = float(pot_threshold(cal_scores, q=5e-3))
    print(f"live model calibrated: serving threshold {threshold:.3f}")

    with tempfile.TemporaryDirectory() as tmp:
        # --- 2. the drifted night closes the loop -----------------------
        controller, fleet = build_controller(
            drifted, detector, cal_scores, threshold, Path(tmp) / "drifted"
        )
        ReplayHarness(controller, drifted).run()

        print(f"\ndrifted night — {len(controller.events)} loop decisions:")
        for event in controller.events:
            print(f"  {event.format()}")

        fail = next(e for e in controller.events if e.kind == "canary_fail")
        print(f"\ncycle 1 rejected by gates {fail.detail['failed_gates']}: "
              f"candidate recall {fail.detail['candidate_recall']:.3f} vs "
              f"live {fail.detail['live_recall']:.3f} — an under-trained "
              f"candidate never reaches the fleet")
        promote = next(e for e in controller.events if e.kind == "promote")
        print(f"cycle 2 promoted v{promote.detail['version']:04d} at tick "
              f"{promote.step} (threshold {promote.detail['threshold']:.3f}) "
              f"and survived its watch window")
        print(f"now serving: {fleet.model_version} "
              f"(threshold {float(fleet.threshold):.3f}, "
              f"{fleet.drift_monitor.tripped_stars} stars still tripped)")
        assert controller.live_version == 2
        assert fleet.drift_monitor.tripped_stars == 0

        # --- 3. the quiet night never triggers --------------------------
        controller, fleet = build_controller(
            quiet, detector, cal_scores, threshold, Path(tmp) / "quiet"
        )
        ReplayHarness(controller, quiet).run()
        kinds = [event.kind for event in controller.events]
        print(f"\nquiet night — loop decisions: {kinds}")
        print(f"still serving: {fleet.model_version} "
              f"(threshold {float(fleet.threshold):.3f}, "
              f"{fleet.drift_monitor.trips_total} drift trips all night)")
        assert kinds == ["baseline"]
        assert controller.cycles == 0


if __name__ == "__main__":
    main()
