"""Model-quality observability: drift monitoring + the incident flight recorder.

A fleet that silently degrades is worse than one that pages: score drift
(instrument refocus, seasonal baseline shift, a stale model) inflates or
buries alerts long before anyone looks at a dashboard.  This walkthrough
builds *two variants of the same survey night* — one quiet, one with
baseline drift injected into two stars — and shows the model-quality
stack catching the difference:

1. build quiet and drift-faulted nights that share bit-identical train
   and calibration stretches (fault knobs apply after the pre-night data
   is drawn), so one detector and one drift reference serve both;
2. calibrate a :class:`~repro.obs.DriftMonitor` from the held-out
   calibration scores — the reference sketch the live score stream is
   compared against (PSI + KS, with hysteresis);
3. serve the quiet night: the monitor stays silent and the
   :class:`~repro.obs.FlightRecorder` never dumps;
4. serve the drifted night: the monitor trips, the fleet freezes the
   recorder's ring into an on-disk flight record;
5. replay the flight record bit-identically through a fresh fleet — the
   post-mortem re-runs the actual incident, not a reconstruction;
6. wrap the fleet in a :class:`~repro.streaming.StreamingService` with an
   :class:`~repro.obs.SLOMonitor` to see the serving-level SLO windows
   (tick latency, ingest drops, alert rate, POT refit health).

Run with:  PYTHONPATH=src python examples/drift_flight_recorder.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.obs import FlightRecord, FlightRecorder, SLOMonitor, calibrate_drift_monitor
from repro.simulation import (
    ReplayHarness,
    ScenarioConfig,
    build_scenario,
    replay_flight_record,
)
from repro.streaming import AlertPolicy, FleetManager, StreamingService

#: A clean-cadence night (no dropouts/duplicates) so the drift signal is
#: the only difference between the two runs.
NIGHT = dict(
    seed=11, train_length=240, calibration_length=160, night_length=200,
    num_events=0, num_dropouts=0, nan_fraction=0.0,
    num_duplicate_frames=0, num_reordered_frames=0,
)

#: Serving-monitor settings: ``warmup_ticks`` covers the fleet's startup
#: seam (first windows straddle the seeded-context/night gap), and the
#: trip bound sits ~2x above the quiet night's worst sustained PSI.
MONITOR = dict(
    halflife=48, check_interval=4, min_observations=64, warmup_ticks=48,
    psi_trip=1.0, psi_clear=0.30, ks_trip=0.60, ks_clear=0.20,
    trip_after=2, clear_after=8,
)


def build_fleet(detector, scenario, threshold, **kwargs) -> FleetManager:
    return FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
        **kwargs,
    )


def main() -> None:
    # --- 1. one night, two variants ------------------------------------
    quiet = build_scenario(ScenarioConfig(num_drift_stars=0, **NIGHT))
    drifted = build_scenario(
        ScenarioConfig(num_drift_stars=2, drift_amplitude=1.0, **NIGHT)
    )
    assert np.array_equal(quiet.train, drifted.train)
    for fault in drifted.faults:
        if fault.kind == "drift":
            print(f"injected: baseline drift on star {fault.star} "
                  f"ticks [{fault.start}, {fault.end})")

    config = AeroConfig.fast(window=24, short_window=8).scaled(
        max_epochs_stage1=2, max_epochs_stage2=1, learning_rate=5e-3,
        d_model=16, num_heads=2, train_stride=3, batch_size=16,
    )
    detector = AeroDetector(config)
    detector.fit(quiet.train, quiet.train_timestamps)

    # --- 2. threshold + drift reference from the same held-out scores ---
    cal_scores = detector.score(quiet.calibration, quiet.calibration_timestamps)
    threshold = pot_threshold(cal_scores, q=5e-3)
    print(f"serving threshold {threshold:.3f}; drift reference from "
          f"{cal_scores.shape[0]} calibration ticks")

    # --- 3. the quiet night: monitor stays silent ----------------------
    fleet = build_fleet(
        detector, quiet, threshold,
        drift_monitor=calibrate_drift_monitor(
            cal_scores, num_stars=quiet.num_stars, **MONITOR
        ),
        recorder=FlightRecorder(capacity=256),
    )
    ReplayHarness(fleet, quiet).run()
    psi, ks = fleet.drift_monitor.divergence()
    print(f"\nquiet night: trips {fleet.drift_monitor.trips_total}, "
          f"flight dumps {len(fleet.recorder.records)}, "
          f"worst PSI {psi.max():.2f}, worst KS {ks.max():.2f}")

    with tempfile.TemporaryDirectory() as tmp:
        # --- 4. the drifted night: trip -> flight record on disk -------
        recorder = FlightRecorder(capacity=256, dump_dir=Path(tmp) / "black-box")
        fleet = build_fleet(
            detector, drifted, threshold,
            drift_monitor=calibrate_drift_monitor(
                cal_scores, num_stars=drifted.num_stars, **MONITOR
            ),
            recorder=recorder,
        )
        ReplayHarness(fleet, drifted).run()
        monitor = fleet.drift_monitor
        tripped = np.flatnonzero(monitor.first_trip_step >= 0)
        psi, _ = monitor.divergence()
        print(f"drifted night: {monitor.tripped_stars} stars tripped "
              f"(first at tick {int(monitor.first_trip_step[tripped].min())}), "
              f"worst PSI {psi.max():.2f}")
        for star in tripped:
            print(f"  star {int(star)}: tripped at tick "
                  f"{int(monitor.first_trip_step[star])}, PSI {psi[star]:.2f}")
        record = recorder.records[0]
        print(f"flight record: {record.format()}")
        print(f"  dumped to {record.path.name}")

        # --- 5. the post-mortem replays bit-identically -----------------
        loaded = FlightRecord.load(record.path)
        _, mismatches = replay_flight_record(
            build_fleet(detector, drifted, threshold), loaded
        )
        print(f"replayed {loaded.num_ticks} ticks through a fresh fleet: "
              f"{len(mismatches)} mismatches")
        assert mismatches == []

    # --- 6. serving-level SLO windows ----------------------------------
    slo = SLOMonitor(latency_budget_ms=50.0)
    service = StreamingService(
        build_fleet(detector, quiet, threshold), max_queue=16, slo=slo
    )
    service.run(quiet.exposures, quiet.timestamps)
    print(f"\n{slo.format()}")
    print(f"fast-burning SLOs: {slo.burning() or 'none'}")


if __name__ == "__main__":
    main()
