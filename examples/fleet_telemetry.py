"""Fleet telemetry: metrics, tick tracing and health snapshots in one loop.

Telemetry is off by default and costs nothing (the default registry and
tracer are no-ops); one :func:`repro.obs.enable_telemetry` call before
building the serving stack turns the whole layer on.  This walkthrough:

1. enables telemetry and builds an instrumented fleet + ingestion service
   over a seeded survey night;
2. serves the night through :class:`~repro.streaming.StreamingService`
   with a :class:`~repro.obs.MetricsFlusher` appending JSONL metric
   snapshots as the queue drains;
3. polls live health snapshots mid-night (the surface a router or
   operator watches);
4. renders the registry in the Prometheus text exposition format — what a
   scrape endpoint would serve;
5. reads the span tracer's per-phase aggregates to see where tick time
   actually goes.

Run with:  PYTHONPATH=src python examples/fleet_telemetry.py
"""

import tempfile
from pathlib import Path

from repro.core import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.obs import (
    MetricsFlusher,
    enable_telemetry,
    get_tracer,
    read_jsonl_snapshots,
    render_prometheus,
)
from repro.simulation import ScenarioConfig, build_scenario
from repro.streaming import AlertPolicy, FleetManager, StreamingService


def main() -> None:
    # --- 1. telemetry on, then build the stack -------------------------
    # Components capture the default registry/tracer at construction, so
    # enable telemetry *before* building the fleet you want observed.
    registry = enable_telemetry()

    scenario = build_scenario(ScenarioConfig(seed=7))
    print(scenario.describe())

    config = AeroConfig.fast(window=32, short_window=8).scaled(
        max_epochs_stage1=8, max_epochs_stage2=4, learning_rate=5e-3,
        d_model=24, num_heads=2, train_stride=2, batch_size=16,
    )
    detector = AeroDetector(config)
    detector.fit(scenario.train, scenario.train_timestamps)
    threshold = pot_threshold(
        detector.score(scenario.calibration, scenario.calibration_timestamps), q=5e-3
    )

    fleet = FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
    )

    with tempfile.TemporaryDirectory() as tmp:
        # --- 2. serve the night, flushing metric snapshots periodically -
        jsonl = Path(tmp) / "metrics.jsonl"
        service = StreamingService(
            fleet, max_queue=16,
            flusher=MetricsFlusher(registry, jsonl, every_steps=100),
        )
        half = len(scenario.exposures) // 2
        service.run(scenario.exposures[:half], scenario.timestamps[:half])

        # --- 3. live health snapshots mid-night ------------------------
        print("\nmid-night health:")
        print(service.health().format())

        service.run(scenario.exposures[half:], scenario.timestamps[half:])
        service.flusher.flush()
        print("\nend-of-night health:")
        print(service.health().format())

        snapshots = read_jsonl_snapshots(jsonl)
        first, last = snapshots[0], snapshots[-1]
        print(
            f"\n{len(snapshots)} JSONL snapshots in {jsonl.name}: "
            f"fleet_ticks_total {first['counters']['fleet_ticks_total']:.0f} "
            f"-> {last['counters']['fleet_ticks_total']:.0f}"
        )

    # --- 4. the Prometheus scrape surface ------------------------------
    exposition = render_prometheus(registry)
    print(f"\nPrometheus exposition ({len(exposition.splitlines())} lines), excerpt:")
    for line in exposition.splitlines():
        if line.startswith(("fleet_ticks_total", "fleet_star_dropouts_total",
                            "service_dropped_total", "fleet_shard_gap_rate")):
            print(f"  {line}")

    # --- 5. where does tick time go? -----------------------------------
    print("\nper-phase span aggregates:")
    summary = get_tracer().summary()
    for name in ("fleet.step", "fleet.ingest", "fleet.forward",
                 "fleet.thresholds", "fleet.alerts"):
        stats = summary[name]
        print(f"  {name:<18s} x{stats.count:<5d} mean {stats.mean_ms:7.3f} ms "
              f"max {stats.max_ms:7.3f} ms")


if __name__ == "__main__":
    main()
