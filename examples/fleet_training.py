"""Train a shard of stars in parallel, publish, and hot-swap a live fleet.

The full fleet-scale training loop of :mod:`repro.training`:

1. train one detector per star group through a :class:`FleetTrainer` worker
   pool — per-star seeds, isolated failures, results independent of worker
   count;
2. publish every trained artifact into a versioned :class:`ModelRegistry`;
3. serve live exposures with a :class:`repro.streaming.FleetManager`;
4. retrain one drifted star *warm-started* from its published weights and
   publish the refresh as v2;
5. hot-swap the new version into the running fleet — the ring buffers keep
   every ingested row, so the very next tick serves the new model's scores.

Run with:  PYTHONPATH=src python examples/fleet_training.py
"""

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.core import AeroConfig
from repro.streaming import FleetManager
from repro.training import FleetTrainer, ModelRegistry, StarTask


def main() -> None:
    rng = np.random.default_rng(7)
    num_stars, num_variates, archive_epochs = 4, 4, 420
    series = {
        f"field-{i}": rng.normal(10.0, 1.0, size=(archive_epochs, num_variates))
        for i in range(num_stars)
    }

    config = AeroConfig.fast(window=32, short_window=10).scaled(
        max_epochs_stage1=6, max_epochs_stage2=4, learning_rate=5e-3
    )
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    workers = max(1, min(4, cores or 1))

    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)
        registry = ModelRegistry(workdir / "registry")

        # --- 1./2. parallel training, publishing straight into the registry
        trainer = FleetTrainer(
            config,
            workdir / "artifacts",
            workers=workers,
            executor="process" if workers > 1 else "serial",
            validation_split=0.2,
            registry=registry,
        )
        tasks = [StarTask(star_id=name, series=data) for name, data in series.items()]
        report = trainer.train(
            tasks,
            progress=lambda result, done, total: print(
                f"  [{done}/{total}] {result.star_id}: {result.status} "
                f"({result.duration_seconds:.1f}s)"
            ),
        )
        print(report.summary())
        for name in registry.names():
            version = registry.latest(name)
            print(f"  registry: {version.label} (seed {version.metadata['seed']})")

        # --- 3. serve field-0 live -------------------------------------
        fleet = FleetManager(registry.load_detector("field-0"), num_shards=3)
        live = rng.normal(10.0, 1.0, size=(6, 3, num_variates))
        for rows in live:
            result = fleet.step(rows)
        print(f"serving v1: tick {result.step}, threshold {result.threshold:.4f}")

        # --- 4. the star drifts: warm-started refresh ------------------
        drifted = series["field-0"] + rng.normal(0.02, 0.01, size=(archive_epochs, 1))
        refresh_config = config.scaled(max_epochs_stage1=2, max_epochs_stage2=2)
        refresh = FleetTrainer(refresh_config, workdir / "refresh", executor="serial").train(
            [
                StarTask(
                    star_id="field-0",
                    series=drifted,
                    warm_start=registry.latest("field-0").artifact_path,
                )
            ]
        )
        refreshed = refresh.result("field-0")
        print(
            f"refreshed field-0 in {refreshed.duration_seconds:.1f}s "
            f"({refreshed.history.stage1_epochs}+{refreshed.history.stage2_epochs} "
            "warm-started epochs)"
        )
        version = registry.publish(
            "field-0", refreshed.checkpoint_path, metadata={"refresh": "warm-start"}
        )

        # --- 5. hot-swap into the running fleet ------------------------
        registry.deploy("field-0", fleet, version=version.version)
        result = fleet.step(rng.normal(10.0, 1.0, size=(3, num_variates)))
        assert result.ready, "the swap must not drop buffered state"
        print(
            f"serving {version.label}: tick {result.step} scored with the new model "
            f"(threshold {result.threshold:.4f}), buffers intact"
        )


if __name__ == "__main__":
    main()
