"""Train once, checkpoint, and serve a fleet on the compiled runtime.

The full production loop of the compiled inference runtime
(:mod:`repro.runtime`):

1. train AERO offline on the unlabeled archive (Algorithm 1);
2. ``save()`` the fitted detector — config, weights, scaler statistics and
   POT calibration in one ``.npz`` artifact;
3. ``load()`` it back (as a serving process with no training history
   would) and ``compile()`` it into tape-free fused forward plans;
4. verify the compiled scores are bit-for-bit equal to the autograd path,
   and time both on single-window serving;
5. serve a fleet of camera-field shards through a
   :class:`repro.streaming.FleetManager` on the compiled backend — every
   exposure tick is one fused ``score_stack`` plan call.

Run with:  PYTHONPATH=src python examples/compiled_serving.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import AeroConfig, AeroDetector
from repro.data import load_astroset
from repro.streaming import AlertPolicy, FleetManager


def main() -> None:
    dataset = load_astroset("AstrosetLow", scale=0.05)
    print(f"{dataset.name}: {dataset.num_variates} stars/field, "
          f"{dataset.train_length} archive epochs, {dataset.test_length} live epochs")

    # --- 1. offline training ----------------------------------------------
    config = AeroConfig.fast(window=40, short_window=12).scaled(
        max_epochs_stage1=12, max_epochs_stage2=6, learning_rate=5e-3
    )
    detector = AeroDetector(config)
    detector.fit(dataset.train, dataset.train_timestamps)
    print(f"calibrated POT threshold: {detector.threshold():.4f}")

    # --- 2./3. checkpoint to disk, reload, compile ------------------------
    with tempfile.TemporaryDirectory() as workdir:
        checkpoint = detector.save(Path(workdir) / "aero.npz")
        print(f"checkpoint: {checkpoint.stat().st_size / 1024:.0f} KiB on disk")
        served = AeroDetector.load(checkpoint)
    compiled = served.compile()            # float64: bit-equal plans
    compiled32 = served.compile(dtype="float32")

    # --- 4. parity and single-window serving cost -------------------------
    batch_scores = served.score(dataset.test)
    assert np.array_equal(batch_scores, compiled.score(dataset.test))
    print("compiled scores match the autograd path bit for bit "
          f"({batch_scores.shape[0]} timestamps x {batch_scores.shape[1]} stars)")

    window, short = served.config.window, served.config.short_window
    scaled = served.scaler.transform(dataset.test)
    long = scaled[:window].T[None]
    args = (long, long[:, :, window - short:])

    def per_call_ms(fn, reps=100):
        fn(*args)
        started = time.perf_counter()
        for _ in range(reps):
            fn(*args)
        return 1e3 * (time.perf_counter() - started) / reps

    autograd_ms = per_call_ms(lambda *a: served.score_windows(*a, backend="autograd"))
    compiled_ms = per_call_ms(compiled.score_windows)
    print(f"single-window serving: autograd {autograd_ms:.2f} ms -> "
          f"compiled {compiled_ms:.2f} ms ({autograd_ms / compiled_ms:.1f}x)")

    # --- 5. fleet serving on the fused multi-star path --------------------
    num_shards = 8
    fleet = FleetManager(
        served,
        num_shards=num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        backend=compiled32,                # float32 plans for the hot loop
    )
    print(f"serving {fleet.num_stars} stars across {num_shards} shards "
          f"on the {fleet.backend} backend ({compiled32.dtype} plans)")

    rng = np.random.default_rng(42)
    jitter = rng.normal(0.0, 0.02, size=(num_shards, dataset.num_variates))
    alerts = []
    started = time.perf_counter()
    for t in range(dataset.test_length):
        result = fleet.step(dataset.test[t][None, :] + jitter,
                            timestamp=float(dataset.test_timestamps[t]))
        alerts.extend(result.alerts)
    elapsed = time.perf_counter() - started
    print(f"replayed {dataset.test_length} exposures in {elapsed:.2f} s "
          f"({fleet.num_stars * dataset.test_length / elapsed:,.0f} star-scores/sec)")

    for alert in alerts[:5]:
        truth = "TRUE EVENT" if dataset.test_labels[alert.step, alert.variate] else "noise/false alarm"
        print(f"t={alert.step:5d}  shard {alert.shard}  star {alert.variate:3d}  "
              f"score={alert.score:.3f}  -> {truth}")
    if len(alerts) > 5:
        print(f"... and {len(alerts) - 5} more alerts")


if __name__ == "__main__":
    main()
