"""Scenario simulation & replay validation: prove the fleet catches events.

The streaming examples replay clean, aligned nights; real surveys are not
clean.  This walkthrough builds a *seeded survey-night scenario* — flares,
microlensing and eclipses injected into an 8-star field, buried under NaN
gaps, a star dropout/rejoin, cadence jitter, baseline drift, duplicated and
out-of-order frames — and proves, end to end, that the serving stack pages
on the injected events and stays quiet otherwise:

1. build the scenario (a pure function of its seed: bit-reproducible);
2. train AERO on the scenario's reference archive;
3. calibrate the serving threshold on the *held-out* quiet stretch
   (train-score calibration sits too low: the model memorizes its noise);
4. replay the night tick by tick through a FleetManager and score the
   fired alerts against ground truth (event recall, latency, false pages);
5. pin the behaviour with a golden trace and diff a re-run against it.

Run with:  PYTHONPATH=src python examples/scenario_replay.py
"""

import tempfile
from pathlib import Path

from repro.core import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.simulation import ReplayHarness, ReplayTrace, ScenarioConfig, build_scenario
from repro.streaming import AlertPolicy, FleetManager


def main() -> None:
    # --- 1. a seeded survey night --------------------------------------
    scenario = build_scenario(ScenarioConfig(seed=7))
    print(scenario.describe())
    for event in scenario.events:
        print(f"  truth: {event.kind:12s} star {event.star} "
              f"ticks [{event.start}, {event.end}) amplitude {event.amplitude:.2f}")
    for fault in scenario.faults:
        if fault.kind in ("dropout", "drift"):
            print(f"  fault: {fault.kind:12s} star {fault.star} ticks [{fault.start}, {fault.end})")

    # --- 2. train on the reference archive -----------------------------
    config = AeroConfig.fast(window=32, short_window=8).scaled(
        max_epochs_stage1=16, max_epochs_stage2=8, learning_rate=5e-3,
        d_model=24, num_heads=2, train_stride=2, batch_size=16,
    )
    detector = AeroDetector(config)
    detector.fit(scenario.train, scenario.train_timestamps)

    # --- 3. serving-side threshold from the held-out quiet stretch ------
    calibration_scores = detector.score(scenario.calibration, scenario.calibration_timestamps)
    threshold = pot_threshold(calibration_scores, q=5e-3)
    print(f"\ntrain-score threshold {detector.threshold():.3f} -> "
          f"held-out calibration threshold {threshold:.3f}")

    # --- 4. replay the night and score the alerts ----------------------
    fleet = FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
    )
    report, trace = ReplayHarness(fleet, scenario).run()
    print(f"\n{report.format()}")
    for outcome in report.outcomes:
        event = outcome.event
        verdict = (
            f"caught at tick {outcome.first_alert_seq} (latency {outcome.latency})"
            if outcome.detected
            else "MISSED"
        )
        print(f"  {event.kind:12s} star {event.star} [{event.start:3d},{event.end:3d})  {verdict}")

    # --- 5. golden-trace pinning ---------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        golden_path = Path(tmp) / "golden.npz"
        trace.save(golden_path)
        rerun_fleet = FleetManager(
            detector,
            num_shards=scenario.config.num_shards,
            alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
            threshold=threshold,
        )
        _, rerun_trace = ReplayHarness(rerun_fleet, scenario).run()
        rerun_trace.assert_matches(ReplayTrace.load(golden_path))
        print(f"\nre-run is bit-identical to the saved golden trace "
              f"({trace.num_ticks} ticks, {trace.num_alerts} alerts)")
        perturbed = ReplayTrace.load(golden_path)
        perturbed.scores[10, 0, 0] += 1e-6
        mismatches = rerun_trace.diff(perturbed)
        print(f"a perturbed trace is caught: {mismatches[0]}")


if __name__ == "__main__":
    main()
