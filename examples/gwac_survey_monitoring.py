"""Online monitoring of a GWAC-like wide-angle survey field.

This example mirrors the paper's motivating application: a ground-based
wide-angle camera observes dozens of stars with irregular cadence, clouds and
sunrise introduce concurrent noise across the field, and rare transient events
(flares, microlensing) must be flagged in real time.

The script trains AERO offline on an unlabeled archive (Algorithm 1), then
replays the test night in an online fashion (Algorithm 2), printing an alarm
whenever a star's anomaly score crosses the POT threshold.

Run with:  python examples/gwac_survey_monitoring.py
"""

import numpy as np

from repro.core import AeroConfig, AeroDetector
from repro.data import load_astroset


def main() -> None:
    dataset = load_astroset("AstrosetLow", scale=0.05)
    print(f"{dataset.name}: {dataset.num_variates} stars, "
          f"{dataset.train_length} archive epochs, {dataset.test_length} live epochs")
    print(f"true anomaly segments in the live night: {len(dataset.anomaly_segments())}")

    config = AeroConfig.fast(window=40, short_window=12).scaled(
        max_epochs_stage1=12, max_epochs_stage2=6, learning_rate=5e-3
    )
    detector = AeroDetector(config)
    detector.fit(dataset.train, dataset.train_timestamps)
    threshold = detector.threshold()
    print(f"calibrated POT threshold: {threshold:.4f}\n")

    # Online replay: score the whole night, then walk through it timestamp by
    # timestamp as the telescope would, raising alarms as scores cross the
    # threshold.  (Scores are per star and per timestamp.)
    scores = detector.score(dataset.test, dataset.test_timestamps)
    alarms_raised = 0
    active: set[int] = set()
    for t in range(dataset.test_length):
        crossing = np.flatnonzero(scores[t] >= threshold)
        new_alarms = [star for star in crossing if star not in active]
        active = set(crossing.tolist())
        for star in new_alarms:
            alarms_raised += 1
            truth = "TRUE EVENT" if dataset.test_labels[t, star] else "noise/false alarm"
            if alarms_raised <= 10:
                print(f"t={t:5d}  star {star:3d}  score={scores[t, star]:.3f}  -> {truth}")
    print(f"\ntotal alarms raised: {alarms_raised}")

    report = detector.evaluate(dataset.test, dataset.test_labels, dataset.test_timestamps)
    result = report.outcome.result
    print(f"night summary: precision={100 * result.precision:.1f}%  "
          f"recall={100 * result.recall:.1f}%  F1={100 * result.f1:.1f}%")


if __name__ == "__main__":
    main()
