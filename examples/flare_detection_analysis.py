"""Analyse how AERO separates a stellar flare from a passing cloud.

This example reproduces the mechanism illustrated in Fig. 8 and Fig. 9 of the
paper on a small controlled scene: one star exhibits a Davenport-model flare
(a true celestial event) while a cloud passes over most of the field
(concurrent noise).  The script prints

* the window-wise graph learned during the cloud passage (its edges should
  concentrate on the cloud-affected stars), and
* the stage-1 versus final anomaly scores on the flare star and on a
  cloud-affected star, showing that the concurrent-noise module suppresses
  the cloud but keeps the flare.

Run with:  python examples/flare_detection_analysis.py
"""

import numpy as np

from repro.core import AeroConfig, AeroDetector, noise_ground_truth_graph
from repro.data import AstroDataset, flare_template, gaussian_star, inject_concurrent_noise, sinusoidal_star
from repro.experiments import graph_agreement


def build_scene(num_stars: int = 10, length: int = 500, seed: int = 5) -> AstroDataset:
    """Half the series is the clean archive; the second half contains the events."""
    rng = np.random.default_rng(seed)
    series = np.zeros((length, num_stars))
    for star in range(num_stars):
        if star % 3 == 0:
            series[:, star] = sinusoidal_star(length, rng, period=120.0, amplitude=1.5)
        else:
            series[:, star] = gaussian_star(length, rng, std=0.2)

    labels = np.zeros_like(series, dtype=np.int64)
    noise_mask = np.zeros_like(series, dtype=np.int64)
    split = length // 2

    # Cloud passage over most of the field in the "live" half.
    cloud_stars = list(range(1, num_stars))
    inject_concurrent_noise(series, noise_mask, rng, start=split + 60, length=50,
                            variates=cloud_stars, kind="darkening", intensity=1.0)
    # A flare on star 0, away from the cloud window.
    flare = flare_template(25, amplitude=1.2)
    series[split + 150: split + 175, 0] += flare
    labels[split + 150: split + 175, 0] = 1

    return AstroDataset(
        name="FlareVsCloud",
        train=series[:split],
        test=series[split:],
        test_labels=labels[split:],
        test_noise_mask=noise_mask[split:],
        train_noise_mask=noise_mask[:split],
    )


def main() -> None:
    dataset = build_scene()
    config = AeroConfig.fast(window=40, short_window=12).scaled(
        max_epochs_stage1=15, max_epochs_stage2=8, learning_rate=5e-3
    )
    detector = AeroDetector(config)
    detector.fit(dataset.train)

    # Scores with and without the concurrent-noise module (Fig. 9).
    full_scores = detector.score(dataset.test)
    noise_module = detector.model.noise
    detector.model.noise = None
    stage1_scores = detector.score(dataset.test)
    detector.model.noise = noise_module

    cloud_star = 4
    cloud_window = slice(60, 110)
    flare_window = slice(150, 175)
    print("mean anomaly score (stage 1 -> full model):")
    print(f"  cloud passage, star {cloud_star}: "
          f"{stage1_scores[cloud_window, cloud_star].mean():.3f} -> {full_scores[cloud_window, cloud_star].mean():.3f}")
    print(f"  flare, star 0           : "
          f"{stage1_scores[flare_window, 0].mean():.3f} -> {full_scores[flare_window, 0].mean():.3f}")

    # Window-wise graph learned in the middle of the cloud passage (Fig. 8).
    detector.score(dataset.test[: 40 + 85])
    learned = detector.learned_graph()
    truth = noise_ground_truth_graph(dataset.test_noise_mask)
    print(f"\nlearned graph agreement with the cloud clique: {graph_agreement(learned, truth):.3f}")
    print("learned adjacency (rounded, first 6 stars):")
    with np.printoptions(precision=2, suppress=True):
        print(learned[:6, :6])


if __name__ == "__main__":
    main()
