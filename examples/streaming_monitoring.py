"""Streaming a simulated GWAC night through the online serving stack.

Where ``gwac_survey_monitoring.py`` replays a night by re-scoring the whole
series offline, this example uses the streaming subsystem end to end:

1. train AERO offline on the unlabeled archive (Algorithm 1);
2. wrap the fitted detector in a :class:`repro.streaming.StreamingDetector`
   and verify its incremental scores match the batch path exactly;
3. serve a *fleet* of simulated camera fields through a
   :class:`repro.streaming.FleetManager` — one vectorised model call per
   exposure for all shards, with ``threshold_mode="per_star"`` adaptive POT
   thresholds (each star's own calibration, advanced by one array-native
   update per tick) — behind a :class:`StreamingService` queue with
   debounced alerting, printing the operator-facing backpressure stats.

Run with:  PYTHONPATH=src python examples/streaming_monitoring.py
"""

import numpy as np

from repro.core import AeroConfig, AeroDetector
from repro.data import load_astroset
from repro.streaming import AlertPolicy, FleetManager, StreamingService


def main() -> None:
    dataset = load_astroset("AstrosetLow", scale=0.05)
    print(f"{dataset.name}: {dataset.num_variates} stars/field, "
          f"{dataset.train_length} archive epochs, {dataset.test_length} live epochs")

    config = AeroConfig.fast(window=40, short_window=12).scaled(
        max_epochs_stage1=12, max_epochs_stage2=6, learning_rate=5e-3
    )
    detector = AeroDetector(config)
    detector.fit(dataset.train, dataset.train_timestamps)
    print(f"calibrated POT threshold: {detector.threshold():.4f}\n")

    # --- single-stream sanity check: incremental == batch -----------------
    stream = detector.stream()
    streaming_scores = stream.score_series(dataset.test)
    batch_scores = detector.score(dataset.test)
    assert np.array_equal(streaming_scores, batch_scores)
    print("streaming scores match the batch path bit for bit "
          f"({streaming_scores.shape[0]} timestamps x {streaming_scores.shape[1]} stars)\n")

    # --- fleet serving: several camera fields, one model call per tick ----
    num_shards = 4
    rng = np.random.default_rng(42)
    fleet = FleetManager(
        detector,
        num_shards=num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold_mode="per_star",
    )
    service = StreamingService(fleet, max_queue=64)
    print(f"serving {fleet.num_stars} stars across {num_shards} shards, "
          f"per-star thresholds in [{fleet.adaptive_pot.thresholds.min():.3f}, "
          f"{fleet.adaptive_pot.thresholds.max():.3f}]")

    # Each shard observes the same night with shard-specific photometric
    # jitter, standing in for neighbouring fields of the same survey.
    jitter = rng.normal(0.0, 0.02, size=(num_shards, dataset.num_variates))
    alerts = []
    for t in range(dataset.test_length):
        exposure = dataset.test[t][None, :] + jitter
        service.submit(exposure, timestamp=float(dataset.test_timestamps[t]))
        for result in service.drain():
            alerts.extend(result.alerts)

    for alert in alerts[:10]:
        truth = "TRUE EVENT" if dataset.test_labels[alert.step, alert.variate] else "noise/false alarm"
        print(f"t={alert.step:5d}  shard {alert.shard}  star {alert.variate:3d}  "
              f"score={alert.score:.3f}  thr={alert.threshold:.3f}  -> {truth}")
    if len(alerts) > 10:
        print(f"... and {len(alerts) - 10} more alerts")

    print(f"\noperator stats: {service.stats().format()}")


if __name__ == "__main__":
    main()
