"""Compare AERO against representative baselines on a noise-heavy dataset.

Reproduces a slice of Table II: the SyntheticLow dataset has the lowest
anomaly-to-noise ratio, which is where the paper reports AERO's largest
advantage (its concurrent-noise reconstruction removes the false positives
that plague the univariate and correlation-agnostic baselines).

Run with:  python examples/baseline_comparison.py
"""

from repro.baselines import get_baseline
from repro.core import AeroConfig, AeroDetector
from repro.data import load_synthetic
from repro.experiments import format_performance_table

METHODS = ("SPOT", "SR", "FluxEV", "Donut", "GDN", "AERO")


def main() -> None:
    dataset = load_synthetic("SyntheticLow", scale=0.08)
    print(f"{dataset.name}: anomaly/noise ratio = {dataset.anomaly_to_noise_ratio:.3f}\n")

    rows = []
    for name in METHODS:
        if name == "AERO":
            config = AeroConfig.fast(window=40, short_window=12).scaled(
                max_epochs_stage1=15, max_epochs_stage2=8, learning_rate=5e-3
            )
            method = AeroDetector(config)
            method.fit(dataset.train)
            outcome = method.evaluate(dataset.test, dataset.test_labels).outcome
        else:
            kwargs = {} if name in ("SPOT", "SR", "FluxEV") else {"epochs": 3, "train_stride": 4}
            method = get_baseline(name, **kwargs)
            method.fit(dataset.train)
            outcome = method.evaluate(dataset.test, dataset.test_labels)
        rows.append({
            "method": name,
            "dataset": dataset.name,
            "precision": outcome.result.precision,
            "recall": outcome.result.recall,
            "f1": outcome.result.f1,
        })
        print(f"finished {name}")

    print()
    print(format_performance_table(rows, [dataset.name]))


if __name__ == "__main__":
    main()
