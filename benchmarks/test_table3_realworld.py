"""Benchmark E3 — Table III: overall performance on the GWAC-like real-world datasets."""

from conftest import run_once

from repro.experiments import REAL_DATASETS, format_performance_table, run_overall_comparison


def test_table3_realworld_overall_performance(benchmark, profile, full_grid):
    datasets = REAL_DATASETS if full_grid else ("AstrosetLow",)
    rows = run_once(benchmark, run_overall_comparison, datasets, None, profile)
    print("\n" + format_performance_table(rows, datasets))

    assert len(rows) == 12 * len(datasets)
    for row in rows:
        assert 0.0 <= row["precision"] <= 1.0
        assert 0.0 <= row["recall"] <= 1.0
    if profile.name != "tiny":
        aero_rows = [row for row in rows if row["method"] == "AERO"]
        baseline_rows = [row for row in rows if row["method"] != "AERO"]
        median_baseline = sorted(row["f1"] for row in baseline_rows)[len(baseline_rows) // 2]
        aero_mean = sum(row["f1"] for row in aero_rows) / len(aero_rows)
        assert aero_mean >= median_baseline - 0.1
