"""Benchmark S1 — streaming serving: per-step latency vs naive batch re-scoring.

The naive online deployment of the batch detector re-runs ``score()`` on the
full accumulated series every time a new timestamp arrives — O(T) windows per
step.  The streaming path scores exactly one window per step, and the fleet
path amortises the remaining per-call overhead across shards with one
vectorised model call per exposure.  This benchmark measures all three on the
same mid-night serving scenario and enforces the acceptance criterion that
streaming is at least 10x faster per step than naive re-scoring.
"""

import functools
import time

import numpy as np

from conftest import run_once

from repro.core import AeroConfig, AeroDetector
from repro.data import load_synthetic
from repro.obs import MetricsRegistry, Tracer
from repro.streaming import AlertPolicy, FleetManager, StreamingService

HISTORY = 120          # test rows already observed when timing starts
STEPS = 40             # arriving timestamps to serve
NUM_SHARDS = 8


@functools.lru_cache(maxsize=1)
def _fitted():
    """Train the benchmark detector once per session (both tests share it)."""
    return _fit_detector()


def _fit_detector():
    config = AeroConfig(
        window=24, short_window=8, d_model=16, num_heads=2,
        train_stride=3, max_epochs_stage1=4, max_epochs_stage2=3,
        batch_size=16, learning_rate=5e-3,
    )
    dataset = load_synthetic("SyntheticMiddle", scale=0.05)
    detector = AeroDetector(config)
    detector.fit(dataset.train, dataset.train_timestamps)
    return detector, dataset


def _run_serving_comparison():
    detector, dataset = _fitted()
    test = dataset.test
    assert test.shape[0] >= HISTORY + STEPS

    # --- naive: re-run the batch scorer on the full history per new point --
    naive_scores = []
    started = time.perf_counter()
    for step in range(STEPS):
        scores = detector.score(test[: HISTORY + step + 1])
        naive_scores.append(scores[-1])
    naive_seconds = time.perf_counter() - started

    # --- streaming: one window per arriving timestamp ----------------------
    stream = detector.stream()
    for row in test[:HISTORY]:
        stream.step(row)
    stream_scores = []
    started = time.perf_counter()
    for row in test[HISTORY : HISTORY + STEPS]:
        stream_scores.append(stream.step(row).scores)
    stream_seconds = time.perf_counter() - started

    # --- fleet: NUM_SHARDS fields served by one model call per exposure ----
    fleet = FleetManager(detector, num_shards=NUM_SHARDS, alert_policy=AlertPolicy())
    service = StreamingService(fleet)
    for row in test[:HISTORY]:
        service.submit(np.broadcast_to(row, (NUM_SHARDS, len(row))))
        service.drain()
    fleet_started = time.perf_counter()
    for row in test[HISTORY : HISTORY + STEPS]:
        service.submit(np.broadcast_to(row, (NUM_SHARDS, len(row))))
        service.drain()
    fleet_seconds = time.perf_counter() - fleet_started

    return {
        "num_variates": dataset.num_variates,
        "naive_step_ms": 1e3 * naive_seconds / STEPS,
        "stream_step_ms": 1e3 * stream_seconds / STEPS,
        "fleet_step_ms": 1e3 * fleet_seconds / STEPS,
        "speedup": naive_seconds / stream_seconds,
        "naive_stars_per_sec": dataset.num_variates * STEPS / naive_seconds,
        "stream_stars_per_sec": dataset.num_variates * STEPS / stream_seconds,
        "fleet_stars_per_sec": fleet.num_stars * STEPS / fleet_seconds,
        "naive_scores": np.stack(naive_scores),
        "stream_scores": np.stack(stream_scores),
        "service_stats": service.stats(),
    }


def test_streaming_throughput(benchmark, profile):
    result = run_once(benchmark, _run_serving_comparison)

    print()
    print(f"{'path':<12}{'per-step latency':>18}{'stars/sec':>14}")
    print("-" * 44)
    print(f"{'naive':<12}{result['naive_step_ms']:>15.2f} ms{result['naive_stars_per_sec']:>14,.0f}")
    print(f"{'streaming':<12}{result['stream_step_ms']:>15.2f} ms{result['stream_stars_per_sec']:>14,.0f}")
    print(f"{'fleet x8':<12}{result['fleet_step_ms']:>15.2f} ms{result['fleet_stars_per_sec']:>14,.0f}")
    print(f"streaming speedup over naive re-scoring: {result['speedup']:.1f}x")
    print(f"service: {result['service_stats'].format()}")

    # Same inputs, same model: the serving paths must agree on the scores.
    np.testing.assert_allclose(
        result["stream_scores"], result["naive_scores"], rtol=0, atol=1e-10
    )
    # Acceptance criterion: incremental serving is >= 10x naive re-scoring.
    assert result["speedup"] >= 10.0
    # The fleet serves NUM_SHARDS x more stars; per-step cost must grow far
    # more slowly than the shard count (vectorisation pays off).
    assert result["fleet_stars_per_sec"] > result["stream_stars_per_sec"]


# ---------------------------------------------------------------------------
# telemetry overhead
# ---------------------------------------------------------------------------
TELEMETRY_REPS = 3
TELEMETRY_OVERHEAD_CAP = 1.05   # instrumented <= 5% over uninstrumented


def _run_telemetry_overhead():
    """Paired per-tick timing of an instrumented vs uninstrumented fleet.

    Whole-run timings of this model are far noisier than the 5% bound being
    asserted (the forward pass alone varies ~20% run to run), so the two
    paths are stepped in lockstep — per tick, back to back — and each tick
    keeps its best latency over the repetitions.  Jitter (thermal, GC,
    interrupts) then hits both paths equally instead of landing on whichever
    run it happened to overlap.
    """
    detector, dataset = _fitted()
    rows = [
        np.broadcast_to(row, (NUM_SHARDS, len(row)))
        for row in dataset.test[HISTORY : HISTORY + STEPS]
    ]
    plain_ticks = np.full((TELEMETRY_REPS, STEPS), np.inf)
    instr_ticks = np.full((TELEMETRY_REPS, STEPS), np.inf)
    for rep in range(TELEMETRY_REPS):
        plain = FleetManager(detector, num_shards=NUM_SHARDS, alert_policy=AlertPolicy())
        instrumented = FleetManager(
            detector, num_shards=NUM_SHARDS, alert_policy=AlertPolicy(),
            registry=MetricsRegistry(), tracer=Tracer(),
        )
        for tick, row in enumerate(rows):
            started = time.perf_counter()
            plain.step(row)
            plain_ticks[rep, tick] = time.perf_counter() - started
            started = time.perf_counter()
            instrumented.step(row)
            instr_ticks[rep, tick] = time.perf_counter() - started
    return {
        "plain": float(plain_ticks.min(axis=0).sum()),
        "instrumented": float(instr_ticks.min(axis=0).sum()),
    }


def test_telemetry_overhead(benchmark, profile):
    """Full telemetry (metrics + tracing) costs <= 5% of fleet throughput."""
    result = run_once(benchmark, _run_telemetry_overhead)
    overhead = result["instrumented"] / result["plain"]
    print(
        f"\nplain {1e3 * result['plain'] / STEPS:.3f} ms/tick, "
        f"instrumented {1e3 * result['instrumented'] / STEPS:.3f} ms/tick "
        f"({overhead:.3f}x)"
    )
    assert overhead <= TELEMETRY_OVERHEAD_CAP, (
        f"telemetry overhead {overhead:.3f}x exceeds {TELEMETRY_OVERHEAD_CAP}x"
    )


# ---------------------------------------------------------------------------
# drift-monitor overhead
# ---------------------------------------------------------------------------
DRIFT_OVERHEAD_CAP = 1.05   # monitored <= 5% over unmonitored


def _run_drift_overhead():
    """Paired per-tick timing of the model-quality stack vs a bare fleet.

    Same lockstep discipline as :func:`_run_telemetry_overhead`: the fleet
    with a :class:`DriftMonitor` + :class:`FlightRecorder` attached and the
    bare fleet are stepped back to back per tick, each tick keeping its best
    latency over the repetitions, so machine jitter cancels instead of
    landing on one path.
    """
    from repro.obs import FlightRecorder, calibrate_drift_monitor

    detector, dataset = _fitted()
    rows = [
        np.broadcast_to(row, (NUM_SHARDS, len(row)))
        for row in dataset.test[HISTORY : HISTORY + STEPS]
    ]
    calibration_scores = detector.score(dataset.test[:HISTORY])
    num_stars = NUM_SHARDS * dataset.num_variates
    plain_ticks = np.full((TELEMETRY_REPS, STEPS), np.inf)
    monitored_ticks = np.full((TELEMETRY_REPS, STEPS), np.inf)
    for rep in range(TELEMETRY_REPS):
        plain = FleetManager(detector, num_shards=NUM_SHARDS, alert_policy=AlertPolicy())
        monitored = FleetManager(
            detector, num_shards=NUM_SHARDS, alert_policy=AlertPolicy(),
            drift_monitor=calibrate_drift_monitor(calibration_scores, num_stars=num_stars),
            recorder=FlightRecorder(capacity=STEPS),
        )
        for tick, row in enumerate(rows):
            started = time.perf_counter()
            plain.step(row)
            plain_ticks[rep, tick] = time.perf_counter() - started
            started = time.perf_counter()
            monitored.step(row)
            monitored_ticks[rep, tick] = time.perf_counter() - started
    return {
        "plain": float(plain_ticks.min(axis=0).sum()),
        "monitored": float(monitored_ticks.min(axis=0).sum()),
    }


def test_drift_overhead(benchmark, profile):
    """Drift monitoring + flight recording cost <= 5% of fleet throughput."""
    result = run_once(benchmark, _run_drift_overhead)
    overhead = result["monitored"] / result["plain"]
    print(
        f"\nplain {1e3 * result['plain'] / STEPS:.3f} ms/tick, "
        f"drift-monitored {1e3 * result['monitored'] / STEPS:.3f} ms/tick "
        f"({overhead:.3f}x)"
    )
    assert overhead <= DRIFT_OVERHEAD_CAP, (
        f"drift-monitoring overhead {overhead:.3f}x exceeds {DRIFT_OVERHEAD_CAP}x"
    )
