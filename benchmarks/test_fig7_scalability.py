"""Benchmark E6 — Fig. 7: memory usage and inference time versus the number of stars.

Expected shape (as in the paper): both memory and inference time grow with the
number of stars for every method, roughly linearly over the tested range.
"""

import pytest

from conftest import run_once

from repro.experiments import format_series, run_fig7

DEFAULT_METHODS = ("AERO", "GDN", "SR")
DEFAULT_STAR_COUNTS = (8, 16, 32)


@pytest.mark.slow
def test_fig7_scalability(benchmark, profile, full_grid):
    methods = ("AERO", "AnomalyTransformer", "TranAD", "GDN", "ESG", "TimesNet", "SR") if full_grid else DEFAULT_METHODS
    star_counts = (24, 48, 96, 192) if full_grid else DEFAULT_STAR_COUNTS
    rows = run_once(benchmark, run_fig7, star_counts, methods, profile)

    print()
    for method in methods:
        series = [row for row in rows if row["method"] == method]
        print(format_series(
            f"Fig. 7 ({method})",
            [row["num_stars"] for row in series],
            [row["inference_seconds"] for row in series],
            x_label="#stars", y_label="inference s",
        ))

    assert len(rows) == len(methods) * len(star_counts)
    # Inference time increases from the smallest to the largest field for the
    # graph-based methods (the paper's headline scaling observation).
    for method in methods:
        series = sorted((row for row in rows if row["method"] == method), key=lambda r: r["num_stars"])
        assert series[-1]["inference_seconds"] >= series[0]["inference_seconds"] * 0.8
        assert all(row["memory_mb"] > 0 for row in series)
