"""Benchmark E5 — Fig. 6: training time per epoch and inference time of all methods.

Absolute numbers differ from the paper (CPU numpy vs. GPU PyTorch); the
regenerated artifact is the per-method comparison of training and inference
cost on SyntheticMiddle.
"""

from conftest import run_once

from repro.experiments import format_series, run_fig6

# A representative subset keeps the benchmark affordable; pass
# REPRO_FULL_GRID=1 to include every method as in the paper's figure.
DEFAULT_METHODS = ("SPOT", "FluxEV", "Donut", "OmniAnomaly", "GDN", "TimesNet", "AERO")


def test_fig6_training_and_inference_time(benchmark, profile, full_grid):
    methods = None if full_grid else DEFAULT_METHODS
    rows = run_once(benchmark, run_fig6, methods, "SyntheticMiddle", profile)
    print()
    print(format_series(
        "Fig. 6a: training time",
        [row["method"] for row in rows],
        [row["train_seconds_per_epoch"] for row in rows],
        x_label="method", y_label="s/epoch",
    ))
    print(format_series(
        "Fig. 6b: inference time",
        [row["method"] for row in rows],
        [row["inference_seconds"] for row in rows],
        x_label="method", y_label="seconds",
    ))
    assert all(row["train_seconds_per_epoch"] >= 0 for row in rows)
    assert all(row["inference_seconds"] > 0 for row in rows)
    # Statistical methods train essentially for free compared to AERO.
    by_method = {row["method"]: row for row in rows}
    assert by_method["SPOT"]["train_seconds_total"] <= by_method["AERO"]["train_seconds_total"]
