#!/usr/bin/env python
"""Record streaming serving benchmarks into ``BENCH_streaming.json``.

Measures, on the seeded golden survey night (``ScenarioConfig(seed=7)``):

* **fleet tick throughput** — stars/second of a plain ``FleetManager.run``
  over the night's raw exposures, with p50/p99 per-tick latency from the
  fleet's health snapshot;
* **incremental serving** — the same night on ``backend="incremental"``
  (cross-tick state, O(1)-recompute ticks), with the state's cache-hit /
  rebuild / fallback counters and its speedup over the compiled fleet loop;
* **fault-replay overhead** — wall-clock cost of driving the same night
  through :class:`repro.simulation.ReplayHarness` (dedupe gate, trace
  collection, event scoring) relative to the plain tick loop;
* **drift-monitor overhead** — the same night served with the full
  model-quality stack attached (:class:`repro.obs.DriftMonitor` +
  :class:`repro.obs.FlightRecorder`), relative to the plain tick loop;
* **continual loop** — the same night served through a
  :class:`repro.training.ContinualLearningController` (the golden night's
  baseline drift trips the monitor mid-night), recording the loop's
  decision counters, retrain cost and end-to-end overhead.

The JSON is committed next to this script as a longitudinal *trajectory*:
a list of dated run records, appended to on every invocation, so serving
regressions show up as a kink in the history rather than a silently
overwritten number.  (Files written by older versions held a single
record; they are migrated into a one-entry trajectory on the next run.)
CI uploads the freshly recorded file as an artifact on every run (numbers
vary with runner hardware; the committed copy is the local reference).

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py [-o BENCH_streaming.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro import __version__  # noqa: E402
from repro.core import AeroConfig, AeroDetector  # noqa: E402
from repro.evaluation import pot_threshold  # noqa: E402
from repro.obs import FlightRecorder, calibrate_drift_monitor  # noqa: E402
from repro.simulation import ReplayHarness, ScenarioConfig, build_scenario  # noqa: E402
from repro.streaming import AlertPolicy, FleetManager  # noqa: E402
from repro.training import ContinualLearningController, ModelRegistry  # noqa: E402

SEED = 7
POT_Q = 5e-3

DETECTOR_CONFIG = AeroConfig.fast(window=32, short_window=8).scaled(
    max_epochs_stage1=8, max_epochs_stage2=4, learning_rate=5e-3,
    d_model=24, num_heads=2, train_stride=2, batch_size=16,
)


def _build_fleet(detector, scenario, threshold, **kwargs) -> FleetManager:
    return FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
        **kwargs,
    )


def record() -> dict:
    scenario = build_scenario(ScenarioConfig(seed=SEED))
    detector = AeroDetector(DETECTOR_CONFIG)

    started = time.perf_counter()
    detector.fit(scenario.train, scenario.train_timestamps)
    fit_seconds = time.perf_counter() - started
    calibration_scores = detector.score(
        scenario.calibration, scenario.calibration_timestamps
    )
    threshold = pot_threshold(calibration_scores, q=POT_Q)

    # --- plain fleet ticks: the raw serving loop, faults included ---------
    fleet = _build_fleet(detector, scenario, threshold)
    started = time.perf_counter()
    fleet.run(scenario.exposures, scenario.timestamps)
    plain_seconds = time.perf_counter() - started
    health = fleet.health()
    ticks = health.steps_ingested

    # --- incremental serving: same night on the cross-tick state ---------
    incremental_fleet = _build_fleet(
        detector, scenario, threshold, backend="incremental"
    )
    started = time.perf_counter()
    incremental_fleet.run(scenario.exposures, scenario.timestamps)
    incremental_seconds = time.perf_counter() - started
    incremental_stats = incremental_fleet.incremental_stats()

    # --- fault replay: same night through the validation harness ---------
    harness = ReplayHarness(_build_fleet(detector, scenario, threshold), scenario)
    started = time.perf_counter()
    report, _trace = harness.run()
    replay_seconds = time.perf_counter() - started
    replay_frames = len(scenario.arrival) - report.duplicates_dropped

    # --- model-quality stack: same loop with drift monitor + recorder ----
    monitored = _build_fleet(
        detector, scenario, threshold,
        drift_monitor=calibrate_drift_monitor(
            calibration_scores, num_stars=scenario.num_stars
        ),
        recorder=FlightRecorder(capacity=scenario.config.night_length),
    )
    started = time.perf_counter()
    monitored.run(scenario.exposures, scenario.timestamps)
    drift_seconds = time.perf_counter() - started

    # --- continual loop: drift trips → retrain → canary → promote ---------
    loop_fleet = _build_fleet(
        detector, scenario, threshold,
        drift_monitor=calibrate_drift_monitor(
            calibration_scores, num_stars=scenario.num_stars
        ),
    )
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        controller = ContinualLearningController(
            loop_fleet,
            ModelRegistry(root / "registry"),
            "bench-model",
            root / "work",
            seed=SEED,
        )
        started = time.perf_counter()
        for tick in range(scenario.exposures.shape[0]):
            controller.step(
                scenario.exposures[tick], float(scenario.timestamps[tick])
            )
        continual_seconds = time.perf_counter() - started
    retrain_seconds = sum(
        event.detail.get("duration_seconds", 0.0)
        for event in controller.events
        if event.kind == "retrain"
    )

    return {
        "schema": "bench-streaming/v4",
        "recorded_unix": time.time(),  # repro: allow[wallclock] -- provenance stamp in the report, not an input to any measurement
        "repro_version": __version__,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "scenario": {
            "seed": SEED,
            "num_shards": scenario.config.num_shards,
            "num_stars": scenario.num_stars,
            "night_length": scenario.config.night_length,
            "missing_fraction": round(scenario.missing_fraction(), 4),
        },
        "fit_seconds": round(fit_seconds, 3),
        "fleet": {
            "ticks": ticks,
            "seconds": round(plain_seconds, 4),
            "ticks_per_second": round(ticks / plain_seconds, 2),
            "stars_per_second": round(ticks * health.num_stars / plain_seconds, 1),
            "p50_step_ms": round(health.p50_step_ms, 3),
            "p99_step_ms": round(health.p99_step_ms, 3),
        },
        "incremental": {
            "seconds": round(incremental_seconds, 4),
            "ticks_per_second": round(ticks / incremental_seconds, 2),
            "speedup_vs_compiled": round(plain_seconds / incremental_seconds, 3),
            "rebuilds": incremental_stats["rebuilds"],
            "incremental_ticks": incremental_stats["incremental_ticks"],
            "fallback_ticks": incremental_stats["fallback_ticks"],
        },
        "replay": {
            "frames": replay_frames,
            "seconds": round(replay_seconds, 4),
            "seconds_per_frame": round(replay_seconds / replay_frames, 6),
            "overhead_vs_plain": round(replay_seconds / plain_seconds, 3),
            "recall": round(report.recall, 3),
            "precision": round(report.precision, 3),
        },
        "drift": {
            "seconds": round(drift_seconds, 4),
            "overhead_vs_plain": round(drift_seconds / plain_seconds, 3),
            "tripped_stars": monitored.drift_monitor.tripped_stars,
            "flight_dumps": len(monitored.recorder.records),
        },
        "continual": {
            "seconds": round(continual_seconds, 4),
            "overhead_vs_plain": round(continual_seconds / plain_seconds, 3),
            "retrain_seconds": round(retrain_seconds, 3),
            "cycles": controller.cycles,
            "live_version": controller.live_version,
            "tripped_stars_final": loop_fleet.drift_monitor.tripped_stars,
            "decisions": controller.decision_counts(),
        },
    }


def load_trajectory(path: Path) -> list[dict]:
    """Existing run records at ``path`` (oldest first), tolerant of the
    legacy layout where the file held one bare record instead of a list."""
    if not path.exists():
        return []
    existing = json.loads(path.read_text())
    if isinstance(existing, dict):                 # legacy single record
        return [existing]
    return list(existing)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_streaming.json"),
        help="the JSON trajectory to append to (default: benchmarks/BENCH_streaming.json)",
    )
    args = parser.parse_args(argv)
    path = Path(args.output)
    trajectory = load_trajectory(path)
    record_dict = record()
    trajectory.append(record_dict)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    fleet, incremental, replay, drift, continual = (
        record_dict["fleet"], record_dict["incremental"],
        record_dict["replay"], record_dict["drift"], record_dict["continual"],
    )
    print(f"wrote {path} ({len(trajectory)} run{'s' if len(trajectory) != 1 else ''})")
    print(
        f"fleet: {fleet['stars_per_second']:,.0f} stars/s "
        f"(p50 {fleet['p50_step_ms']:.2f} ms, p99 {fleet['p99_step_ms']:.2f} ms); "
        f"incremental {incremental['speedup_vs_compiled']:.2f}x "
        f"({incremental['rebuilds']} rebuilds); "
        f"replay overhead {replay['overhead_vs_plain']:.2f}x; "
        f"drift overhead {drift['overhead_vs_plain']:.2f}x"
    )
    print(
        f"continual: {continual['cycles']} cycle(s) -> v{continual['live_version']:04d} "
        f"({continual['retrain_seconds']:.2f} s retraining, "
        f"{continual['overhead_vs_plain']:.2f}x overhead); "
        f"decisions {continual['decisions']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
