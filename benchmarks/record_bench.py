#!/usr/bin/env python
"""Record streaming serving benchmarks into ``BENCH_streaming.json``.

Measures, on the seeded golden survey night (``ScenarioConfig(seed=7)``):

* **fleet tick throughput** — stars/second of a plain ``FleetManager.run``
  over the night's raw exposures, with p50/p99 per-tick latency from the
  fleet's health snapshot;
* **fault-replay overhead** — wall-clock cost of driving the same night
  through :class:`repro.simulation.ReplayHarness` (dedupe gate, trace
  collection, event scoring) relative to the plain tick loop.

The JSON is committed next to this script as a longitudinal record: re-run
after a serving-path change and diff the numbers.  CI uploads the freshly
recorded file as an artifact on every run (numbers vary with runner
hardware; the committed copy is the local reference).

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py [-o BENCH_streaming.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro import __version__  # noqa: E402
from repro.core import AeroConfig, AeroDetector  # noqa: E402
from repro.evaluation import pot_threshold  # noqa: E402
from repro.simulation import ReplayHarness, ScenarioConfig, build_scenario  # noqa: E402
from repro.streaming import AlertPolicy, FleetManager  # noqa: E402

SEED = 7
POT_Q = 5e-3

DETECTOR_CONFIG = AeroConfig.fast(window=32, short_window=8).scaled(
    max_epochs_stage1=8, max_epochs_stage2=4, learning_rate=5e-3,
    d_model=24, num_heads=2, train_stride=2, batch_size=16,
)


def _build_fleet(detector, scenario, threshold) -> FleetManager:
    return FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
    )


def record() -> dict:
    scenario = build_scenario(ScenarioConfig(seed=SEED))
    detector = AeroDetector(DETECTOR_CONFIG)

    started = time.perf_counter()
    detector.fit(scenario.train, scenario.train_timestamps)
    fit_seconds = time.perf_counter() - started
    threshold = pot_threshold(
        detector.score(scenario.calibration, scenario.calibration_timestamps), q=POT_Q
    )

    # --- plain fleet ticks: the raw serving loop, faults included ---------
    fleet = _build_fleet(detector, scenario, threshold)
    started = time.perf_counter()
    fleet.run(scenario.exposures, scenario.timestamps)
    plain_seconds = time.perf_counter() - started
    health = fleet.health()
    ticks = health.steps_ingested

    # --- fault replay: same night through the validation harness ---------
    harness = ReplayHarness(_build_fleet(detector, scenario, threshold), scenario)
    started = time.perf_counter()
    report, _trace = harness.run()
    replay_seconds = time.perf_counter() - started
    replay_frames = len(scenario.arrival) - report.duplicates_dropped

    return {
        "schema": "bench-streaming/v1",
        "recorded_unix": time.time(),
        "repro_version": __version__,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "scenario": {
            "seed": SEED,
            "num_shards": scenario.config.num_shards,
            "num_stars": scenario.num_stars,
            "night_length": scenario.config.night_length,
            "missing_fraction": round(scenario.missing_fraction(), 4),
        },
        "fit_seconds": round(fit_seconds, 3),
        "fleet": {
            "ticks": ticks,
            "seconds": round(plain_seconds, 4),
            "ticks_per_second": round(ticks / plain_seconds, 2),
            "stars_per_second": round(ticks * health.num_stars / plain_seconds, 1),
            "p50_step_ms": round(health.p50_step_ms, 3),
            "p99_step_ms": round(health.p99_step_ms, 3),
        },
        "replay": {
            "frames": replay_frames,
            "seconds": round(replay_seconds, 4),
            "seconds_per_frame": round(replay_seconds / replay_frames, 6),
            "overhead_vs_plain": round(replay_seconds / plain_seconds, 3),
            "recall": round(report.recall, 3),
            "precision": round(report.precision, 3),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_streaming.json"),
        help="where to write the JSON record (default: benchmarks/BENCH_streaming.json)",
    )
    args = parser.parse_args(argv)
    record_dict = record()
    path = Path(args.output)
    path.write_text(json.dumps(record_dict, indent=2) + "\n")
    fleet, replay = record_dict["fleet"], record_dict["replay"]
    print(f"wrote {path}")
    print(
        f"fleet: {fleet['stars_per_second']:,.0f} stars/s "
        f"(p50 {fleet['p50_step_ms']:.2f} ms, p99 {fleet['p99_step_ms']:.2f} ms); "
        f"replay overhead {replay['overhead_vs_plain']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
