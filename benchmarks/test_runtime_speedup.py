"""Benchmark R1 — compiled inference runtime vs the autograd forward path.

Serving scenario: every exposure tick delivers one fresh window per star
shard, and each window is scored individually through the autograd model —
the PR-1 single-window serving cost (``AeroDetector.score_windows`` with
batch 1, exactly what a per-shard ``StreamingDetector`` pays per step).

The compiled runtime (:mod:`repro.runtime`) attacks that cost twice:

* ``score_windows`` on tape-free plans — the same single-window calls with
  no ``Tensor`` allocation, memoized time embeddings and fused kernels,
  bit-for-bit equal to the autograd scores in float64;
* ``score_stack`` — the fused multi-star path: the whole ``(S, W, N)``
  stack of shard windows in **one** plan call (plus an optional float32
  execution mode), which is how ``FleetManager`` serves on the compiled
  backend.

The acceptance criterion is that the compiled runtime serves single-window
scores with at least 5x the throughput of the autograd path; the fused
stack plans deliver it (the table below also reports the per-call ratio).
"""

import time

import numpy as np

from conftest import run_once

from repro.core import AeroConfig, AeroDetector
from repro.data import load_synthetic
from repro.runtime import compile_detector

NUM_SHARDS = 48        # windows served per exposure tick
SHARD_STARS = 8        # stars per shard (fleet geometry: 48 x 8 = 384 stars)
TICKS = 12             # measured exposure ticks
MIN_SPEEDUP = 5.0      # acceptance: compiled runtime >= 5x autograd


def _fit_detector():
    config = AeroConfig(
        window=24, short_window=8, d_model=16, num_heads=2,
        train_stride=3, max_epochs_stage1=4, max_epochs_stage2=3,
        batch_size=16, learning_rate=5e-3,
    )
    dataset = load_synthetic("SyntheticMiddle", scale=0.05)
    # Serve one camera-field shard: the model is trained on (and scores)
    # SHARD_STARS stars, the standard train-once / serve-many fleet shape.
    detector = AeroDetector(config)
    detector.fit(dataset.train[:, :SHARD_STARS], dataset.train_timestamps)
    return detector, dataset


def _window_stacks(detector, dataset):
    """``TICKS`` stacks of ``NUM_SHARDS`` distinct scaled serving windows."""
    window = detector.config.window
    scaled = detector.scaler.transform(dataset.test[:, :SHARD_STARS])
    stacks = np.empty((TICKS, NUM_SHARDS, window, SHARD_STARS))
    for tick in range(TICKS):
        for shard in range(NUM_SHARDS):
            start = (tick * NUM_SHARDS + shard) % (len(scaled) - window)
            stacks[tick, shard] = scaled[start:start + window]
    return stacks


def _run_serving_comparison():
    detector, dataset = _fit_detector()
    compiled = compile_detector(detector)
    compiled32 = compile_detector(detector, dtype="float32")
    window, short = detector.config.window, detector.config.short_window
    stacks = _window_stacks(detector, dataset)
    longs = stacks.transpose(0, 1, 3, 2)                  # (TICKS, S, N, W)
    windows_served = TICKS * NUM_SHARDS

    def best_of(measure, passes=2):
        """Best-of-N wall times (first pass also warms the plan memos)."""
        results = [measure() for _ in range(passes)]
        return min(seconds for seconds, _ in results), results[-1][1]

    def serve(score_one_window):
        scores = np.empty((TICKS, NUM_SHARDS, SHARD_STARS))
        started = time.perf_counter()
        for tick in range(TICKS):
            for shard in range(NUM_SHARDS):
                long = longs[tick, shard:shard + 1]
                scores[tick, shard] = score_one_window(long, long[:, :, window - short:])[0]
        return time.perf_counter() - started, scores

    # --- autograd: one Tensor-graph forward per window ---------------------
    autograd_seconds, autograd_scores = best_of(
        lambda: serve(
            lambda long, short_w: detector.score_windows(long, short_w, backend="autograd")
        )
    )
    # --- compiled, same single-window calls (bit-equal) --------------------
    single_seconds, single_scores = best_of(lambda: serve(compiled.score_windows))

    # --- compiled, fused (S, W, N) stack per tick --------------------------
    def serve_stacked(engine):
        scores = np.empty((TICKS, NUM_SHARDS, SHARD_STARS))
        started = time.perf_counter()
        for tick in range(TICKS):
            scores[tick] = engine.score_stack(stacks[tick])
        return time.perf_counter() - started, scores

    fused_seconds, fused_scores = best_of(lambda: serve_stacked(compiled), passes=3)
    fused32_seconds, fused32_scores = best_of(lambda: serve_stacked(compiled32), passes=3)

    return {
        "num_variates": SHARD_STARS,
        "windows_served": windows_served,
        "autograd_seconds": autograd_seconds,
        "single_seconds": single_seconds,
        "fused_seconds": fused_seconds,
        "fused32_seconds": fused32_seconds,
        "autograd_scores": autograd_scores,
        "single_scores": single_scores,
        "fused_scores": fused_scores,
        "fused32_scores": fused32_scores,
    }


def test_runtime_speedup(benchmark, profile):
    result = run_once(benchmark, _run_serving_comparison)
    served = result["windows_served"]

    rows = [
        ("autograd", result["autograd_seconds"]),
        ("compiled f64", result["single_seconds"]),
        ("fused stack f64", result["fused_seconds"]),
        ("fused stack f32", result["fused32_seconds"]),
    ]
    print()
    print(f"{'path':<18}{'ms/window':>12}{'windows/sec':>14}{'speedup':>10}")
    print("-" * 54)
    for name, seconds in rows:
        print(
            f"{name:<18}{1e3 * seconds / served:>12.3f}"
            f"{served / seconds:>14,.0f}"
            f"{result['autograd_seconds'] / seconds:>9.1f}x"
        )

    # float64 plans are bit-for-bit equal to the autograd scores.
    assert np.array_equal(result["single_scores"], result["autograd_scores"])
    assert np.array_equal(result["fused_scores"], result["autograd_scores"])
    np.testing.assert_allclose(
        result["fused32_scores"], result["autograd_scores"], atol=1e-5, rtol=1e-4
    )
    # Tape removal alone must already pay off on identical call patterns
    # (measured ~3x; generous floor so shared-runner noise cannot flake it).
    assert result["autograd_seconds"] / result["single_seconds"] >= 1.3
    # Acceptance: the compiled runtime serves single-window scores >= 5x
    # faster than the autograd path (fused multi-star plans).
    best = min(result["fused_seconds"], result["fused32_seconds"])
    assert result["autograd_seconds"] / best >= MIN_SPEEDUP
