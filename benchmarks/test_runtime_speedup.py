"""Benchmark R1 — compiled inference runtime vs the autograd forward path.

Serving scenario: every exposure tick delivers one fresh window per star
shard, and each window is scored individually through the autograd model —
the PR-1 single-window serving cost (``AeroDetector.score_windows`` with
batch 1, exactly what a per-shard ``StreamingDetector`` pays per step).

The compiled runtime (:mod:`repro.runtime`) attacks that cost twice:

* ``score_windows`` on tape-free plans — the same single-window calls with
  no ``Tensor`` allocation, memoized time embeddings and fused kernels,
  bit-for-bit equal to the autograd scores in float64;
* ``score_stack`` — the fused multi-star path: the whole ``(S, W, N)``
  stack of shard windows in **one** plan call (plus an optional float32
  execution mode), which is how ``FleetManager`` serves on the compiled
  backend.

The acceptance criterion is that the compiled runtime serves single-window
scores with at least 5x the throughput of the autograd path; the fused
stack plans deliver it (the table below also reports the per-call ratio).
"""

import time

import numpy as np

from conftest import run_once

from repro.core import AeroConfig, AeroDetector
from repro.data import load_synthetic
from repro.runtime import compile_detector

NUM_SHARDS = 48        # windows served per exposure tick
SHARD_STARS = 8        # stars per shard (fleet geometry: 48 x 8 = 384 stars)
TICKS = 12             # measured exposure ticks
MIN_SPEEDUP = 5.0      # acceptance: compiled runtime >= 5x autograd

INCREMENTAL_SHARDS = 96        # incremental serving fleet (96 x 8 = 768 stars)
INCREMENTAL_TICKS = 240        # sliding exposure ticks for the incremental lane
FULL_MODEL_TICKS = 40          # shorter ungated lane: ~18 ms/tick fused
MIN_INCREMENTAL_SPEEDUP = 3.0  # acceptance: incremental >= 3x the fused tick (GCN profile)


def _fit_detector():
    config = AeroConfig(
        window=24, short_window=8, d_model=16, num_heads=2,
        train_stride=3, max_epochs_stage1=4, max_epochs_stage2=3,
        batch_size=16, learning_rate=5e-3,
    )
    dataset = load_synthetic("SyntheticMiddle", scale=0.05)
    # Serve one camera-field shard: the model is trained on (and scores)
    # SHARD_STARS stars, the standard train-once / serve-many fleet shape.
    detector = AeroDetector(config)
    detector.fit(dataset.train[:, :SHARD_STARS], dataset.train_timestamps)
    return detector, dataset


def _window_stacks(detector, dataset):
    """``TICKS`` stacks of ``NUM_SHARDS`` distinct scaled serving windows."""
    window = detector.config.window
    scaled = detector.scaler.transform(dataset.test[:, :SHARD_STARS])
    stacks = np.empty((TICKS, NUM_SHARDS, window, SHARD_STARS))
    for tick in range(TICKS):
        for shard in range(NUM_SHARDS):
            start = (tick * NUM_SHARDS + shard) % (len(scaled) - window)
            stacks[tick, shard] = scaled[start:start + window]
    return stacks


def _run_serving_comparison():
    detector, dataset = _fit_detector()
    compiled = compile_detector(detector)
    compiled32 = compile_detector(detector, dtype="float32")
    window, short = detector.config.window, detector.config.short_window
    stacks = _window_stacks(detector, dataset)
    longs = stacks.transpose(0, 1, 3, 2)                  # (TICKS, S, N, W)
    windows_served = TICKS * NUM_SHARDS

    def best_of(measure, passes=2):
        """Best-of-N wall times (first pass also warms the plan memos)."""
        results = [measure() for _ in range(passes)]
        return min(seconds for seconds, _ in results), results[-1][1]

    def serve(score_one_window):
        scores = np.empty((TICKS, NUM_SHARDS, SHARD_STARS))
        started = time.perf_counter()
        for tick in range(TICKS):
            for shard in range(NUM_SHARDS):
                long = longs[tick, shard:shard + 1]
                scores[tick, shard] = score_one_window(long, long[:, :, window - short:])[0]
        return time.perf_counter() - started, scores

    # --- autograd: one Tensor-graph forward per window ---------------------
    autograd_seconds, autograd_scores = best_of(
        lambda: serve(
            lambda long, short_w: detector.score_windows(long, short_w, backend="autograd")
        )
    )
    # --- compiled, same single-window calls (bit-equal) --------------------
    single_seconds, single_scores = best_of(lambda: serve(compiled.score_windows))

    # --- compiled, fused (S, W, N) stack per tick --------------------------
    def serve_stacked(engine):
        scores = np.empty((TICKS, NUM_SHARDS, SHARD_STARS))
        started = time.perf_counter()
        for tick in range(TICKS):
            scores[tick] = engine.score_stack(stacks[tick])
        return time.perf_counter() - started, scores

    fused_seconds, fused_scores = best_of(lambda: serve_stacked(compiled), passes=3)
    fused32_seconds, fused32_scores = best_of(lambda: serve_stacked(compiled32), passes=3)

    return {
        "num_variates": SHARD_STARS,
        "windows_served": windows_served,
        "autograd_seconds": autograd_seconds,
        "single_seconds": single_seconds,
        "fused_seconds": fused_seconds,
        "fused32_seconds": fused32_seconds,
        "autograd_scores": autograd_scores,
        "single_scores": single_scores,
        "fused_scores": fused_scores,
        "fused32_scores": fused32_scores,
    }


def _sliding_serving_data(detector, dataset, ticks, num_shards):
    """A sliding fleet night: seed windows, per-tick rows, per-tick stacks.

    Unlike :func:`_window_stacks` (independent windows per tick), this is
    the incremental serving shape: every shard's window advances by exactly
    one row per tick, so tick ``t``'s stack shares ``W - 1`` rows with tick
    ``t - 1``'s.
    """
    window = detector.config.window
    scaled = detector.scaler.transform(dataset.test[:, :SHARD_STARS])
    needed = window + num_shards + ticks
    if len(scaled) < needed:
        scaled = np.concatenate([scaled] * (-(-needed // len(scaled))))
    base = np.stack([scaled[s : s + window] for s in range(num_shards)])
    rows = np.empty((ticks, num_shards, SHARD_STARS))
    tick_stacks = np.empty((ticks, num_shards, window, SHARD_STARS))
    for tick in range(ticks):
        for shard in range(num_shards):
            rows[tick, shard] = scaled[window + shard + tick]
            tick_stacks[tick, shard] = scaled[shard + tick + 1 : shard + tick + 1 + window]
    return base, rows, tick_stacks


def _run_incremental_comparison():
    detector, dataset = _fit_detector()
    # The GCN serving profile: no temporal stage, static correlation graph.
    # This is where incremental serving shines — the static adjacency, its
    # normalization and the ring staging all cache across ticks, leaving
    # only the newest errors column's propagation per tick.
    gcn_detector = AeroDetector(detector.config, use_temporal=False, graph_mode="static")
    gcn_detector.fit(dataset.train[:, :SHARD_STARS], dataset.train_timestamps)

    def measure(fitted, ticks, num_shards):
        compiled = compile_detector(fitted)
        base, rows, tick_stacks = _sliding_serving_data(fitted, dataset, ticks, num_shards)
        staging = np.empty_like(tick_stacks[0])
        fused_scores = np.empty((ticks, num_shards, SHARD_STARS))
        incremental_scores = np.empty_like(fused_scores)

        def fused_pass():
            # What a compiled-backend fleet pays per tick: stage every
            # shard's current window from its ring, then one fused
            # score_stack call (see FleetManager._step_inner).
            started = time.perf_counter()
            for tick in range(ticks):
                for shard in range(num_shards):
                    staging[shard] = tick_stacks[tick, shard]
                fused_scores[tick] = compiled.score_stack(staging)
            return time.perf_counter() - started

        def incremental_pass():
            state = compiled.new_incremental_state(num_shards)
            state.rebuild(base)
            started = time.perf_counter()
            for tick in range(ticks):
                incremental_scores[tick] = compiled.score_stack_step(state, rows[tick])
            return time.perf_counter() - started

        fused_seconds = min(fused_pass() for _ in range(3))
        incremental_seconds = min(incremental_pass() for _ in range(3))
        return fused_seconds, incremental_seconds, fused_scores.copy(), incremental_scores.copy()

    # The gated lane serves the larger incremental fleet: per-tick staging
    # grows with the shard count, which is precisely the cost the state's
    # rings retire, while the full-model lane keeps the standard geometry
    # (it is ungated and ~18 ms/tick, so fewer ticks suffice).
    gcn = measure(gcn_detector, INCREMENTAL_TICKS, INCREMENTAL_SHARDS)
    full = measure(detector, FULL_MODEL_TICKS, NUM_SHARDS)
    return {
        "gcn": gcn + (INCREMENTAL_TICKS,),
        "full": full + (FULL_MODEL_TICKS,),
    }


def test_incremental_speedup(benchmark, profile):
    """Incremental serving lane: O(1)-recompute ticks vs the fused stack.

    Acceptance gates bit-equality on every tick for both profiles, and a
    >= 3x per-tick throughput gain on the GCN serving profile.  The full
    transformer profile has no exact cross-tick reuse to exploit — the
    slot-relative time embedding re-phases *every* window position on each
    slide, so all attention K/V change and the exact-incremental tick ends
    up near fused parity (measured ~0.85-1.0x: the staging-copy and
    memoized-stage savings roughly offset the workspace overhead); it is
    reported, asserted bit-equal and loosely gated against pathological
    regressions only.
    """
    result = run_once(benchmark, _run_incremental_comparison)

    print()
    print(f"{'profile':<22}{'ms/tick':>10}{'ticks/sec':>12}{'vs fused':>10}")
    print("-" * 54)
    for label, key in (("gcn static-graph", "gcn"), ("full transformer", "full")):
        fused_seconds, incremental_seconds, _, _, ticks = result[key]
        for name, seconds in ((f"{label} fused", fused_seconds),
                              (f"{label} incr", incremental_seconds)):
            print(
                f"{name:<22}{1e3 * seconds / ticks:>10.3f}"
                f"{ticks / seconds:>12,.0f}"
                f"{fused_seconds / seconds:>9.2f}x"
            )

    for key in ("gcn", "full"):
        _, _, fused_scores, incremental_scores, _ = result[key]
        # Exactness first: every tick bit-equal to the fused stack forward.
        assert np.array_equal(fused_scores, incremental_scores), key
    gcn_fused, gcn_incremental = result["gcn"][:2]
    full_fused, full_incremental = result["full"][:2]
    # Acceptance: >= 3x the fused score_stack per-tick throughput
    # (measured ~4x; margin absorbs shared-runner noise).
    assert gcn_fused / gcn_incremental >= MIN_INCREMENTAL_SPEEDUP
    # The full profile must stay in the fused tick's neighbourhood.
    assert full_fused / full_incremental >= 0.7


def test_runtime_speedup(benchmark, profile):
    result = run_once(benchmark, _run_serving_comparison)
    served = result["windows_served"]

    rows = [
        ("autograd", result["autograd_seconds"]),
        ("compiled f64", result["single_seconds"]),
        ("fused stack f64", result["fused_seconds"]),
        ("fused stack f32", result["fused32_seconds"]),
    ]
    print()
    print(f"{'path':<18}{'ms/window':>12}{'windows/sec':>14}{'speedup':>10}")
    print("-" * 54)
    for name, seconds in rows:
        print(
            f"{name:<18}{1e3 * seconds / served:>12.3f}"
            f"{served / seconds:>14,.0f}"
            f"{result['autograd_seconds'] / seconds:>9.1f}x"
        )

    # float64 plans are bit-for-bit equal to the autograd scores.
    assert np.array_equal(result["single_scores"], result["autograd_scores"])
    assert np.array_equal(result["fused_scores"], result["autograd_scores"])
    np.testing.assert_allclose(
        result["fused32_scores"], result["autograd_scores"], atol=1e-5, rtol=1e-4
    )
    # Tape removal alone must already pay off on identical call patterns
    # (measured ~3x; generous floor so shared-runner noise cannot flake it).
    assert result["autograd_seconds"] / result["single_seconds"] >= 1.3
    # Acceptance: the compiled runtime serves single-window scores >= 5x
    # faster than the autograd path (fused multi-star plans).
    best = min(result["fused_seconds"], result["fused32_seconds"])
    assert result["autograd_seconds"] / best >= MIN_SPEEDUP
