"""Benchmark E8 — Fig. 9: stage-wise reconstruction-error decomposition.

The paper's claim: concurrent-noise segments show large stage-1 errors that
the concurrent-noise reconstruction module removes, while true anomalies keep
large errors after both stages.
"""

from conftest import run_once

from repro.experiments import run_fig9


def test_fig9_error_decomposition(benchmark, profile):
    result = run_once(benchmark, run_fig9, "SyntheticMiddle", profile)
    summary = result["summary"]
    print(f"\nmean score on noise points:   stage1={summary['noise_stage1']:.3f}  final={summary['noise_final']:.3f}")
    print(f"mean score on anomaly points: stage1={summary['anomaly_stage1']:.3f}  final={summary['anomaly_final']:.3f}")
    print(f"noise error reduction factor : {result['noise_error_reduction']:.2f}x")
    print(f"anomaly error retention      : {result['anomaly_error_retention']:.2f}x")

    # Noise is suppressed by the second stage ...
    assert result["noise_error_reduction"] > 1.0
    # ... while anomalies keep a substantial share of their error.
    assert result["anomaly_error_retention"] > 0.5
    # And anomalies remain easier to flag than noise after both stages,
    # relative to their stage-1 magnitudes.
    assert result["anomaly_error_retention"] > 1.0 / result["noise_error_reduction"]
