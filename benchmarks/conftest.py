"""Benchmark configuration.

Every benchmark regenerates one table or figure of the paper.  They run under
the ``tiny`` experiment profile by default so the whole suite finishes in a
few minutes on CPU; set ``REPRO_PROFILE=fast`` or ``REPRO_PROFILE=full`` for
larger (slower, closer-to-paper) runs, and ``REPRO_FULL_GRID=1`` to sweep all
datasets instead of one representative dataset per table.
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# Default to the smallest profile unless the user explicitly chose one.
os.environ.setdefault("REPRO_PROFILE", "tiny")


@pytest.fixture(scope="session")
def profile():
    from repro.experiments import get_profile

    return get_profile()


@pytest.fixture(scope="session")
def full_grid() -> bool:
    return os.environ.get("REPRO_FULL_GRID", "0") == "1"


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
