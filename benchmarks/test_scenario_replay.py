"""Benchmark S3 — scenario replay at fleet scale: faults must not slow serving.

Replays a 32-star survey night (8 shards x 4 variates) through the
:class:`~repro.simulation.ReplayHarness` twice — once clean, once with the
full fault cocktail (5% NaN gaps, dropout, duplicates, reordering) — and
enforces:

* **throughput** — the harness sustains fleet-scale replay (one vectorised
  model call per tick) at more than ``MIN_TICKS_PER_SECOND``;
* **fault overhead** — NaN masking, imputation and re-arm tracking cost at
  most ``MAX_FAULT_OVERHEAD`` extra wall-clock versus the clean night;
* **determinism at scale** — two replays of the faulty night produce
  bit-identical traces.
"""

import time

import pytest

from conftest import run_once

from repro.core import AeroConfig, AeroDetector
from repro.evaluation import pot_threshold
from repro.simulation import ReplayHarness, ScenarioConfig, build_scenario
from repro.streaming import AlertPolicy, FleetManager

NUM_SHARDS = 8
MIN_TICKS_PER_SECOND = 5.0
MAX_FAULT_OVERHEAD = 1.6

DETECTOR = AeroConfig.fast(window=32, short_window=8).scaled(
    max_epochs_stage1=10, max_epochs_stage2=5, learning_rate=5e-3,
    d_model=24, num_heads=2, train_stride=2, batch_size=16,
)

CLEAN = ScenarioConfig(
    name="clean-night", num_shards=NUM_SHARDS, seed=7,
    nan_fraction=0.0, num_dropouts=0, num_duplicate_frames=0,
    num_reordered_frames=0, num_drift_stars=0, cadence_jitter_seconds=0.0,
)
FAULTY = ScenarioConfig(name="faulty-night", num_shards=NUM_SHARDS, seed=7)


def _replay(detector, scenario, threshold):
    fleet = FleetManager(
        detector,
        num_shards=scenario.config.num_shards,
        alert_policy=AlertPolicy(min_consecutive=2, cooldown=30),
        threshold=threshold,
    )
    started = time.perf_counter()
    report, trace = ReplayHarness(fleet, scenario).run()
    return report, trace, time.perf_counter() - started


def _run():
    clean = build_scenario(CLEAN)
    faulty = build_scenario(FAULTY)
    detector = AeroDetector(DETECTOR)
    detector.fit(clean.train, clean.train_timestamps)
    threshold = pot_threshold(
        detector.score(clean.calibration, clean.calibration_timestamps), q=5e-3
    )

    _, _, clean_seconds = _replay(detector, clean, threshold)
    report, first, faulty_seconds = _replay(detector, faulty, threshold)
    _, second, _ = _replay(detector, faulty, threshold)
    return {
        "clean_seconds": clean_seconds,
        "faulty_seconds": faulty_seconds,
        "ticks": first.num_ticks,
        "recall": report.recall,
        "traces_identical": first.matches(second),
    }


@pytest.mark.slow
def test_scenario_replay_throughput(benchmark):
    result = run_once(benchmark, _run)

    ticks_per_second = result["ticks"] / result["faulty_seconds"]
    overhead = result["faulty_seconds"] / result["clean_seconds"]
    print(
        f"\nreplay of {result['ticks']} ticks x {NUM_SHARDS} shards: "
        f"clean {result['clean_seconds']:.2f}s, "
        f"faulty {result['faulty_seconds']:.2f}s "
        f"({ticks_per_second:.1f} ticks/s, fault overhead {overhead:.2f}x), "
        f"recall {result['recall']:.2f}"
    )
    assert result["traces_identical"], "faulty-night replay must be deterministic"
    assert ticks_per_second >= MIN_TICKS_PER_SECOND
    assert overhead <= MAX_FAULT_OVERHEAD
