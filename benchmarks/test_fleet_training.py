"""Benchmark T1 — parallel fleet training vs sequential per-star training.

Refreshing a GWAC field means retraining many independent per-star models.
Each training is pure-Python/numpy compute with zero shared state, so a
process pool should scale the throughput with the core count.  This
benchmark trains an 8-star workload twice — sequentially and through a
:class:`repro.training.FleetTrainer` process pool — and checks

* the parallel run produces *bit-identical* per-star weights (worker-count
  independence, the subsystem's determinism contract), and
* on machines with enough cores, a wall-clock speedup of at least 2x
  (the acceptance criterion; skipped below 4 usable cores, where the
  speedup is physically unavailable).
"""

import os

import numpy as np
import pytest

from conftest import run_once

from repro.core import AeroConfig
from repro.nn.serialization import load_arrays
from repro.training import FleetTrainer, StarTask

NUM_STARS = 8
WORKERS = 4
MIN_SPEEDUP = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _workload():
    config = AeroConfig(
        window=24, short_window=8, d_model=16, num_heads=2,
        train_stride=3, max_epochs_stage1=4, max_epochs_stage2=3,
        batch_size=16, learning_rate=5e-3,
    )
    rng = np.random.default_rng(0)
    tasks = [
        StarTask(star_id=f"star-{i:02d}", series=rng.normal(10.0, 1.0, size=(500, 6)))
        for i in range(NUM_STARS)
    ]
    return config, tasks


def _star_weights(report, star_id):
    arrays = load_arrays(report.result(star_id).checkpoint_path)
    return {name: value for name, value in arrays.items() if name.startswith("model.")}


def test_fleet_training_speedup(tmp_path, benchmark):
    config, tasks = _workload()

    sequential = FleetTrainer(config, tmp_path / "sequential", executor="serial").train(tasks)
    assert not sequential.failed

    parallel = run_once(
        benchmark,
        FleetTrainer(
            config, tmp_path / "parallel", workers=WORKERS, executor="process"
        ).train,
        tasks,
    )
    assert not parallel.failed

    # Determinism: same weights bit for bit, regardless of worker count.
    for task in tasks:
        weights_seq = _star_weights(sequential, task.star_id)
        weights_par = _star_weights(parallel, task.star_id)
        assert set(weights_seq) == set(weights_par)
        for name in weights_seq:
            np.testing.assert_array_equal(weights_seq[name], weights_par[name], err_msg=name)

    speedup = sequential.wall_seconds / parallel.wall_seconds
    print(
        f"\nfleet training: {NUM_STARS} stars, sequential {sequential.wall_seconds:.1f}s, "
        f"{WORKERS} process workers {parallel.wall_seconds:.1f}s -> {speedup:.2f}x "
        f"({_usable_cores()} usable cores)"
    )
    if _usable_cores() < WORKERS:
        pytest.skip(
            f"only {_usable_cores()} usable core(s): {MIN_SPEEDUP}x wall-clock speedup "
            "is physically unavailable (determinism was still verified)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"parallel fleet training only reached {speedup:.2f}x over sequential "
        f"(expected >= {MIN_SPEEDUP}x with {WORKERS} workers)"
    )
