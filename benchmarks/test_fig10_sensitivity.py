"""Benchmark E9 — Fig. 10: hyperparameter sensitivity of AERO.

The full figure sweeps the short window, head count, encoder layers and long
window; the default benchmark reproduces the short-window sweep (Fig. 10a-c)
and the head-count sweep (Fig. 10d), which carry the paper's main findings:
training/testing time grows with the short window while F1 stays in a stable
band across reasonable settings.
"""

import pytest

from conftest import run_once

from repro.experiments import format_series, sweep_parameter


def _run_sweeps(profile, full_grid):
    sweeps = {"short_window": (8, 12, 16), "num_heads": (1, 2)}
    if full_grid:
        sweeps["num_encoder_layers"] = (1, 2)
        sweeps["window"] = (30, 40, 50)
    return {
        parameter: sweep_parameter(parameter, values, "SyntheticMiddle", profile)
        for parameter, values in sweeps.items()
    }


@pytest.mark.slow
def test_fig10_parameter_sensitivity(benchmark, profile, full_grid):
    results = run_once(benchmark, _run_sweeps, profile, full_grid)

    print()
    for parameter, rows in results.items():
        print(format_series(
            f"Fig. 10 ({parameter})",
            [row["value"] for row in rows],
            [row["f1"] for row in rows],
            x_label=parameter, y_label="F1",
        ))

    short_window_rows = results["short_window"]
    assert all(0.0 <= row["f1"] <= 1.0 for rows in results.values() for row in rows)
    # Training time per epoch grows with the short window size (Fig. 10a).
    # Wall-clock comparisons are noisy on loaded CI machines, so only guard
    # against a gross inversion of the trend.
    assert short_window_rows[-1]["train_seconds_per_epoch"] >= short_window_rows[0]["train_seconds_per_epoch"] * 0.5
    # Performance does not collapse across head counts (Fig. 10d: stable band).
    head_rows = results["num_heads"]
    f1_values = [row["f1"] for row in head_rows]
    assert max(f1_values) - min(f1_values) <= 1.0
