"""Benchmark E10 — Fig. 5: examples of injected true anomalies."""

import numpy as np
from conftest import run_once

from repro.experiments import run_fig5


def test_fig5_anomaly_templates(benchmark):
    curves = run_once(benchmark, run_fig5, 60, 2.5)
    assert {"flare", "microlensing", "eclipse", "nova", "supernova"} <= set(curves)
    # Flares and novae rise fast and decay slowly; eclipses are dips.
    flare = curves["flare"]
    assert np.argmax(flare) < len(flare) * 0.3
    assert curves["eclipse"].min() < 0
    for name, curve in curves.items():
        assert np.isfinite(curve).all(), name
