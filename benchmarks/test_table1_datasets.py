"""Benchmark E1 — Table I: dataset statistics for the six evaluation datasets."""

from conftest import run_once

from repro.experiments import run_table1


def test_table1_dataset_statistics(benchmark, profile):
    rows, text = run_once(benchmark, run_table1, profile=profile)
    print("\n" + text)
    assert len(rows) == 6
    # Qualitative checks mirroring Table I: every dataset has rare anomalies
    # and a larger fraction of concurrent noise (A/N < 1).
    for row in rows:
        assert 0.0 < row["anomaly_pct"] < 5.0
        assert row["noise_pct"] > row["anomaly_pct"]
        assert row["anomaly_segments"] >= 1
