"""Benchmark E4 — Table IV: ablation study of AERO's components.

The paper's finding: removing the temporal module, replacing the univariate
input, or removing the concurrent-noise module causes the largest drops, and
the window-wise graph beats static/dynamic graph replacements.
"""

import pytest

from conftest import run_once

from repro.experiments import ABLATION_DATASETS, format_ablation_table, run_ablation


@pytest.mark.slow
def test_table4_ablation(benchmark, profile, full_grid):
    datasets = ABLATION_DATASETS if full_grid else ("SyntheticMiddle",)
    rows = run_once(benchmark, run_ablation, datasets, None, profile)
    print("\n" + format_ablation_table(rows, datasets))

    assert len(rows) == 8 * len(datasets)
    by_variant = {}
    for row in rows:
        assert 0.0 <= row["f1"] <= 1.0
        by_variant.setdefault(row["variant_id"], []).append(row["f1"])
    assert set(by_variant) == {
        "full", "no_temporal", "no_univariate_input", "no_short_window",
        "no_noise_module", "no_noise_multivariate", "static_graph", "dynamic_graph",
    }
    # Single-run rankings at the tiny profile are too noisy to assert; larger
    # profiles check that the full model is not dominated by its ablations.
    if profile.name != "tiny":
        mean_f1 = {variant: sum(values) / len(values) for variant, values in by_variant.items()}
        best = max(mean_f1.values())
        assert mean_f1["full"] >= best - 0.25
        assert mean_f1["full"] >= min(mean_f1.values())
