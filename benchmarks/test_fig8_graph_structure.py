"""Benchmark E7 — Fig. 8: learned window-wise graphs versus ground-truth noise structure.

The regenerated artifact is the set of window-wise adjacency matrices sampled
during test-split noise events together with the ground-truth co-occurrence
graph; the quantitative check asserts that edges concentrate inside the
noise-affected clique (positive agreement).
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_fig8


def test_fig8_window_wise_graph_structure(benchmark, profile):
    result = run_once(benchmark, run_fig8, "SyntheticMiddle", 3, profile)
    learned = result["learned_graphs"]
    truth = result["ground_truth_graph"]
    print(f"\nsnapshots at test timestamps: {result['snapshot_timestamps']}")
    print(f"agreement scores (inside-clique minus outside-clique weight): "
          f"{[round(a, 3) for a in result['agreements']]}")

    assert len(learned) >= 1
    for graph in learned:
        assert graph.shape == truth.shape
        assert np.isfinite(graph).all()
        assert graph.min() >= 0.0 and graph.max() <= 1.0 + 1e-9
    # On average the learned graphs should put more weight inside the
    # ground-truth noise clique than outside it (the paper's Fig. 8 claim).
    assert float(np.mean(result["agreements"])) > 0.0
