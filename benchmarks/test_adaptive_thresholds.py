"""Benchmark S2 — per-star adaptive thresholds: vectorized vs scalar-loop POT.

A 1k-star fleet served through per-star SPOT instances pays one Python
``IncrementalPOT.update`` call per star per tick; the
:class:`~repro.streaming.VectorizedIncrementalPOT` advances the whole fleet
with one array-native update.  This benchmark enforces the two acceptance
criteria at production scale:

* **bit-equality** — over the whole stream the vectorized fleet's alarms,
  thresholds, observation counts, excess sets and re-fit cadence equal 1k
  independent scalar instances (same ``refit_interval``, same
  ``max_excesses``);
* **speed** — the vectorized per-tick update is at least 10x faster than
  the scalar loop.
"""

import copy
import time

import numpy as np
import pytest

from conftest import run_once

from repro.streaming import IncrementalPOT, VectorizedIncrementalPOT

NUM_STARS = 1000
TICKS = 300
CALIBRATION = 2000
KWARGS = dict(q=1e-3, level=0.99, refit_interval=32, max_excesses=256)


def _run_comparison():
    rng = np.random.default_rng(0)
    calibration = rng.exponential(size=CALIBRATION)

    reference = IncrementalPOT(**KWARGS).fit(calibration)
    # Shared calibration: cloning the fitted reference is state-identical to
    # fitting each star separately and keeps the setup out of the timings.
    scalars = [copy.deepcopy(reference) for _ in range(NUM_STARS)]
    vec = VectorizedIncrementalPOT(**KWARGS).fit(calibration, num_stars=NUM_STARS)

    # Per-star drift so the streams (and staggered re-fits) diverge star by
    # star — the scenario a frozen global threshold silently mislabels.
    drift = 1.0 + 0.5 * np.arange(NUM_STARS) / NUM_STARS
    streams = rng.exponential(size=(TICKS, NUM_STARS)) * drift

    started = time.perf_counter()
    scalar_alarms = np.empty((TICKS, NUM_STARS), dtype=np.int64)
    for tick in range(TICKS):
        row = streams[tick]
        scalar_alarms[tick] = [
            pot.update(float(score)) for pot, score in zip(scalars, row)
        ]
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    vector_alarms = np.empty((TICKS, NUM_STARS), dtype=np.int64)
    for tick in range(TICKS):
        vector_alarms[tick] = vec.update(streams[tick])
    vector_seconds = time.perf_counter() - started

    return {
        "scalars": scalars,
        "vec": vec,
        "scalar_alarms": scalar_alarms,
        "vector_alarms": vector_alarms,
        "scalar_tick_ms": 1e3 * scalar_seconds / TICKS,
        "vector_tick_ms": 1e3 * vector_seconds / TICKS,
        "speedup": scalar_seconds / vector_seconds,
    }


@pytest.mark.slow
def test_vectorized_pot_bit_equal_and_10x(benchmark):
    result = run_once(benchmark, _run_comparison)
    scalars, vec = result["scalars"], result["vec"]

    np.testing.assert_array_equal(result["vector_alarms"], result["scalar_alarms"])
    np.testing.assert_array_equal(vec.thresholds, [pot.threshold for pot in scalars])
    np.testing.assert_array_equal(
        vec.num_observations, [pot.num_observations for pot in scalars]
    )
    np.testing.assert_array_equal(vec.num_excesses, [pot.num_excesses for pot in scalars])
    np.testing.assert_array_equal(vec.num_refits, [pot.num_refits for pot in scalars])
    for star, pot in enumerate(scalars):
        np.testing.assert_array_equal(
            vec._pool[star, : vec._counts[star]], pot._excesses[: pot.num_excesses]
        )

    print(
        f"\n[adaptive thresholds] {NUM_STARS} stars x {TICKS} ticks: "
        f"scalar loop {result['scalar_tick_ms']:.2f} ms/tick, "
        f"vectorized {result['vector_tick_ms']:.3f} ms/tick "
        f"({result['speedup']:.1f}x), total refits {vec.total_refits}"
    )
    assert result["speedup"] >= 10.0, (
        f"vectorized POT only {result['speedup']:.1f}x faster than the scalar loop"
    )
