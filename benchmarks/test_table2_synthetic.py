"""Benchmark E2 — Table II: overall performance on the synthetic datasets.

All twelve methods (eleven baselines + AERO) are trained and evaluated with
the shared POT + point-adjust protocol.  By default one synthetic dataset is
used (``REPRO_FULL_GRID=1`` sweeps all three).  The expected shape, per the
paper: AERO attains the best (or tied-best) F1, and the purely univariate
methods pay a precision penalty for concurrent noise.
"""

from conftest import run_once

from repro.experiments import SYNTHETIC_DATASETS, format_performance_table, run_overall_comparison


def test_table2_synthetic_overall_performance(benchmark, profile, full_grid):
    datasets = SYNTHETIC_DATASETS if full_grid else SYNTHETIC_DATASETS[:1]
    rows = run_once(benchmark, run_overall_comparison, datasets, None, profile)
    print("\n" + format_performance_table(rows, datasets))

    assert len(rows) == 12 * len(datasets)
    for row in rows:
        assert 0.0 <= row["precision"] <= 1.0
        assert 0.0 <= row["recall"] <= 1.0
    # The paper reports AERO with the strictly best F1.  With a handful of
    # anomaly segments and a few training epochs (the tiny profile), single-run
    # rankings are too noisy to assert; larger profiles enforce the ordering.
    if profile.name != "tiny":
        aero_rows = [row for row in rows if row["method"] == "AERO"]
        baseline_rows = [row for row in rows if row["method"] != "AERO"]
        best_baseline = max(row["f1"] for row in baseline_rows)
        median_baseline = sorted(row["f1"] for row in baseline_rows)[len(baseline_rows) // 2]
        aero_mean = sum(row["f1"] for row in aero_rows) / len(aero_rows)
        assert aero_mean >= median_baseline - 0.05
        assert aero_mean >= best_baseline - 0.35
