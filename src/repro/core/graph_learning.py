"""Window-wise graph structure learning (Section III-D, Eq. 12-13).

Concurrent noise is spatially and temporally random: an unpredictable subset
of stars is affected during an unpredictable period.  Instead of learning one
static graph (GDN-style) or a smoothly evolving dynamic graph (ESG-style),
AERO builds a *separate* graph for every sliding window directly from the
stage-1 reconstruction errors: two stars are strongly connected in window
``t`` exactly when their error signatures within that window are similar —
which is the fingerprint of a shared environmental interference.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "window_wise_adjacency",
    "batch_window_adjacency",
    "static_complete_adjacency",
    "noise_ground_truth_graph",
]


def window_wise_adjacency(errors: np.ndarray, eps: float = 1e-8, non_negative: bool = True) -> np.ndarray:
    """Compute the window-specific adjacency matrix ``A_t`` from errors ``E_t``.

    Parameters
    ----------
    errors:
        Stage-1 reconstruction errors of one window, shape ``(N, omega)``.
    eps:
        Numerical floor for the vector norms.
    non_negative:
        Clip negative cosine similarities to zero.  Concurrent noise produces
        *positively* correlated error signatures, and keeping negative edge
        weights makes the degree normalisation of Eq. 14 ill-conditioned
        (near-zero or negative row sums), so the non-negative graph is the
        default.

    Returns
    -------
    ``(N, N)`` matrix of pairwise cosine similarities (Eq. 12-13).
    """
    errors = np.asarray(errors, dtype=np.float64)
    if errors.ndim != 2:
        raise ValueError("errors must be 2-D (variates, window)")
    norms = np.linalg.norm(errors, axis=1)
    denom = np.maximum(np.outer(norms, norms), eps)
    similarity = (errors @ errors.T) / denom
    low = 0.0 if non_negative else -1.0
    return np.clip(similarity, low, 1.0)


def batch_window_adjacency(errors: np.ndarray, eps: float = 1e-8, non_negative: bool = True) -> np.ndarray:
    """Vectorised :func:`window_wise_adjacency` over a batch ``(B, N, omega)``."""
    errors = np.asarray(errors, dtype=np.float64)
    if errors.ndim != 3:
        raise ValueError("errors must be 3-D (batch, variates, window)")
    norms = np.linalg.norm(errors, axis=2)
    denom = np.maximum(norms[:, :, None] * norms[:, None, :], eps)
    similarity = np.einsum("bnw,bmw->bnm", errors, errors) / denom
    low = 0.0 if non_negative else -1.0
    return np.clip(similarity, low, 1.0)


def static_complete_adjacency(num_variates: int) -> np.ndarray:
    """Complete graph used by the ``w/o window-wise graph (static)`` ablation."""
    if num_variates <= 0:
        raise ValueError("num_variates must be positive")
    return np.ones((num_variates, num_variates))


def noise_ground_truth_graph(noise_mask: np.ndarray) -> np.ndarray:
    """Ground-truth co-occurrence graph of concurrent noise (Fig. 8d).

    Two stars are connected if they are ever affected by concurrent noise
    somewhere in the series (not necessarily at the same moment), which is
    exactly how the paper builds the reference graph for the visual
    comparison in Fig. 8.
    """
    noise_mask = np.asarray(noise_mask)
    if noise_mask.ndim != 2:
        raise ValueError("noise_mask must be 2-D (time, variates)")
    affected = (noise_mask.sum(axis=0) > 0).astype(np.float64)
    return np.outer(affected, affected)
