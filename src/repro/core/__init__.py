"""AERO: the paper's primary contribution.

Public entry points:

* :class:`AeroDetector` — fit / score / detect / evaluate on ``(T, N)`` series;
* :class:`AeroConfig` — hyperparameters (``AeroConfig.paper()`` /
  ``AeroConfig.fast()``);
* :class:`AeroModel`, :class:`AeroTrainer` — lower-level model and training loop;
* :func:`build_variant` — ablation variants of Table IV;
* graph-learning helpers used in the analysis of Fig. 8.
"""

from .config import AeroConfig
from .time_embedding import TimeEmbedding
from .temporal import TemporalReconstructionModule
from .graph_learning import (
    window_wise_adjacency,
    batch_window_adjacency,
    static_complete_adjacency,
    noise_ground_truth_graph,
)
from .noise_module import ConcurrentNoiseReconstructionModule
from .model import AeroModel, AeroForwardResult
from .trainer import AeroTrainer, TrainingHistory, EarlyStopping
from .detector import AeroDetector, DetectionReport
from .variants import ABLATION_VARIANTS, VARIANT_LABELS, build_variant

__all__ = [
    "AeroConfig",
    "TimeEmbedding",
    "TemporalReconstructionModule",
    "window_wise_adjacency",
    "batch_window_adjacency",
    "static_complete_adjacency",
    "noise_ground_truth_graph",
    "ConcurrentNoiseReconstructionModule",
    "AeroModel",
    "AeroForwardResult",
    "AeroTrainer",
    "TrainingHistory",
    "EarlyStopping",
    "AeroDetector",
    "DetectionReport",
    "ABLATION_VARIANTS",
    "VARIANT_LABELS",
    "build_variant",
]
