"""Temporal reconstruction module (Section III-C, Fig. 4b).

A Transformer encoder-decoder shared across variates reconstructs the short
window ``Y_t`` of each star from the longer context window ``X_t``.  In
accordance with the *variate independence* property, every variate is treated
as an independent univariate sequence: the ``(batch, N, W)`` input is folded
to ``(batch * N, W)`` before embedding, and the reconstruction is unfolded
back at the output layer (Eq. 10).

Two conditioning modes are supported (``AeroConfig.conditioning``):

* ``"full"`` — the literal formulation of Eq. 4: the decoder input embeds the
  raw short-window values.  On a GPU-scale substrate with early stopping this
  is the paper's setup; on the pure-numpy substrate used here the decoder
  quickly learns an identity map, which removes the anomaly signal.
* ``"masked"`` (default) — the encoder consumes only the context *preceding*
  the short window and the decoder queries carry the time embedding alone, so
  the short window is reconstructed from temporal context rather than copied.
  This preserves the module's purpose — "reconstruction focused on the latter
  part of the window while leveraging a longer context" — while remaining
  trainable at CPU scale (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    FeedForward,
    Linear,
    Module,
    Tensor,
    TransformerDecoder,
    TransformerEncoder,
)
from .config import AeroConfig
from .time_embedding import TimeEmbedding

__all__ = ["TemporalReconstructionModule"]


class TemporalReconstructionModule(Module):
    """Per-variate Transformer encoder-decoder reconstructing the short window.

    Parameters
    ----------
    config:
        Model hyperparameters.
    multivariate_input:
        When ``True`` the module consumes all variates jointly (each timestep
        is an ``N``-dimensional vector) instead of folding them into the batch
        axis.  This is only used by the ``w/o univariate input`` ablation
        variant — the paper's Table IV shows it degrades performance badly.
    num_variates:
        Required when ``multivariate_input`` is ``True``.
    use_short_window:
        When ``False`` (ablation 1-iii) the decoder reconstructs the whole
        long window; full conditioning is then used since no preceding
        context remains.
    """

    def __init__(
        self,
        config: AeroConfig,
        multivariate_input: bool = False,
        num_variates: int | None = None,
        use_short_window: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.multivariate_input = multivariate_input
        self.use_short_window = use_short_window
        self.conditioning = config.conditioning if use_short_window else "full"
        if multivariate_input and num_variates is None:
            raise ValueError("num_variates is required for multivariate input")
        self.num_variates = num_variates

        input_dim = num_variates if multivariate_input else 1
        d_model = config.d_model
        self.time_embedding = TimeEmbedding(d_model)
        # W_E and W_D of Eq. 4: value projections for the long and short windows.
        self.encoder_embedding = Linear(input_dim, d_model, rng=rng)
        self.decoder_embedding = Linear(input_dim, d_model, rng=rng)
        self.encoder = TransformerEncoder(
            d_model,
            config.num_heads,
            num_layers=config.num_encoder_layers,
            d_ff=config.d_ff,
            dropout=config.dropout,
            rng=rng,
        )
        self.decoder = TransformerDecoder(
            d_model,
            config.num_heads,
            num_layers=config.num_decoder_layers,
            d_ff=config.d_ff,
            dropout=config.dropout,
            rng=rng,
        )
        # Output head of Eq. 9: FFN followed by a sigmoid.
        self.output_ffn = FeedForward(d_model, d_model * 2, dropout=config.dropout, rng=rng)
        self.output_projection = Linear(d_model, input_dim, rng=rng)

    # ------------------------------------------------------------------
    def _fold(self, windows: np.ndarray) -> Tensor:
        """Reshape ``(batch, N, L)`` to the model input layout.

        Univariate mode returns ``(batch * N, L, 1)``; multivariate mode
        returns ``(batch, L, N)``.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError("expected input of shape (batch, variates, length)")
        batch, variates, length = windows.shape
        if self.multivariate_input:
            return Tensor(windows.transpose(0, 2, 1))
        return Tensor(windows.reshape(batch * variates, length, 1))

    def _expand_time(self, embedding: Tensor, num_variates: int) -> Tensor:
        """Repeat the per-window time embedding across folded variates."""
        if self.multivariate_input:
            return embedding
        return embedding.repeat(num_variates, axis=0)

    # ------------------------------------------------------------------
    def forward(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> Tensor:
        """Reconstruct the short windows.

        Parameters
        ----------
        long_windows:
            Context windows ``X_t`` of shape ``(batch, N, W)``.
        short_windows:
            Target windows ``Y_t`` of shape ``(batch, N, omega)``.
        long_times / short_times:
            Observation times of shape ``(batch, W)`` / ``(batch, omega)``;
            defaults to a regular cadence.

        Returns
        -------
        Tensor ``(batch, N, omega)`` — the reconstruction ``Y_hat_1``
        (``(batch, N, W)`` when ``use_short_window`` is ``False``).
        """
        long_windows = np.asarray(long_windows, dtype=np.float64)
        short_windows = np.asarray(short_windows, dtype=np.float64)
        batch, variates, window = long_windows.shape
        omega = short_windows.shape[2]
        if long_times is None:
            long_times = np.tile(np.arange(window, dtype=np.float64), (batch, 1))
        if short_times is None:
            short_times = long_times[:, window - omega:]

        if not self.use_short_window:
            # Ablation 1-iii: the decoder reconstructs the full long window.
            short_windows = long_windows
            short_times = long_times
            omega = window

        if self.conditioning == "masked":
            # The encoder only sees the context preceding the short window and
            # the decoder queries are pure time embeddings for the last omega
            # positions: reconstruction becomes prediction from context.
            context = long_windows[:, :, : window - omega]
            context_times = long_times[:, : window - omega]
            encoder_values = self.encoder_embedding(self._fold(context))
            encoder_time = self._expand_time(self.time_embedding(context_times), variates)
            encoder_input = encoder_values + encoder_time
            decoder_time = self.time_embedding(short_times, position_offset=window - omega)
            decoder_input = self._expand_time(decoder_time, variates)
        else:
            # Literal Eq. 4: value projections plus time embeddings for both.
            encoder_values = self.encoder_embedding(self._fold(long_windows))
            decoder_values = self.decoder_embedding(self._fold(short_windows))
            encoder_time = self._expand_time(self.time_embedding(long_times), variates)
            decoder_time = self._expand_time(
                self.time_embedding(short_times, position_offset=window - omega), variates
            )
            encoder_input = encoder_values + encoder_time
            decoder_input = decoder_values + decoder_time

        # Encoder over the long context (Eq. 7), decoder queries from the
        # short window with the encoder output as memory (Eq. 8).
        memory = self.encoder(encoder_input)
        decoded = self.decoder(decoder_input, memory)

        # Output layer (Eq. 9): FFN + sigmoid, then unfold back to (batch, N, omega).
        projected = self.output_projection(self.output_ffn(decoded)).sigmoid()
        if self.multivariate_input:
            return projected.transpose(0, 2, 1)
        return projected.reshape(batch, variates, omega)

    def reconstruction_errors(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> np.ndarray:
        """Initial reconstruction errors ``E = Y - Y_hat_1`` (Eq. 11), as numpy."""
        reconstruction = self.forward(long_windows, short_windows, long_times, short_times)
        target = np.asarray(short_windows if self.use_short_window else long_windows, dtype=np.float64)
        return target - reconstruction.data
