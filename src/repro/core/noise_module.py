"""Concurrent noise reconstruction module (Section III-D, Fig. 4c, Eq. 14).

Given the stage-1 errors, a graph is built per window (window-wise graph
structure learning) and a single GCN layer performs message passing *without
self-loops*: a star affected by concurrent noise can be reconstructed from
the other simultaneously affected stars, whereas a true anomaly — unique to
its own star — cannot.  The module therefore reconstructs the noise component
``Y_hat_2`` and leaves true anomalies with large residual errors.
"""

from __future__ import annotations

import numpy as np

from ..nn import GCNLayer, Module, Tensor, normalize_adjacency
from .config import AeroConfig
from .graph_learning import (
    batch_window_adjacency,
    static_complete_adjacency,
)

__all__ = ["ConcurrentNoiseReconstructionModule"]


class ConcurrentNoiseReconstructionModule(Module):
    """GCN over window-wise learned graphs reconstructing concurrent noise.

    Parameters
    ----------
    config:
        Model hyperparameters; ``config.short_window`` is the node-feature
        dimension (each star contributes its short-window values).
    graph_mode:
        ``"window"`` — window-wise graph learning (the paper's proposal);
        ``"static"`` — a static complete graph (ablation 2-iii);
        ``"dynamic"`` — an exponentially smoothed evolving graph in the style
        of ESG (ablation 2-iv).
    """

    GRAPH_MODES = ("window", "static", "dynamic")

    def __init__(
        self,
        config: AeroConfig,
        feature_dim: int | None = None,
        graph_mode: str = "window",
        dynamic_decay: float = 0.9,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if graph_mode not in self.GRAPH_MODES:
            raise ValueError(f"graph_mode must be one of {self.GRAPH_MODES}, got {graph_mode!r}")
        rng = rng or np.random.default_rng(config.seed + 1)
        self.config = config
        self.graph_mode = graph_mode
        self.dynamic_decay = dynamic_decay
        feature_dim = feature_dim if feature_dim is not None else config.short_window
        self.gcn = GCNLayer(feature_dim, feature_dim, activation=config.gcn_activation, rng=rng)
        # Identity initialisation: the natural starting point is "a noise-affected
        # star's error equals the aggregated error of its similarly affected
        # neighbours"; training then refines this mapping.
        self.gcn.weight.data = np.eye(feature_dim) + 0.01 * rng.standard_normal((feature_dim, feature_dim))
        self.last_adjacency: np.ndarray | None = None
        self._dynamic_state: np.ndarray | None = None
        self._node_scales: np.ndarray | None = None

    # ------------------------------------------------------------------
    def set_node_scales(self, scales: np.ndarray | None) -> None:
        """Set per-variate magnitude scales used during message passing.

        Each variate is min-max normalised independently, so the same physical
        interference (e.g. one magnitude of cloud extinction) appears with a
        different amplitude in every star's normalised units.  Passing the
        per-variate data ranges here makes the GCN aggregate errors in raw
        magnitude units — where concurrent noise is additively shared across
        stars — and converts its output back to normalised units.
        """
        if scales is None:
            self._node_scales = None
            return
        scales = np.asarray(scales, dtype=np.float64).ravel()
        if (scales <= 0).any():
            raise ValueError("node scales must be strictly positive")
        self._node_scales = scales

    def reset_dynamic_state(self) -> None:
        """Forget the smoothed graph used in ``dynamic`` mode."""
        self._dynamic_state = None

    def _adjacency_for(self, errors: np.ndarray) -> np.ndarray:
        """Per-window adjacency matrices, shape ``(batch, N, N)``."""
        batch, num_variates, _ = errors.shape
        if self.graph_mode == "static":
            complete = static_complete_adjacency(num_variates)
            return np.broadcast_to(complete, (batch, num_variates, num_variates)).copy()
        window_graphs = batch_window_adjacency(errors)
        if self.graph_mode == "window":
            return window_graphs
        # Dynamic mode: exponentially smooth graphs across windows so the
        # structure evolves slowly, mimicking dynamic-graph baselines.
        smoothed = np.empty_like(window_graphs)
        state = self._dynamic_state
        for index in range(batch):
            if state is None:
                state = window_graphs[index]
            else:
                state = self.dynamic_decay * state + (1.0 - self.dynamic_decay) * window_graphs[index]
            smoothed[index] = state
        self._dynamic_state = state
        return smoothed

    # ------------------------------------------------------------------
    def forward(self, errors: np.ndarray, short_windows: np.ndarray) -> Tensor:
        """Reconstruct the concurrent-noise component ``Y_hat_2``.

        Parameters
        ----------
        errors:
            Stage-1 reconstruction errors ``E_t`` of shape ``(batch, N, omega)``.
            They serve both as the embedding from which the window-wise graph
            is learned (Eq. 12-13) and as the node features that are passed
            between stars (Fig. 4a: "the initial reconstruction errors from
            the first module are concatenated as the input of the concurrent
            noise reconstruction module").  Self-loops are removed, so a true
            anomaly cannot be explained from its own error signature.
        short_windows:
            The short-window inputs ``Y_t`` of shape ``(batch, N, omega)``;
            kept for interface completeness and shape validation.

        Returns
        -------
        Tensor ``(batch, N, omega)``.
        """
        errors = np.asarray(errors, dtype=np.float64)
        short_windows = np.asarray(short_windows, dtype=np.float64)
        if errors.shape != short_windows.shape:
            raise ValueError(
                f"errors and short windows must align: {errors.shape} != {short_windows.shape}"
            )
        adjacency = self._adjacency_for(errors)
        self.last_adjacency = adjacency[-1]

        num_variates = errors.shape[1]
        if self._node_scales is not None:
            if len(self._node_scales) != num_variates:
                raise ValueError(
                    f"node scales length {len(self._node_scales)} does not match {num_variates} variates"
                )
            scales = self._node_scales
        else:
            scales = np.ones(num_variates)

        outputs = []
        for index in range(errors.shape[0]):
            normalized = normalize_adjacency(
                adjacency[index],
                remove_self_loops=self.config.remove_self_loops,
            )
            # Aggregate in raw magnitude units, then convert back to each
            # star's normalised units (see ``set_node_scales``).
            features = Tensor(errors[index] * scales[:, None])
            reconstructed = self.gcn(features, normalized)
            outputs.append(reconstructed * Tensor(1.0 / scales[:, None]))
        return Tensor.stack(outputs, axis=0)
