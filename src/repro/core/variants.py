"""Ablation variants of AERO (Table IV).

Each variant is expressed as a different configuration of
:class:`~repro.core.detector.AeroDetector`:

===========================  =====================================================
Variant id                    Modification
===========================  =====================================================
``full``                      the complete AERO model
``no_temporal``               1-i   remove the temporal reconstruction module
``no_univariate_input``       1-ii  feed multivariate input to the temporal module
``no_short_window``           1-iii reconstruct the full long window
``no_noise_module``           2-i   remove the concurrent-noise module
``no_noise_multivariate``     2-ii  remove the noise module and use multivariate input
``static_graph``              2-iii replace window-wise graphs with a complete static graph
``dynamic_graph``             2-iv  replace window-wise graphs with an evolving dynamic graph
===========================  =====================================================
"""

from __future__ import annotations

from .config import AeroConfig
from .detector import AeroDetector

__all__ = ["ABLATION_VARIANTS", "build_variant"]

#: Mapping from variant id to AeroDetector keyword arguments.
ABLATION_VARIANTS: dict[str, dict] = {
    "full": {},
    "no_temporal": {"use_temporal": False},
    "no_univariate_input": {"multivariate_input": True},
    "no_short_window": {"use_short_window": False},
    "no_noise_module": {"use_noise_module": False},
    "no_noise_multivariate": {"use_noise_module": False, "multivariate_input": True},
    "static_graph": {"graph_mode": "static"},
    "dynamic_graph": {"graph_mode": "dynamic"},
}

#: Human-readable names matching the rows of Table IV.
VARIANT_LABELS: dict[str, str] = {
    "full": "AERO",
    "no_temporal": "1) i  w/o temporal",
    "no_univariate_input": "1) ii w/o univariate input",
    "no_short_window": "1) iii w/o short window",
    "no_noise_module": "2) i  w/o concurrent noise",
    "no_noise_multivariate": "2) ii w/o concurrent noise & univariate input",
    "static_graph": "2) iii w/o window-wise graph (static)",
    "dynamic_graph": "2) iv w/o window-wise graph (dynamic)",
}


def build_variant(name: str, config: AeroConfig | None = None, verbose: bool = False) -> AeroDetector:
    """Instantiate the ablation variant ``name`` with the given configuration."""
    if name not in ABLATION_VARIANTS:
        raise KeyError(f"unknown variant {name!r}; options: {sorted(ABLATION_VARIANTS)}")
    kwargs = dict(ABLATION_VARIANTS[name])
    return AeroDetector(config=config, verbose=verbose, **kwargs)
