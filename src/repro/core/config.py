"""Configuration for the AERO model and its trainer.

Defaults follow Section IV-B of the paper: long window ``W = 200``, short
window ``omega = 60``, one Transformer encoder layer with four attention
heads, Adam with learning rate 0.001, at most 100 epochs with early-stop
patience 5, POT with ``level = 0.99`` and ``q = 0.001``.

``AeroConfig.fast()`` returns a profile scaled down for CPU-bound unit tests
and benchmarks (the substrate here is a pure-numpy autodiff engine rather
than a GPU deep-learning stack).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AeroConfig"]


@dataclass
class AeroConfig:
    """Hyperparameters of AERO."""

    # windowing (Section III-A / IV-B)
    window: int = 200
    short_window: int = 60
    train_stride: int = 1
    # temporal reconstruction module
    d_model: int = 64
    num_heads: int = 4
    num_encoder_layers: int = 1
    num_decoder_layers: int = 1
    d_ff: int | None = None
    dropout: float = 0.0
    # Decoder conditioning mode.  ``"full"`` follows Eq. 4 literally (the
    # decoder embeds the raw short-window values); ``"masked"`` hides those
    # values so the short window is reconstructed purely from the preceding
    # long-window context.  The masked mode is the default on this CPU/numpy
    # substrate because the literal formulation collapses to an identity map
    # after a handful of epochs, which destroys the anomaly signal (see
    # DESIGN.md, "substitutions").
    conditioning: str = "masked"
    # concurrent noise reconstruction module
    gcn_activation: str = "identity"
    remove_self_loops: bool = True
    # optimisation (Algorithm 1)
    learning_rate: float = 1e-3
    batch_size: int = 32
    max_epochs_stage1: int = 100
    max_epochs_stage2: int = 100
    patience: int = 5
    min_delta: float = 1e-5
    grad_clip: float = 5.0
    # detection (Algorithm 2 / Eq. 18)
    pot_level: float = 0.99
    pot_q: float = 1e-3
    # reproducibility
    seed: int = 0

    def __post_init__(self) -> None:
        if self.short_window > self.window:
            raise ValueError(
                f"short_window ({self.short_window}) cannot exceed window ({self.window})"
            )
        if self.short_window <= 0 or self.window <= 0:
            raise ValueError("window sizes must be positive")
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.train_stride <= 0:
            raise ValueError("train_stride must be positive")
        if self.conditioning not in ("full", "masked"):
            raise ValueError("conditioning must be 'full' or 'masked'")
        if self.conditioning == "masked" and self.short_window >= self.window:
            raise ValueError("masked conditioning requires short_window < window")
        if not 0.0 < self.pot_level < 1.0:
            raise ValueError("pot_level must be in (0, 1)")
        if not 0.0 < self.pot_q < 1.0:
            raise ValueError("pot_q must be in (0, 1)")

    @classmethod
    def paper(cls) -> "AeroConfig":
        """The exact configuration reported in Section IV-B."""
        return cls()

    @classmethod
    def fast(cls, window: int = 40, short_window: int = 12) -> "AeroConfig":
        """A reduced configuration for CPU-bound tests and benchmarks."""
        return cls(
            window=window,
            short_window=short_window,
            train_stride=4,
            d_model=16,
            num_heads=2,
            max_epochs_stage1=3,
            max_epochs_stage2=3,
            patience=2,
            batch_size=16,
        )

    def scaled(self, **overrides) -> "AeroConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
