"""High-level AERO anomaly detector (Algorithm 2: online detection).

:class:`AeroDetector` is the public entry point of the library.  It wraps

* min-max normalisation of the magnitudes (the temporal module's decoder ends
  with a sigmoid, so reconstructions live in [0, 1]);
* the two-stage offline training of :class:`~repro.core.trainer.AeroTrainer`;
* online scoring with a stride-1 sliding window: the anomaly score of star
  ``n`` at time ``t`` is ``| y - y_hat_1 - y_hat_2 |`` at the last timestamp
  of the window ending at ``t`` (Eq. 17);
* automatic thresholding with POT and point-wise labels (Eq. 18).

Typical usage::

    detector = AeroDetector(AeroConfig.fast())
    detector.fit(dataset.train)
    scores = detector.score(dataset.test)
    labels = detector.detect(dataset.test)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.preprocessing import MinMaxScaler
from ..data.windows import WindowDataset
from ..evaluation import DetectionOutcome, evaluate_scores, pot_threshold
from .config import AeroConfig
from .model import AeroModel
from .trainer import AeroTrainer, TrainingHistory

__all__ = ["AeroDetector", "DetectionReport"]


@dataclass
class DetectionReport:
    """Bundle returned by :meth:`AeroDetector.evaluate`."""

    outcome: DetectionOutcome
    train_scores: np.ndarray
    test_scores: np.ndarray
    history: TrainingHistory


class AeroDetector:
    """Unsupervised anomaly detector for astronomical multivariate time series."""

    def __init__(
        self,
        config: AeroConfig | None = None,
        use_temporal: bool = True,
        use_noise_module: bool = True,
        multivariate_input: bool = False,
        use_short_window: bool = True,
        graph_mode: str = "window",
        verbose: bool = False,
    ):
        self.config = config or AeroConfig()
        self.use_temporal = use_temporal
        self.use_noise_module = use_noise_module
        self.multivariate_input = multivariate_input
        self.use_short_window = use_short_window
        self.graph_mode = graph_mode
        self.verbose = verbose

        self.model: AeroModel | None = None
        self.scaler: MinMaxScaler | None = None
        self.history: TrainingHistory | None = None
        self.train_scores_: np.ndarray | None = None
        self._train_tail: np.ndarray | None = None
        self._train_tail_times: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _require_fitted(self) -> AeroModel:
        if self.model is None or self.scaler is None:
            raise RuntimeError("the detector must be fitted before scoring")
        return self.model

    def _effective_window(self, series_length: int) -> tuple[int, int]:
        """Clamp the configured windows to the available series length."""
        window = min(self.config.window, series_length)
        short = min(self.config.short_window, window)
        if self.config.conditioning == "masked" and short >= window:
            # Masked conditioning needs context preceding the short window.
            short = max(window // 2, 1)
        return window, short

    # ------------------------------------------------------------------
    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "AeroDetector":
        """Train AERO on an unlabeled training series of shape ``(T, N)``."""
        train = np.asarray(train, dtype=np.float64)
        if train.ndim != 2:
            raise ValueError("training series must be 2-D (time, variates)")
        window, short = self._effective_window(train.shape[0])
        config = self.config.scaled(window=window, short_window=short)

        self.scaler = MinMaxScaler()
        scaled = self.scaler.fit_transform(train)
        self.model = AeroModel(
            config,
            num_variates=train.shape[1],
            use_temporal=self.use_temporal,
            use_noise_module=self.use_noise_module,
            multivariate_input=self.multivariate_input,
            use_short_window=self.use_short_window,
            graph_mode=self.graph_mode,
        )
        if self.model.noise is not None:
            # Message passing operates in raw magnitude units (see the noise
            # module's ``set_node_scales`` docstring).
            ranges = np.maximum(self.scaler.data_max_ - self.scaler.data_min_, 1e-8)
            self.model.noise.set_node_scales(ranges)
        window_dataset = WindowDataset(
            scaled,
            window=config.window,
            short_window=config.short_window,
            timestamps=timestamps,
            stride=config.train_stride,
        )
        trainer = AeroTrainer(config, verbose=self.verbose)
        self.history = trainer.train(self.model, window_dataset)
        self.config = config

        # Keep the tail of the training series as context so that the first
        # test points can be scored, and calibrate POT on the train scores.
        self._train_tail = scaled[-(config.window - 1):] if config.window > 1 else scaled[:0]
        if timestamps is not None:
            timestamps = np.asarray(timestamps, dtype=np.float64)
            self._train_tail_times = timestamps[-(config.window - 1):] if config.window > 1 else timestamps[:0]
        self.train_scores_ = self._score_scaled(scaled, timestamps, prepend_context=False)
        return self

    # ------------------------------------------------------------------
    def _score_scaled(
        self,
        scaled: np.ndarray,
        timestamps: np.ndarray | None,
        prepend_context: bool,
    ) -> np.ndarray:
        """Score an already-normalized series; returns ``(T, N)`` anomaly scores."""
        model = self._require_fitted()
        config = self.config
        num_points, num_variates = scaled.shape

        context_length = 0
        if prepend_context and self._train_tail is not None and len(self._train_tail):
            scaled = np.concatenate([self._train_tail, scaled], axis=0)
            context_length = len(self._train_tail)
            if timestamps is not None and self._train_tail_times is not None and len(self._train_tail_times) == context_length:
                timestamps = np.concatenate([self._train_tail_times, np.asarray(timestamps, dtype=np.float64)])
            else:
                timestamps = None

        scores = np.zeros((num_points, num_variates))
        covered = np.zeros(num_points, dtype=bool)
        if scaled.shape[0] < config.window:
            return scores

        window_dataset = WindowDataset(
            scaled,
            window=config.window,
            short_window=config.short_window,
            timestamps=timestamps,
            stride=1,
        )
        if model.noise is not None and model.noise.graph_mode == "dynamic":
            model.noise.reset_dynamic_state()
        for batch in window_dataset.batches(config.batch_size, shuffle=False):
            result = model(batch.long, batch.short, batch.long_times, batch.short_times)
            for row, end in enumerate(batch.end_indices):
                position = int(end) - context_length
                if 0 <= position < num_points:
                    scores[position] = result.scores[row]
                    covered[position] = True
        # Early points that no window reaches inherit the first computed score,
        # so every timestamp has a well-defined (if conservative) score.
        if covered.any():
            first = int(np.argmax(covered))
            scores[:first] = scores[first]
        return scores

    def score_windows(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score a batch of already-normalised windows; returns ``(batch, N)``.

        This is the reusable single-step core of Algorithm 2: one forward
        pass over explicit ``(batch, N, W)`` long windows and ``(batch, N,
        omega)`` short windows, with no re-windowing of the full series.  The
        streaming subsystem (:mod:`repro.streaming`) builds its incremental
        path on top of this method.
        """
        model = self._require_fitted()
        result = model(long_windows, short_windows, long_times, short_times)
        return result.scores

    def window_context(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """The scaled training tail (and its timestamps) used as scoring context.

        ``score()`` prepends the last ``W - 1`` training rows so the first test
        point already has a full window; a :class:`repro.streaming.StreamingDetector`
        seeds its ring buffer with exactly this context for equivalence.
        """
        self._require_fitted()
        return self._train_tail, self._train_tail_times

    def stream(self, **kwargs) -> "object":
        """Create a :class:`repro.streaming.StreamingDetector` over this detector."""
        from ..streaming import StreamingDetector

        return StreamingDetector(self, **kwargs)

    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        """Anomaly scores for every point of ``series`` (shape ``(T, N)``)."""
        self._require_fitted()
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2:
            raise ValueError("series must be 2-D (time, variates)")
        scaled = self.scaler.transform(series)
        return self._score_scaled(scaled, timestamps, prepend_context=True)

    # ------------------------------------------------------------------
    def threshold(self) -> float:
        """POT threshold calibrated on the training scores (Eq. 18)."""
        if self.train_scores_ is None:
            raise RuntimeError("the detector must be fitted before thresholding")
        return pot_threshold(self.train_scores_, level=self.config.pot_level, q=self.config.pot_q)

    def detect(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        """Binary anomaly labels ``O_t`` for every point of ``series``."""
        scores = self.score(series, timestamps)
        return (scores >= self.threshold()).astype(np.int64)

    def evaluate(
        self,
        test: np.ndarray,
        test_labels: np.ndarray,
        timestamps: np.ndarray | None = None,
        point_adjust: bool = True,
    ) -> DetectionReport:
        """Score ``test`` and evaluate against labels with the paper's protocol."""
        if self.train_scores_ is None:
            raise RuntimeError("the detector must be fitted before evaluation")
        test_scores = self.score(test, timestamps)
        outcome = evaluate_scores(
            self.train_scores_,
            test_scores,
            test_labels,
            level=self.config.pot_level,
            q=self.config.pot_q,
            point_adjust=point_adjust,
        )
        return DetectionReport(
            outcome=outcome,
            train_scores=self.train_scores_,
            test_scores=test_scores,
            history=self.history,
        )

    # ------------------------------------------------------------------
    def learned_graph(self) -> np.ndarray | None:
        """The most recent window-wise adjacency matrix (for Fig. 8 analysis)."""
        model = self._require_fitted()
        if model.noise is None:
            return None
        return model.noise.last_adjacency
