"""High-level AERO anomaly detector (Algorithm 2: online detection).

:class:`AeroDetector` is the public entry point of the library.  It wraps

* min-max normalisation of the magnitudes (the temporal module's decoder ends
  with a sigmoid, so reconstructions live in [0, 1]);
* the two-stage offline training of :class:`~repro.core.trainer.AeroTrainer`;
* online scoring with a stride-1 sliding window: the anomaly score of star
  ``n`` at time ``t`` is ``| y - y_hat_1 - y_hat_2 |`` at the last timestamp
  of the window ending at ``t`` (Eq. 17);
* automatic thresholding with POT and point-wise labels (Eq. 18).

Typical usage::

    detector = AeroDetector(AeroConfig.fast())
    detector.fit(dataset.train)
    scores = detector.score(dataset.test)
    labels = detector.detect(dataset.test)
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..data.preprocessing import MinMaxScaler
from ..data.windows import WindowDataset
from ..evaluation import DetectionOutcome, evaluate_scores, pot_threshold
from ..nn.serialization import load_arrays, save_arrays
from .config import AeroConfig
from .model import AeroModel
from .trainer import AeroTrainer, TrainingHistory

__all__ = ["AeroDetector", "DetectionReport", "sliding_window_scores"]


def sliding_window_scores(
    forward,
    config: AeroConfig,
    scaled: np.ndarray,
    timestamps: np.ndarray | None,
    context: np.ndarray | None,
    context_times: np.ndarray | None,
    score_dtype=np.float64,
) -> np.ndarray:
    """Stride-1 scoring driver shared by every batch scorer (Algorithm 2).

    Owns the full batch-scoring contract in one place — context stitching,
    timestamp alignment, micro-batch grouping, score placement by window
    end index, and the conservative early-point backfill — so the autograd
    path (:meth:`AeroDetector.score`) and the compiled runtime
    (:meth:`repro.runtime.CompiledDetector.score`) cannot drift apart.

    Parameters
    ----------
    forward:
        Callable mapping a :class:`~repro.data.windows.WindowBatch` to its
        ``(batch, N)`` anomaly scores.
    scaled:
        Already-normalized series of shape ``(T, N)``.
    context / context_times:
        Optional rows (and their timestamps) prepended before windowing so
        the first points have full windows; scores are reported only for
        the ``scaled`` rows.
    """
    num_points, num_variates = scaled.shape
    context_length = 0
    if context is not None and len(context):
        scaled = np.concatenate([context, scaled], axis=0)
        context_length = len(context)
        if (
            timestamps is not None
            and context_times is not None
            and len(context_times) == context_length
        ):
            timestamps = np.concatenate([context_times, np.asarray(timestamps, dtype=np.float64)])
        else:
            timestamps = None

    scores = np.zeros((num_points, num_variates), dtype=score_dtype)
    covered = np.zeros(num_points, dtype=bool)
    if scaled.shape[0] < config.window:
        return scores

    window_dataset = WindowDataset(
        scaled,
        window=config.window,
        short_window=config.short_window,
        timestamps=timestamps,
        stride=1,
    )
    for batch in window_dataset.batches(config.batch_size, shuffle=False):
        batch_scores = forward(batch)
        for row, end in enumerate(batch.end_indices):
            position = int(end) - context_length
            if 0 <= position < num_points:
                scores[position] = batch_scores[row]
                covered[position] = True
    # Early points that no window reaches inherit the first computed score,
    # so every timestamp has a well-defined (if conservative) score.
    if covered.any():
        first = int(np.argmax(covered))
        scores[:first] = scores[first]
    return scores


@dataclass
class DetectionReport:
    """Bundle returned by :meth:`AeroDetector.evaluate`."""

    outcome: DetectionOutcome
    train_scores: np.ndarray
    test_scores: np.ndarray
    history: TrainingHistory


class AeroDetector:
    """Unsupervised anomaly detector for astronomical multivariate time series."""

    BACKENDS = ("autograd", "compiled")

    def __init__(
        self,
        config: AeroConfig | None = None,
        use_temporal: bool = True,
        use_noise_module: bool = True,
        multivariate_input: bool = False,
        use_short_window: bool = True,
        graph_mode: str = "window",
        verbose: bool = False,
        backend: str = "autograd",
    ):
        if backend not in self.BACKENDS:
            raise ValueError(f"backend must be one of {self.BACKENDS}, got {backend!r}")
        self.config = config or AeroConfig()
        self.use_temporal = use_temporal
        self.use_noise_module = use_noise_module
        self.multivariate_input = multivariate_input
        self.use_short_window = use_short_window
        self.graph_mode = graph_mode
        self.verbose = verbose
        self.backend = backend

        self.model: AeroModel | None = None
        self.scaler: MinMaxScaler | None = None
        self.history: TrainingHistory | None = None
        self.train_scores_: np.ndarray | None = None
        self._train_tail: np.ndarray | None = None
        self._train_tail_times: np.ndarray | None = None
        self._compiled: dict = {}  # dtype -> cached repro.runtime.CompiledDetector

    # ------------------------------------------------------------------
    def _require_fitted(self) -> AeroModel:
        if self.model is None or self.scaler is None:
            raise RuntimeError("the detector must be fitted before scoring")
        return self.model

    def _resolve_backend(self, backend: str | None) -> str:
        backend = backend if backend is not None else self.backend
        if backend not in self.BACKENDS:
            raise ValueError(f"backend must be one of {self.BACKENDS}, got {backend!r}")
        return backend

    def compile(self, dtype="float64"):
        """Freeze this fitted detector into a tape-free :class:`CompiledDetector`.

        The compiled artifact (see :mod:`repro.runtime`) scores with raw
        ndarray plans — bit-for-bit equal to the autograd path in float64 —
        and is cached per dtype; ``fit()`` invalidates the cache.
        """
        from ..runtime import compile_detector

        self._require_fitted()
        key = np.dtype(dtype)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = compile_detector(self, dtype=key)
            self._compiled[key] = compiled
        return compiled

    def _effective_window(self, series_length: int) -> tuple[int, int]:
        """Clamp the configured windows to the available series length."""
        window = min(self.config.window, series_length)
        short = min(self.config.short_window, window)
        if self.config.conditioning == "masked" and short >= window:
            # Masked conditioning needs context preceding the short window.
            short = max(window // 2, 1)
        return window, short

    # ------------------------------------------------------------------
    def fit(
        self,
        train: np.ndarray,
        timestamps: np.ndarray | None = None,
        *,
        validation_split: float = 0.0,
        warm_start: str | Path | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> "AeroDetector":
        """Train AERO on an unlabeled training series of shape ``(T, N)``.

        The keyword-only arguments surface the fleet-scale controls of
        :class:`repro.training.TrainingSession`: ``validation_split`` holds
        out the chronologically last fraction of training windows and early
        stops on their loss (with best-weight restore either way);
        ``warm_start`` fine-tunes from an existing :meth:`save` artifact
        instead of training from scratch; ``checkpoint_path`` writes an
        epoch-level training checkpoint every ``checkpoint_every`` epochs,
        and ``resume=True`` continues from it bit-identically after an
        interruption.
        """
        train = np.asarray(train, dtype=np.float64)
        if train.ndim != 2:
            raise ValueError("training series must be 2-D (time, variates)")
        window, short = self._effective_window(train.shape[0])
        config = self.config.scaled(window=window, short_window=short)

        self.scaler = MinMaxScaler()
        scaled = self.scaler.fit_transform(train)
        self.model = AeroModel(
            config,
            num_variates=train.shape[1],
            use_temporal=self.use_temporal,
            use_noise_module=self.use_noise_module,
            multivariate_input=self.multivariate_input,
            use_short_window=self.use_short_window,
            graph_mode=self.graph_mode,
        )
        if self.model.noise is not None:
            # Message passing operates in raw magnitude units (see the noise
            # module's ``set_node_scales`` docstring).
            ranges = np.maximum(self.scaler.data_max_ - self.scaler.data_min_, 1e-8)
            self.model.noise.set_node_scales(ranges)
        window_dataset = WindowDataset(
            scaled,
            window=config.window,
            short_window=config.short_window,
            timestamps=timestamps,
            stride=config.train_stride,
        )
        trainer = AeroTrainer(
            config,
            verbose=self.verbose,
            validation_split=validation_split,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        self.history = trainer.train(
            self.model, window_dataset, resume=resume, warm_start=warm_start
        )
        self.config = config

        # Keep the tail of the training series as context so that the first
        # test points can be scored, and calibrate POT on the train scores.
        self._train_tail = scaled[-(config.window - 1):] if config.window > 1 else scaled[:0]
        if timestamps is not None:
            timestamps = np.asarray(timestamps, dtype=np.float64)
            self._train_tail_times = timestamps[-(config.window - 1):] if config.window > 1 else timestamps[:0]
        self.train_scores_ = self._score_scaled(scaled, timestamps, prepend_context=False)
        self._compiled = {}  # stale after re-training
        return self

    # ------------------------------------------------------------------
    def _score_scaled(
        self,
        scaled: np.ndarray,
        timestamps: np.ndarray | None,
        prepend_context: bool,
    ) -> np.ndarray:
        """Score an already-normalized series; returns ``(T, N)`` anomaly scores."""
        model = self._require_fitted()
        if model.noise is not None and model.noise.graph_mode == "dynamic":
            model.noise.reset_dynamic_state()
        return sliding_window_scores(
            lambda batch: model(batch.long, batch.short, batch.long_times, batch.short_times).scores,
            self.config,
            scaled,
            timestamps,
            self._train_tail if prepend_context else None,
            self._train_tail_times if prepend_context else None,
        )

    def score_windows(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Score a batch of already-normalised windows; returns ``(batch, N)``.

        This is the reusable single-step core of Algorithm 2: one forward
        pass over explicit ``(batch, N, W)`` long windows and ``(batch, N,
        omega)`` short windows, with no re-windowing of the full series.  The
        streaming subsystem (:mod:`repro.streaming`) builds its incremental
        path on top of this method.  With ``backend="compiled"`` the forward
        pass runs on the tape-free plans of :mod:`repro.runtime`.
        """
        model = self._require_fitted()
        if self._resolve_backend(backend) == "compiled":
            return self.compile().score_windows(long_windows, short_windows, long_times, short_times)
        result = model(long_windows, short_windows, long_times, short_times)
        return result.scores

    def window_context(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """The scaled training tail (and its timestamps) used as scoring context.

        ``score()`` prepends the last ``W - 1`` training rows so the first test
        point already has a full window; a :class:`repro.streaming.StreamingDetector`
        seeds its ring buffer with exactly this context for equivalence.
        """
        self._require_fitted()
        return self._train_tail, self._train_tail_times

    def stream(self, **kwargs) -> "object":
        """Create a :class:`repro.streaming.StreamingDetector` over this detector."""
        from ..streaming import StreamingDetector

        return StreamingDetector(self, **kwargs)

    def score(
        self,
        series: np.ndarray,
        timestamps: np.ndarray | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Anomaly scores for every point of ``series`` (shape ``(T, N)``).

        ``backend`` selects the execution engine: ``"autograd"`` runs the
        :class:`AeroModel` forward pass, ``"compiled"`` the tape-free plans
        of :mod:`repro.runtime` (bit-for-bit identical scores in float64);
        ``None`` uses the detector's default backend.
        """
        self._require_fitted()
        if self._resolve_backend(backend) == "compiled":
            return self.compile().score(series, timestamps)
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2:
            raise ValueError("series must be 2-D (time, variates)")
        scaled = self.scaler.transform(series)
        return self._score_scaled(scaled, timestamps, prepend_context=True)

    # ------------------------------------------------------------------
    def threshold(self) -> float:
        """POT threshold calibrated on the training scores (Eq. 18)."""
        if self.train_scores_ is None:
            raise RuntimeError("the detector must be fitted before thresholding")
        return pot_threshold(self.train_scores_, level=self.config.pot_level, q=self.config.pot_q)

    def detect(
        self,
        series: np.ndarray,
        timestamps: np.ndarray | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Binary anomaly labels ``O_t`` for every point of ``series``."""
        scores = self.score(series, timestamps, backend=backend)
        return (scores >= self.threshold()).astype(np.int64)

    def evaluate(
        self,
        test: np.ndarray,
        test_labels: np.ndarray,
        timestamps: np.ndarray | None = None,
        point_adjust: bool = True,
    ) -> DetectionReport:
        """Score ``test`` and evaluate against labels with the paper's protocol."""
        if self.train_scores_ is None:
            raise RuntimeError("the detector must be fitted before evaluation")
        test_scores = self.score(test, timestamps)
        outcome = evaluate_scores(
            self.train_scores_,
            test_scores,
            test_labels,
            level=self.config.pot_level,
            q=self.config.pot_q,
            point_adjust=point_adjust,
        )
        return DetectionReport(
            outcome=outcome,
            train_scores=self.train_scores_,
            test_scores=test_scores,
            history=self.history,
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    CHECKPOINT_FORMAT = "aero-detector"
    CHECKPOINT_VERSION = 1

    def save(self, path: str | Path) -> Path:
        """Persist the fitted detector into one ``.npz`` checkpoint.

        The artifact bundles everything scoring needs: the configuration and
        variant flags, every model parameter, the fitted scaler statistics,
        the training-tail context and the POT calibration (train scores and
        the derived threshold).  A detector restored with :meth:`load`
        scores identically — and compiled plans (:meth:`compile`) can be
        built straight from the restored detector without retraining.
        """
        model = self._require_fitted()
        if self.train_scores_ is None:
            raise RuntimeError("the detector must be fitted before saving")
        meta = {
            "format": self.CHECKPOINT_FORMAT,
            "version": self.CHECKPOINT_VERSION,
            "config": asdict(self.config),
            "detector": {
                "use_temporal": self.use_temporal,
                "use_noise_module": self.use_noise_module,
                "multivariate_input": self.multivariate_input,
                "use_short_window": self.use_short_window,
                "graph_mode": self.graph_mode,
                "backend": self.backend,
            },
            "num_variates": model.num_variates,
        }
        arrays: dict[str, np.ndarray] = {
            "meta": np.array(json.dumps(meta)),
            "scaler.data_min": self.scaler.data_min_,
            "scaler.data_max": self.scaler.data_max_,
            "scaler.feature_range": np.asarray(self.scaler.feature_range, dtype=np.float64),
            "scaler.eps": np.asarray(self.scaler.eps, dtype=np.float64),
            "pot.train_scores": self.train_scores_,
            "pot.threshold": np.asarray(self.threshold(), dtype=np.float64),
            "context.train_tail": self._train_tail,
        }
        if self._train_tail_times is not None:
            arrays["context.train_tail_times"] = self._train_tail_times
        if self.history is not None:
            arrays["history.stage1"] = np.asarray(self.history.stage1_losses, dtype=np.float64)
            arrays["history.stage2"] = np.asarray(self.history.stage2_losses, dtype=np.float64)
            arrays["history.stage1_val"] = np.asarray(
                self.history.stage1_val_losses, dtype=np.float64
            )
            arrays["history.stage2_val"] = np.asarray(
                self.history.stage2_val_losses, dtype=np.float64
            )
            arrays["history.best_epochs"] = np.asarray(
                [self.history.stage1_best_epoch, self.history.stage2_best_epoch],
                dtype=np.int64,
            )
        for name, value in model.state_dict().items():
            arrays[f"model.{name}"] = value
        return save_arrays(path, arrays)

    @classmethod
    def load(cls, path: str | Path) -> "AeroDetector":
        """Restore a detector saved by :meth:`save`, ready to score.

        The restored model is in eval mode and scores bit-for-bit like the
        detector that was saved (same weights, scaler, context and POT
        threshold).  Raises :class:`FileNotFoundError` / :class:`ValueError`
        with the offending path for missing or malformed checkpoints.
        """
        path = Path(path)
        arrays = load_arrays(path)
        if "meta" not in arrays:
            raise ValueError(f"{path} is not an {cls.CHECKPOINT_FORMAT} checkpoint (no metadata)")
        try:
            meta = json.loads(str(arrays["meta"]))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path} holds corrupt checkpoint metadata: {error}") from error
        if meta.get("format") != cls.CHECKPOINT_FORMAT:
            raise ValueError(
                f"{path} is a {meta.get('format')!r} checkpoint, expected {cls.CHECKPOINT_FORMAT!r}"
            )
        if meta.get("version", 0) > cls.CHECKPOINT_VERSION:
            raise ValueError(
                f"{path} was written by a newer checkpoint format "
                f"(version {meta['version']} > {cls.CHECKPOINT_VERSION})"
            )
        required = (
            "scaler.data_min", "scaler.data_max", "scaler.feature_range", "scaler.eps",
            "pot.train_scores", "context.train_tail",
        )
        missing = [key for key in required if key not in arrays]
        if missing:
            raise ValueError(f"checkpoint {path} is incomplete: missing {missing}")

        config = AeroConfig(**meta["config"])
        detector = cls(config=config, **meta["detector"])
        detector.scaler = MinMaxScaler(
            feature_range=tuple(arrays["scaler.feature_range"].tolist()),
            eps=float(arrays["scaler.eps"]),
        )
        detector.scaler.data_min_ = np.asarray(arrays["scaler.data_min"], dtype=np.float64)
        detector.scaler.data_max_ = np.asarray(arrays["scaler.data_max"], dtype=np.float64)

        detector.model = AeroModel(
            config,
            num_variates=int(meta["num_variates"]),
            use_temporal=detector.use_temporal,
            use_noise_module=detector.use_noise_module,
            multivariate_input=detector.multivariate_input,
            use_short_window=detector.use_short_window,
            graph_mode=detector.graph_mode,
        )
        if detector.model.noise is not None:
            # Same node scales as fit(): per-variate data ranges of the scaler.
            ranges = np.maximum(
                detector.scaler.data_max_ - detector.scaler.data_min_, 1e-8
            )
            detector.model.noise.set_node_scales(ranges)
        state = {
            name[len("model."):]: value
            for name, value in arrays.items()
            if name.startswith("model.")
        }
        try:
            detector.model.load_state_dict(state)
        except (KeyError, ValueError) as error:
            raise type(error)(
                f"checkpoint {path} does not match the detector architecture: {error}"
            ) from error
        detector.model.eval()

        detector.train_scores_ = np.asarray(arrays["pot.train_scores"], dtype=np.float64)
        if "pot.threshold" in arrays:
            # Integrity check: the stored threshold must reproduce from the
            # stored train scores, else the calibration data is corrupt (or
            # the POT configuration diverged between save and load).
            stored = float(arrays["pot.threshold"])
            recomputed = detector.threshold()
            if not np.isclose(recomputed, stored, rtol=1e-6, atol=1e-12):
                raise ValueError(
                    f"checkpoint {path} POT threshold mismatch: stored {stored:.6g}, "
                    f"recomputed {recomputed:.6g} — calibration data is corrupt"
                )
        detector._train_tail = np.asarray(arrays["context.train_tail"], dtype=np.float64)
        if "context.train_tail_times" in arrays:
            detector._train_tail_times = np.asarray(
                arrays["context.train_tail_times"], dtype=np.float64
            )
        if "history.stage1" in arrays:
            best = arrays.get("history.best_epochs", np.zeros(2, dtype=np.int64))
            detector.history = TrainingHistory(
                stage1_losses=arrays["history.stage1"].tolist(),
                stage2_losses=arrays["history.stage2"].tolist(),
                stage1_val_losses=arrays.get(
                    "history.stage1_val", np.empty(0)
                ).tolist(),
                stage2_val_losses=arrays.get(
                    "history.stage2_val", np.empty(0)
                ).tolist(),
                stage1_best_epoch=int(best[0]),
                stage2_best_epoch=int(best[1]),
            )
        return detector

    # ------------------------------------------------------------------
    def learned_graph(self) -> np.ndarray | None:
        """The most recent window-wise adjacency matrix (for Fig. 8 analysis)."""
        model = self._require_fitted()
        if model.noise is None:
            return None
        return model.noise.last_adjacency
