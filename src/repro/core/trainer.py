"""Two-stage offline training of AERO (Algorithm 1).

Stage 1 trains the temporal reconstruction module to minimise
``|| Y - Y_hat_1 ||`` so normal temporal patterns are captured and both true
anomalies and concurrent noise stand out as large errors.  Stage 2 freezes
stage 1 and trains the concurrent-noise reconstruction module to minimise
``|| Y - Y_hat_1 - Y_hat_2 ||``, which teaches the GCN to explain exactly the
correlated (noise) part of the residual.  Both stages use Adam and stop early
when the loss stops improving for ``patience`` epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, Tensor, clip_grad_norm, mse_loss, no_grad
from .config import AeroConfig
from .model import AeroModel

__all__ = ["TrainingHistory", "EarlyStopping", "AeroTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch losses of both training stages."""

    stage1_losses: list[float] = field(default_factory=list)
    stage2_losses: list[float] = field(default_factory=list)

    @property
    def stage1_epochs(self) -> int:
        return len(self.stage1_losses)

    @property
    def stage2_epochs(self) -> int:
        return len(self.stage2_losses)


class EarlyStopping:
    """Stop training when the loss has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 1e-5):
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = np.inf
        self.epochs_without_improvement = 0

    def step(self, loss: float) -> bool:
        """Record one epoch's loss; return ``True`` if training should stop."""
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.epochs_without_improvement = 0
            return False
        self.epochs_without_improvement += 1
        return self.epochs_without_improvement >= self.patience


class AeroTrainer:
    """Runs the two-stage training loop of Algorithm 1 over a window dataset."""

    def __init__(self, config: AeroConfig, verbose: bool = False):
        self.config = config
        self.verbose = verbose

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(message)

    def _stage1_epoch(self, model: AeroModel, window_dataset, optimizer, rng) -> float:
        losses = []
        for batch in window_dataset.batches(self.config.batch_size, shuffle=True, rng=rng):
            target = model._target(batch.long, batch.short)
            prediction = model.temporal_forward(
                batch.long, batch.short, batch.long_times, batch.short_times
            )
            loss = mse_loss(prediction, Tensor(target))
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.temporal.parameters(), self.config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def _stage2_epoch(self, model: AeroModel, window_dataset, optimizer, rng) -> float:
        losses = []
        for batch in window_dataset.batches(self.config.batch_size, shuffle=True, rng=rng):
            target = model._target(batch.long, batch.short)
            if model.temporal is not None:
                with no_grad():
                    reconstruction = model.temporal_forward(
                        batch.long, batch.short, batch.long_times, batch.short_times
                    ).data
            else:
                reconstruction = np.zeros_like(target)
            errors = target - reconstruction
            noise_prediction = model.noise_forward(errors, target)
            # loss_2 = || Y - Y_hat_1 - Y_hat_2 ||  (Eq. 16), with M1 frozen.
            loss = mse_loss(noise_prediction, Tensor(errors))
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.noise.parameters(), self.config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    # ------------------------------------------------------------------
    def train(self, model: AeroModel, window_dataset) -> TrainingHistory:
        """Train ``model`` on the windows of ``window_dataset`` (a ``WindowDataset``)."""
        history = TrainingHistory()
        rng = np.random.default_rng(self.config.seed)
        model.train()

        if model.temporal is not None:
            optimizer = Adam(model.temporal.parameters(), lr=self.config.learning_rate)
            stopper = EarlyStopping(self.config.patience, self.config.min_delta)
            for epoch in range(self.config.max_epochs_stage1):
                loss = self._stage1_epoch(model, window_dataset, optimizer, rng)
                history.stage1_losses.append(loss)
                self._log(f"[stage 1] epoch {epoch + 1}: loss = {loss:.6f}")
                if stopper.step(loss):
                    self._log(f"[stage 1] early stop at epoch {epoch + 1}")
                    break

        if model.noise is not None:
            optimizer = Adam(model.noise.parameters(), lr=self.config.learning_rate)
            stopper = EarlyStopping(self.config.patience, self.config.min_delta)
            if model.noise.graph_mode == "dynamic":
                model.noise.reset_dynamic_state()
            for epoch in range(self.config.max_epochs_stage2):
                loss = self._stage2_epoch(model, window_dataset, optimizer, rng)
                history.stage2_losses.append(loss)
                self._log(f"[stage 2] epoch {epoch + 1}: loss = {loss:.6f}")
                if stopper.step(loss):
                    self._log(f"[stage 2] early stop at epoch {epoch + 1}")
                    break

        model.eval()
        return history
