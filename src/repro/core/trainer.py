"""Two-stage offline training of AERO (Algorithm 1).

Stage 1 trains the temporal reconstruction module to minimise
``|| Y - Y_hat_1 ||`` so normal temporal patterns are captured and both true
anomalies and concurrent noise stand out as large errors.  Stage 2 freezes
stage 1 and trains the concurrent-noise reconstruction module to minimise
``|| Y - Y_hat_1 - Y_hat_2 ||``, which teaches the GCN to explain exactly the
correlated (noise) part of the residual.  Both stages use Adam and stop early
when the loss stops improving for ``patience`` epochs, restoring the
best-loss weights of each stage.

The loop itself lives in :class:`repro.training.TrainingSession`, which adds
epoch-level checkpoint/resume, validation-split early stopping and warm
starting; :class:`AeroTrainer` is the thin configuration-driven front door
kept for the original ``trainer.train(model, windows)`` call shape.
:class:`TrainingHistory` and :class:`EarlyStopping` are re-exported from
their new home for backward compatibility.
"""

from __future__ import annotations

from pathlib import Path

from ..training.session import EarlyStopping, TrainingHistory, TrainingSession
from .config import AeroConfig
from .model import AeroModel

__all__ = ["TrainingHistory", "EarlyStopping", "AeroTrainer"]


class AeroTrainer:
    """Runs the two-stage training loop of Algorithm 1 over a window dataset.

    Parameters
    ----------
    config:
        Hyperparameters (optimizer settings, epoch limits, seed).
    verbose:
        Log per-epoch lines at INFO level on the ``repro.training`` logger
        (DEBUG otherwise).
    validation_split:
        Optional chronological holdout fraction of the training windows;
        when non-zero, early stopping monitors the holdout loss.
    checkpoint_path / checkpoint_every:
        Epoch-level training checkpoints (see
        :meth:`repro.training.TrainingSession.save_checkpoint`).
    """

    def __init__(
        self,
        config: AeroConfig,
        verbose: bool = False,
        validation_split: float = 0.0,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 1,
    ):
        self.config = config
        self.verbose = verbose
        self.validation_split = validation_split
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every

    # ------------------------------------------------------------------
    def train(
        self,
        model: AeroModel,
        window_dataset,
        resume: bool = False,
        warm_start: str | Path | None = None,
    ) -> TrainingHistory:
        """Train ``model`` on the windows of ``window_dataset`` (a ``WindowDataset``).

        ``resume=True`` continues from ``checkpoint_path`` when it exists
        (bit-identical to an uninterrupted run); ``warm_start`` initialises
        the weights from an existing detector checkpoint before training a
        fresh session (ignored when resuming from a session checkpoint).
        """
        session = TrainingSession(
            model,
            window_dataset,
            self.config,
            validation_split=self.validation_split,
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            verbose=self.verbose,
        )
        return session.run(resume=resume, warm_start=warm_start)
