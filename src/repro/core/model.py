"""The AERO model: temporal reconstruction + concurrent noise reconstruction.

This module ties the two stages together (Fig. 4a).  The model consumes
sliding-window batches produced by :class:`repro.data.windows.WindowDataset`
and produces:

* ``Y_hat_1`` — the per-variate reconstruction of the short window (stage 1);
* ``E`` — the initial reconstruction errors ``Y - Y_hat_1`` (Eq. 11);
* ``Y_hat_2`` — the concurrent-noise reconstruction from the window-wise
  graph GCN (stage 2);
* the combined anomaly scores ``|Y - Y_hat_1 - Y_hat_2|`` at the last
  timestamp of each window (Eq. 17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Module, Tensor, no_grad
from .config import AeroConfig
from .noise_module import ConcurrentNoiseReconstructionModule
from .temporal import TemporalReconstructionModule

__all__ = ["AeroModel", "AeroForwardResult"]


@dataclass
class AeroForwardResult:
    """Outputs of a full (two-stage) forward pass over one batch."""

    reconstruction: np.ndarray      # Y_hat_1, shape (batch, N, omega)
    errors: np.ndarray              # Y - Y_hat_1
    noise_reconstruction: np.ndarray  # Y_hat_2
    residual: np.ndarray            # Y - Y_hat_1 - Y_hat_2
    scores: np.ndarray              # |residual| at the last timestamp, shape (batch, N)


class AeroModel(Module):
    """Two-stage anomaly detection model for astronomical observations.

    Parameters
    ----------
    config:
        Hyperparameters (window sizes, Transformer dimensions, optimizer and
        POT settings).
    num_variates:
        Number of stars ``N`` (needed by the ablation variant that feeds
        multivariate input to the temporal module).
    use_temporal / use_noise_module:
        Toggle the two stages (ablations 1-i and 2-i/2-ii in Table IV).
    multivariate_input:
        Feed the temporal module joint multivariate input instead of folding
        variates into the batch axis (ablations 1-ii and 2-ii).
    use_short_window:
        Reconstruct only the short window (the paper's design) or the whole
        long window (ablation 1-iii).
    graph_mode:
        ``"window"`` (paper), ``"static"`` (ablation 2-iii) or ``"dynamic"``
        (ablation 2-iv).
    """

    def __init__(
        self,
        config: AeroConfig,
        num_variates: int,
        use_temporal: bool = True,
        use_noise_module: bool = True,
        multivariate_input: bool = False,
        use_short_window: bool = True,
        graph_mode: str = "window",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if not use_temporal and not use_noise_module:
            raise ValueError("at least one of the two modules must be enabled")
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.num_variates = num_variates
        self.use_temporal = use_temporal
        self.use_noise_module = use_noise_module
        self.use_short_window = use_short_window

        effective_feature_dim = config.short_window if use_short_window else config.window
        self.temporal = (
            TemporalReconstructionModule(
                config,
                multivariate_input=multivariate_input,
                num_variates=num_variates,
                use_short_window=use_short_window,
                rng=rng,
            )
            if use_temporal
            else None
        )
        self.noise = (
            ConcurrentNoiseReconstructionModule(
                config,
                feature_dim=effective_feature_dim,
                graph_mode=graph_mode,
                rng=rng,
            )
            if use_noise_module
            else None
        )

    # ------------------------------------------------------------------
    def temporal_forward(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> Tensor:
        """Stage-1 forward pass producing ``Y_hat_1`` (as a Tensor for training)."""
        if self.temporal is None:
            raise RuntimeError("the temporal module is disabled in this variant")
        return self.temporal(long_windows, short_windows, long_times, short_times)

    def noise_forward(self, errors: np.ndarray, short_windows: np.ndarray) -> Tensor:
        """Stage-2 forward pass producing ``Y_hat_2`` (as a Tensor for training)."""
        if self.noise is None:
            raise RuntimeError("the noise module is disabled in this variant")
        return self.noise(errors, short_windows)

    def _target(self, long_windows: np.ndarray, short_windows: np.ndarray) -> np.ndarray:
        """The reconstruction target (short window, or long window in the ablation)."""
        return short_windows if self.use_short_window else long_windows

    # ------------------------------------------------------------------
    def forward(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> AeroForwardResult:
        """Full inference pass (no gradients), as used during online detection."""
        long_windows = np.asarray(long_windows, dtype=np.float64)
        short_windows = np.asarray(short_windows, dtype=np.float64)
        target = self._target(long_windows, short_windows)

        with no_grad():
            if self.temporal is not None:
                reconstruction = self.temporal(
                    long_windows, short_windows, long_times, short_times
                ).data
            else:
                # Without the temporal stage the "reconstruction" is zero and
                # the graph is learned directly from the raw short windows.
                reconstruction = np.zeros_like(target)
            errors = target - reconstruction

            if self.noise is not None:
                noise_reconstruction = self.noise(errors, target).data
            else:
                noise_reconstruction = np.zeros_like(target)

        residual = target - reconstruction - noise_reconstruction
        scores = np.abs(residual[:, :, -1])
        return AeroForwardResult(
            reconstruction=reconstruction,
            errors=errors,
            noise_reconstruction=noise_reconstruction,
            residual=residual,
            scores=scores,
        )
