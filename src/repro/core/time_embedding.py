"""Time embedding with learnable phase shifts for irregular sampling (Eq. 1).

Astronomical observations are recorded at irregular intervals (weather gaps,
varying exposure overheads), so the standard positional encoding of the
Transformer — which implicitly assumes equal spacing — is replaced by

    TE_t[j] = sin(f_j * pos_t + alpha_j * delta_t) + cos(f_j * pos_t + alpha_j * delta_t)

where ``f_j = (1/10000)^(j / d_model)`` is the usual frequency ladder,
``pos_t`` is the absolute position, ``delta_t`` is the interval to the
previous observation, and ``alpha_j`` is a learnable phase-shift parameter.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Parameter, Tensor

__all__ = ["TimeEmbedding"]


class TimeEmbedding(Module):
    """Computes the irregular-interval-aware time embedding of Eq. 1."""

    def __init__(self, d_model: int):
        super().__init__()
        if d_model <= 0:
            raise ValueError("d_model must be positive")
        self.d_model = d_model
        exponents = np.arange(d_model, dtype=np.float64) / d_model
        # Pre-defined angular frequencies f_j = (1/10000)^(j/d_model).
        self.frequencies = (1.0 / 10000.0) ** exponents
        # Learnable phase shifts alpha_j, initialised to one so the interval
        # term contributes from the first step.
        self.alpha = Parameter(np.ones(d_model))

    def forward(self, timestamps: np.ndarray, position_offset: int = 0) -> Tensor:
        """Embed a batch of timestamp windows.

        Parameters
        ----------
        timestamps:
            Array of shape ``(batch, length)`` (or ``(length,)``) holding the
            observation times of each window.
        position_offset:
            Offset added to the within-window positions.  The decoder's short
            window occupies the *last* ``omega`` positions of the long window,
            so its embeddings use ``position_offset = W - omega`` to stay
            aligned with the encoder's positions.

        Returns
        -------
        Tensor of shape ``(batch, length, d_model)`` (or ``(length, d_model)``).
        """
        timestamps = np.asarray(timestamps, dtype=np.float64)
        squeeze = timestamps.ndim == 1
        if squeeze:
            timestamps = timestamps[None, :]
        if timestamps.ndim != 2:
            raise ValueError("timestamps must be 1-D or 2-D")

        positions = position_offset + np.arange(timestamps.shape[1], dtype=np.float64)
        intervals = np.diff(timestamps, axis=1, prepend=timestamps[:, :1])

        # phase = f_j * pos_t (constant) + alpha_j * delta_t (learnable)
        positional = Tensor(positions[None, :, None] * self.frequencies[None, None, :])
        interval_term = self.alpha * Tensor(intervals[:, :, None])
        phase = positional + interval_term
        embedding = phase.sin() + phase.cos()
        return embedding.squeeze(0) if squeeze else embedding
