"""AERO reproduction: time series anomaly detection in astronomical observations.

Reproduction of "From Chaos to Clarity: Time Series Anomaly Detection in
Astronomical Observations" (ICDE 2024).  The package layers:

* :mod:`repro.nn` — a numpy autodiff / neural-network substrate;
* :mod:`repro.data` — synthetic and GWAC-like light-curve datasets;
* :mod:`repro.evaluation` — POT thresholding, point-adjust, P/R/F1;
* :mod:`repro.core` — the AERO model (the paper's contribution);
* :mod:`repro.baselines` — the eleven comparison methods;
* :mod:`repro.experiments` — runners regenerating every table and figure;
* :mod:`repro.runtime` — compiled tape-free inference plans for serving;
* :mod:`repro.training` — resumable sessions, parallel fleet training and
  the model registry feeding the serving fleet;
* :mod:`repro.simulation` — seeded survey-night scenarios, fault injection,
  replay validation and golden-trace regression pinning;
* :mod:`repro.obs` — fleet telemetry: metrics, tick tracing, Prometheus /
  JSONL export and health snapshots (off by default, zero-cost until
  :func:`repro.obs.enable_telemetry`).
"""

from .core import AeroConfig, AeroDetector, AeroModel, build_variant
from .data import AstroDataset, load_astroset, load_synthetic
from .evaluation import evaluate_scores, pot_threshold, precision_recall_f1
from .runtime import CompiledDetector, compile_detector
from .streaming import (
    AlertPolicy,
    FleetManager,
    IncrementalPOT,
    RingBuffer,
    StreamingDetector,
    StreamingService,
)
from .training import (
    FleetTrainer,
    ModelRegistry,
    TrainingSession,
)
from .simulation import (
    ReplayHarness,
    ReplayTrace,
    Scenario,
    ScenarioConfig,
    build_scenario,
)
from .obs import (
    FleetHealth,
    MetricsRegistry,
    ServiceHealth,
    Tracer,
    disable_telemetry,
    enable_telemetry,
    render_prometheus,
)

__version__ = "1.10.0"

__all__ = [
    "AeroConfig",
    "AeroDetector",
    "AeroModel",
    "build_variant",
    "AstroDataset",
    "load_astroset",
    "load_synthetic",
    "evaluate_scores",
    "pot_threshold",
    "precision_recall_f1",
    "CompiledDetector",
    "compile_detector",
    "AlertPolicy",
    "FleetManager",
    "IncrementalPOT",
    "RingBuffer",
    "StreamingDetector",
    "StreamingService",
    "TrainingSession",
    "FleetTrainer",
    "ModelRegistry",
    "ReplayHarness",
    "ReplayTrace",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "FleetHealth",
    "MetricsRegistry",
    "ServiceHealth",
    "Tracer",
    "disable_telemetry",
    "enable_telemetry",
    "render_prometheus",
    "__version__",
]
