"""Plan verifier: static + instrumented checks over compiled serving plans.

``verify_model`` validates a :class:`repro.runtime.plans.CompiledModel`
against the invariants the incremental serving runtime assumes but cannot
cheaply assert per tick:

1. **structural interpretation** — every plan weight is propagated
   symbolically through the forward composition (embedding → encoder
   stack → decoder stack → head; GCN propagation → score head) checking
   dtype uniformity, write-locks (the ``freeze`` contract) and shape
   chains (``d_model`` threading, head divisibility, the ``(omega,
   omega)`` GCN geometry);
2. **instrumented drive** — an :class:`IncrementalState` per declared
   layout is rebuilt from synthetic windows and ticked with a tracking
   arena, comparing every emitted score vector bit-for-bit (float64)
   against the full forward staged exactly as that layout's serving front
   stages it (``score_stack``'s transposed views for ``"stack"``, the
   per-stream C-contiguous staging for ``"windows"``);
3. **state invariants** — mirrored-ring geometry and bounds, mirror-half
   equality, workspace aliasing (no two arena slots, and no slot and ring,
   may share memory), steady-state arena reallocation, and the raw layout
   of the ``model.errors`` workspace against the state's declared layout.

Every failure is a named :class:`PlanIssue` (``dtype-mismatch``,
``mutable-weight``, ``shape-mismatch``, ``workspace-alias``,
``workspace-realloc``, ``ring-bounds``, ``ring-mirror``,
``layout-mismatch``, ``score-divergence``, ``drive-failure``) collected
into a :class:`PlanReport`; ``compile_detector(..., verify=True)`` runs
the verifier at export time and raises :class:`PlanVerificationError` on
any issue.

Verification is serving-transparent: the dynamic-graph adjacency state is
snapshotted around every drive, so a verified detector scores exactly what
an unverified one does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..runtime.incremental import IncrementalState, ScratchArena

__all__ = [
    "PlanIssue",
    "PlanReport",
    "PlanVerificationError",
    "TrackingArena",
    "check_state",
    "check_structure",
    "verify_detector",
    "verify_model",
]


@dataclass(frozen=True)
class PlanIssue:
    """One named verification failure at a plan/state location."""

    kind: str
    location: str
    message: str

    def format(self) -> str:
        return f"{self.kind} @ {self.location}: {self.message}"


@dataclass
class PlanReport:
    """Everything one :func:`verify_model` run found (empty = verified)."""

    issues: list[PlanIssue] = field(default_factory=list)
    layouts: tuple[str, ...] = ()
    ticks: int = 0
    arrays_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def kinds(self) -> list[str]:
        return sorted({issue.kind for issue in self.issues})

    def raise_if_failed(self) -> "PlanReport":
        if self.issues:
            raise PlanVerificationError(self)
        return self


class PlanVerificationError(RuntimeError):
    """Raised by ``compile_detector(..., verify=True)`` on a failed report."""

    def __init__(self, report: PlanReport):
        self.report = report
        details = "\n".join("  " + issue.format() for issue in report.issues)
        super().__init__(
            f"compiled plan failed verification ({len(report.issues)} issue(s)):\n{details}"
        )


class TrackingArena(ScratchArena):
    """ScratchArena that records slot reallocations after warm-up.

    Once :attr:`steady` is set (the drive finished its first scored tick),
    any ``get`` whose slot no longer matches its requested geometry means a
    kernel is re-shaping workspaces tick over tick — steady-state
    allocation the zero-allocation contract forbids.
    """

    __slots__ = ("steady", "reallocations")

    def __init__(self) -> None:
        super().__init__()
        self.steady = False
        self.reallocations: list[str] = []

    def get(self, name: str, shape: tuple, dtype) -> np.ndarray:
        if self.steady:
            buffer = self._buffers.get(name)
            if buffer is not None and (
                buffer.shape != tuple(shape) or buffer.dtype != np.dtype(dtype)
            ):
                self.reallocations.append(name)
        return super().get(name, shape, dtype)


# ----------------------------------------------------------------------
# structural interpretation
# ----------------------------------------------------------------------
def _attention_arrays(prefix, attention):
    yield f"{prefix}.wq", attention.wq
    yield f"{prefix}.bq", attention.bq
    yield f"{prefix}.wo", attention.wo
    yield f"{prefix}.bo", attention.bo
    yield f"{prefix}.wqkv", attention.wqkv
    yield f"{prefix}.bqkv", attention.bqkv
    yield f"{prefix}.wkv", attention.wkv
    yield f"{prefix}.bkv", attention.bkv


def _ffn_arrays(prefix, ffn):
    yield f"{prefix}.w1", ffn.w1
    yield f"{prefix}.b1", ffn.b1
    yield f"{prefix}.w2", ffn.w2
    yield f"{prefix}.b2", ffn.b2


def _norm_arrays(prefix, norm):
    yield f"{prefix}.gamma", norm.gamma
    yield f"{prefix}.beta", norm.beta


def _iter_plan_arrays(model):
    temporal = model.temporal
    if temporal is not None:
        yield "temporal.time_embedding.frequencies", temporal.time_embedding.frequencies
        yield "temporal.time_embedding.alpha", temporal.time_embedding.alpha
        yield "temporal.encoder_embedding_w", temporal.encoder_embedding_w
        yield "temporal.encoder_embedding_b", temporal.encoder_embedding_b
        yield "temporal.decoder_embedding_w", temporal.decoder_embedding_w
        yield "temporal.decoder_embedding_b", temporal.decoder_embedding_b
        for index, layer in enumerate(temporal.encoder_layers):
            prefix = f"temporal.encoder_layers[{index}]"
            yield from _attention_arrays(f"{prefix}.self_attention", layer.self_attention)
            yield from _ffn_arrays(f"{prefix}.feed_forward", layer.feed_forward)
            yield from _norm_arrays(f"{prefix}.norm1", layer.norm1)
            yield from _norm_arrays(f"{prefix}.norm2", layer.norm2)
        for index, layer in enumerate(temporal.decoder_layers):
            prefix = f"temporal.decoder_layers[{index}]"
            yield from _attention_arrays(f"{prefix}.self_attention", layer.self_attention)
            yield from _attention_arrays(f"{prefix}.cross_attention", layer.cross_attention)
            yield from _ffn_arrays(f"{prefix}.feed_forward", layer.feed_forward)
            yield from _norm_arrays(f"{prefix}.norm1", layer.norm1)
            yield from _norm_arrays(f"{prefix}.norm2", layer.norm2)
            yield from _norm_arrays(f"{prefix}.norm3", layer.norm3)
        yield from _ffn_arrays("temporal.output_ffn", temporal.output_ffn)
        yield "temporal.output_projection_w", temporal.output_projection_w
        yield "temporal.output_projection_b", temporal.output_projection_b
    noise = model.noise
    if noise is not None:
        yield "noise.weight", noise.weight
        yield "noise.bias", noise.bias
        yield "noise.scales", noise.scales
        yield "noise.inverse_scales", noise.inverse_scales


def _expect_shape(issues, location, array, expected) -> None:
    """``expected`` dims are ints or ``None`` (free)."""
    if array is None:
        return
    shape = array.shape
    if len(shape) != len(expected) or any(
        want is not None and got != want for got, want in zip(shape, expected)
    ):
        rendered = tuple("*" if want is None else want for want in expected)
        issues.append(
            PlanIssue("shape-mismatch", location, f"expected shape {rendered}, got {shape}")
        )


def _check_attention(issues, prefix, attention, d_model) -> None:
    if attention.num_heads <= 0 or d_model % attention.num_heads != 0:
        issues.append(
            PlanIssue(
                "shape-mismatch", prefix,
                f"d_model {d_model} is not divisible by num_heads {attention.num_heads}",
            )
        )
    elif attention.d_head * attention.num_heads != d_model:
        issues.append(
            PlanIssue(
                "shape-mismatch", prefix,
                f"d_head {attention.d_head} * num_heads {attention.num_heads} != "
                f"d_model {d_model}",
            )
        )
    _expect_shape(issues, f"{prefix}.wq", attention.wq, (d_model, d_model))
    _expect_shape(issues, f"{prefix}.bq", attention.bq, (d_model,))
    _expect_shape(issues, f"{prefix}.wo", attention.wo, (d_model, d_model))
    _expect_shape(issues, f"{prefix}.bo", attention.bo, (d_model,))
    _expect_shape(issues, f"{prefix}.wqkv", attention.wqkv, (3, d_model, d_model))
    _expect_shape(issues, f"{prefix}.bqkv", attention.bqkv, (3, 1, 1, d_model))
    _expect_shape(issues, f"{prefix}.wkv", attention.wkv, (2, d_model, d_model))
    _expect_shape(issues, f"{prefix}.bkv", attention.bkv, (2, 1, 1, d_model))


def _check_ffn(issues, prefix, ffn, d_in, d_out) -> None:
    _expect_shape(issues, f"{prefix}.w1", ffn.w1, (d_in, None))
    hidden = ffn.w1.shape[1] if ffn.w1.ndim == 2 else None
    _expect_shape(issues, f"{prefix}.b1", ffn.b1, (hidden,))
    _expect_shape(issues, f"{prefix}.w2", ffn.w2, (hidden, d_out))
    _expect_shape(issues, f"{prefix}.b2", ffn.b2, (d_out,))


def check_structure(model, config) -> list[PlanIssue]:
    """Symbolic shape/dtype propagation over one compiled model's plans."""
    issues: list[PlanIssue] = []
    dtype = np.dtype(model.dtype)
    if dtype.kind != "f":
        issues.append(
            PlanIssue("dtype-mismatch", "model.dtype", f"plan dtype must be float, got {dtype}")
        )
        return issues

    for location, array in _iter_plan_arrays(model):
        if array is None:
            continue
        if array.dtype != dtype:
            issues.append(
                PlanIssue(
                    "dtype-mismatch", location,
                    f"plan dtype is {dtype.name} but array is {array.dtype.name}",
                )
            )
        if array.flags.writeable:
            issues.append(
                PlanIssue(
                    "mutable-weight", location,
                    "plan weights must be write-locked (freeze contract): a "
                    "serving-time mutation would silently fork the numerics",
                )
            )

    variates = int(model.num_variates)
    window = int(config.window)
    short = int(config.short_window)
    omega = short if model.use_short_window else window

    temporal = model.temporal
    if temporal is not None:
        channels = variates if temporal.multivariate_input else 1
        d_model = int(temporal.encoder_embedding_w.shape[-1])
        _expect_shape(
            issues, "temporal.encoder_embedding_w", temporal.encoder_embedding_w,
            (channels, d_model),
        )
        _expect_shape(
            issues, "temporal.encoder_embedding_b", temporal.encoder_embedding_b, (d_model,)
        )
        _expect_shape(
            issues, "temporal.decoder_embedding_w", temporal.decoder_embedding_w,
            (channels, d_model),
        )
        _expect_shape(
            issues, "temporal.decoder_embedding_b", temporal.decoder_embedding_b, (d_model,)
        )
        _expect_shape(
            issues, "temporal.time_embedding.frequencies",
            temporal.time_embedding.frequencies, (d_model,),
        )
        _expect_shape(
            issues, "temporal.time_embedding.alpha", temporal.time_embedding.alpha, (d_model,)
        )
        for index, layer in enumerate(temporal.encoder_layers):
            prefix = f"temporal.encoder_layers[{index}]"
            _check_attention(issues, f"{prefix}.self_attention", layer.self_attention, d_model)
            _check_ffn(issues, f"{prefix}.feed_forward", layer.feed_forward, d_model, d_model)
            _expect_shape(issues, f"{prefix}.norm1.gamma", layer.norm1.gamma, (d_model,))
            _expect_shape(issues, f"{prefix}.norm2.gamma", layer.norm2.gamma, (d_model,))
        for index, layer in enumerate(temporal.decoder_layers):
            prefix = f"temporal.decoder_layers[{index}]"
            _check_attention(issues, f"{prefix}.self_attention", layer.self_attention, d_model)
            _check_attention(issues, f"{prefix}.cross_attention", layer.cross_attention, d_model)
            _check_ffn(issues, f"{prefix}.feed_forward", layer.feed_forward, d_model, d_model)
            _expect_shape(issues, f"{prefix}.norm1.gamma", layer.norm1.gamma, (d_model,))
            _expect_shape(issues, f"{prefix}.norm2.gamma", layer.norm2.gamma, (d_model,))
            _expect_shape(issues, f"{prefix}.norm3.gamma", layer.norm3.gamma, (d_model,))
        _check_ffn(issues, "temporal.output_ffn", temporal.output_ffn, d_model, None)
        head_in = int(temporal.output_ffn.w2.shape[-1])
        _expect_shape(
            issues, "temporal.output_projection_w", temporal.output_projection_w,
            (head_in, channels),
        )
        _expect_shape(
            issues, "temporal.output_projection_b", temporal.output_projection_b, (channels,)
        )

    noise = model.noise
    if noise is not None:
        _expect_shape(issues, "noise.weight", noise.weight, (omega, omega))
        _expect_shape(issues, "noise.bias", noise.bias, (omega,))
        _expect_shape(issues, "noise.scales", noise.scales, (variates,))
        _expect_shape(issues, "noise.inverse_scales", noise.inverse_scales, (variates, 1))
    return issues


# ----------------------------------------------------------------------
# state invariants
# ----------------------------------------------------------------------
def _state_rings(state) -> list[tuple[str, np.ndarray]]:
    rings = [("_values", state._values)]
    for name in ("_features", "_enc_embed", "_dec_embed"):
        ring = getattr(state, name)
        if ring is not None:
            rings.append((name, ring))
    return rings


def check_state(state) -> list[PlanIssue]:
    """Ring + arena invariants of one (possibly corrupted) serving state."""
    return _check_rings(state) + _check_arena(state)


def _check_rings(state) -> list[PlanIssue]:
    issues: list[PlanIssue] = []
    window = state.window
    mirror = 2 * window
    rings = _state_rings(state)
    for name, ring in rings:
        if ring.shape[1] != mirror:
            issues.append(
                PlanIssue(
                    "ring-bounds", f"state.{name}",
                    f"mirrored ring needs {mirror} slots (2W), has {ring.shape[1]}",
                )
            )
    if state._times.shape != (mirror,):
        issues.append(
            PlanIssue(
                "ring-bounds", "state._times",
                f"times ring needs shape ({mirror},), has {state._times.shape}",
            )
        )
    if not 0 <= state.count <= window:
        issues.append(
            PlanIssue(
                "ring-bounds", "state.count",
                f"count {state.count} outside [0, window={window}]",
            )
        )
    if state.pos < state.count:
        issues.append(
            PlanIssue(
                "ring-bounds", "state.pos",
                f"pos {state.pos} behind count {state.count}: rows appeared from nowhere",
            )
        )
    start = state.window_start
    for name, ring in rings:
        if start < 0 or start + window > ring.shape[1]:
            issues.append(
                PlanIssue(
                    "ring-bounds", f"state.{name}",
                    f"window view [{start}, {start + window}) escapes the "
                    f"{ring.shape[1]}-slot ring",
                )
            )
    if state.warm:
        for name, ring in rings:
            halves_equal = ring.shape[1] == mirror and np.array_equal(
                ring[:, :window], ring[:, window:], equal_nan=True
            )
            if not halves_equal:
                issues.append(
                    PlanIssue(
                        "ring-mirror", f"state.{name}",
                        "mirror halves diverged: some append wrote one half only, "
                        "so a wrapped window view reads stale rows",
                    )
                )
        if state.times_mode == "real" and not np.array_equal(
            state._times[:window], state._times[window:], equal_nan=True
        ):
            issues.append(
                PlanIssue(
                    "ring-mirror", "state._times",
                    "times mirror halves diverged",
                )
            )
    return issues


def _check_arena(state) -> list[PlanIssue]:
    issues: list[PlanIssue] = []
    arena = state.arena
    buffers = sorted(arena._buffers.items())
    allowed = {np.dtype(state.dtype), np.dtype(np.bool_), np.dtype(np.float64)}
    for name, buffer in buffers:
        if buffer.dtype not in allowed:
            issues.append(
                PlanIssue(
                    "dtype-mismatch", f"arena[{name}]",
                    f"workspace dtype {buffer.dtype.name} is neither the plan "
                    f"dtype ({np.dtype(state.dtype).name}) nor bool/float64",
                )
            )
    for (name_a, buffer_a), (name_b, buffer_b) in itertools.combinations(buffers, 2):
        if np.shares_memory(buffer_a, buffer_b):
            issues.append(
                PlanIssue(
                    "workspace-alias", f"arena[{name_a}] / arena[{name_b}]",
                    "workspace slots share memory: one kernel's output silently "
                    "overwrites another's operand",
                )
            )
    for name, buffer in buffers:
        for ring_name, ring in _state_rings(state):
            if np.shares_memory(buffer, ring):
                issues.append(
                    PlanIssue(
                        "workspace-alias", f"arena[{name}] / state.{ring_name}",
                        "workspace overlaps a history ring: a tick's scratch "
                        "writes would corrupt the buffered window",
                    )
                )
    errors = arena._buffers.get("model.errors")
    if errors is not None:
        stacks, variates, omega = state.num_stacks, state.num_variates, state.short
        if state._uni or state.layout == "windows":
            expected = (stacks, variates, omega)
        else:
            # "stack" layout stages errors transposed so the GCN sees the
            # same strides as score_stack's `target - reconstruction`.
            expected = (stacks, omega, variates)
        if errors.shape != expected:
            issues.append(
                PlanIssue(
                    "layout-mismatch", "arena[model.errors]",
                    f"declared layout {state.layout!r} stages errors as "
                    f"{expected}, workspace is {errors.shape}",
                )
            )
    if isinstance(arena, TrackingArena):
        for name in sorted(set(arena.reallocations)):
            issues.append(
                PlanIssue(
                    "workspace-realloc", f"arena[{name}]",
                    "slot reallocated after warm-up: the steady-state tick is "
                    "not allocation-free",
                )
            )
    return issues


# ----------------------------------------------------------------------
# instrumented drive
# ----------------------------------------------------------------------
def _reference_scores(model, config, mode, windows, times) -> np.ndarray:
    """Full-forward scores staged exactly like ``mode``'s serving front."""
    num_stacks, window, variates = windows.shape
    short = int(config.short_window)
    if mode == "stack":
        long_windows = windows.transpose(0, 2, 1)
        long_times = np.broadcast_to(times, (num_stacks, window))
    else:
        long_windows = np.empty((num_stacks, variates, window))
        for index in range(num_stacks):
            long_windows[index] = windows[index].T
        long_times = np.empty((num_stacks, window))
        long_times[:] = times
    return model.forward(
        long_windows,
        long_windows[:, :, window - short :],
        long_times,
        long_times[:, window - short :],
    ).scores


def _dynamic_snapshot(noise):
    if noise is None or noise._dynamic_state is None:
        return None
    return noise._dynamic_state.copy()


def _drive_layout(model, config, layout, num_stacks, ticks, rng, bitwise) -> list[PlanIssue]:
    issues: list[PlanIssue] = []
    state = IncrementalState(model, config, num_stacks, layout=layout)
    arena = TrackingArena()
    state.arena = arena
    window, variates = state.window, state.num_variates

    stack = rng.random((num_stacks, window, variates))
    times = np.arange(window, dtype=np.float64)
    state.rebuild(stack, times)
    windows = stack.copy()
    # `use_short_window=False` states serve through `_score_full`, which
    # replays score_stack staging whatever the declared layout.
    reference_mode = layout if state.supported else "stack"
    noise = model.noise
    dynamic = noise is not None and noise.graph_mode == "dynamic"

    for tick in range(ticks + 1):
        if tick > 0:
            rows = rng.random((num_stacks, variates))
            timestamp = float(window + tick - 1)
            windows = np.concatenate([windows[:, 1:], rows[:, None, :]], axis=1)
            times = np.concatenate([times[1:], [timestamp]])
            state.append(rows, timestamp)
        snapshot = _dynamic_snapshot(noise) if dynamic else None
        got = state.score()
        if dynamic:
            # The incremental tick advanced the EMA adjacency; rewind so the
            # reference forward replays the identical transition.
            noise._dynamic_state = snapshot
        reference = _reference_scores(model, config, reference_mode, windows, times)
        if bitwise:
            equal = np.array_equal(reference, got)
        else:
            equal = np.allclose(reference, got, rtol=1e-5, atol=1e-6)
        if not equal:
            diff = float(
                np.max(
                    np.abs(
                        np.asarray(reference, dtype=np.float64)
                        - np.asarray(got, dtype=np.float64)
                    )
                )
            )
            issues.append(
                PlanIssue(
                    "score-divergence", f"layout={layout}",
                    f"tick {tick}: incremental scores diverge from the full "
                    f"forward (max abs diff {diff:.3e})",
                )
            )
            break
        arena.steady = True
    issues.extend(check_state(state))
    return issues


def verify_model(
    model,
    config,
    *,
    num_stacks: int = 2,
    ticks: int = 4,
    layouts: tuple[str, ...] = ("stack", "windows"),
    seed: int = 0,
) -> PlanReport:
    """Verify one :class:`CompiledModel` against its serving invariants.

    Runs the structural interpretation, then (if structurally sound) one
    instrumented incremental drive per layout.  float64 plans are compared
    bit-for-bit against the full forward; float32 plans with a tolerance
    (their contract is precision-, not bit-, equivalence).  The model's
    observable serving state (dynamic adjacency, last_adjacency) is
    restored afterwards, so verification never changes a served score.
    """
    arrays_checked = sum(
        1 for _, array in _iter_plan_arrays(model) if array is not None
    )
    report = PlanReport(layouts=tuple(layouts), ticks=ticks, arrays_checked=arrays_checked)
    report.issues.extend(check_structure(model, config))
    if report.issues:
        return report

    bitwise = np.dtype(model.dtype) == np.dtype(np.float64)
    rng = np.random.default_rng(seed)
    noise = model.noise
    saved_dynamic = _dynamic_snapshot(noise)
    saved_adjacency = None if noise is None else noise.last_adjacency
    try:
        for layout in layouts:
            try:
                report.issues.extend(
                    _drive_layout(model, config, layout, num_stacks, ticks, rng, bitwise)
                )
            except Exception as error:  # noqa: BLE001 - verification must report, not crash
                report.issues.append(
                    PlanIssue(
                        "drive-failure", f"layout={layout}",
                        f"incremental drive raised {type(error).__name__}: {error}",
                    )
                )
    finally:
        if noise is not None:
            noise._dynamic_state = saved_dynamic
            noise.last_adjacency = saved_adjacency
    return report


def verify_detector(detector, **kwargs) -> PlanReport:
    """:func:`verify_model` over a :class:`CompiledDetector`'s plan + config."""
    return verify_model(detector.model, detector.config, **kwargs)
