"""CLI gate: ``python -m repro.analysis [targets ...]``.

Walks the default targets (``src/repro``, ``benchmarks``, ``examples``)
or the paths given on the command line, prints one
``path:line:col rule message`` line per unsuppressed finding and exits
non-zero if any remain.  CI runs this as a blocking step before the test
matrix; ``--report`` additionally writes the findings to a file that CI
uploads as an artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .lint import DEFAULT_TARGETS, lint_paths
from .rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checker for the repro codebase.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help=f"files or directories to lint (default: {', '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write the findings (one per line) to PATH",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.description}")
        print(
            "unused-suppression: every '# repro: allow[rule]' must silence a "
            "real finding on its line; stale markers are findings themselves"
        )
        return 0

    targets = args.targets or [target for target in DEFAULT_TARGETS if Path(target).exists()]
    findings, files_checked = lint_paths(targets)

    lines = [finding.format() for finding in findings]
    for line in lines:
        print(line)
    if args.report is not None:
        report = Path(args.report)
        report.parent.mkdir(parents=True, exist_ok=True)
        summary = (
            f"# repro.analysis: {len(findings)} finding(s) "
            f"across {files_checked} file(s)\n"
        )
        report.write_text(summary + "".join(line + "\n" for line in lines), encoding="utf-8")

    if findings:
        print(
            f"repro.analysis: {len(findings)} finding(s) in {files_checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"repro.analysis: clean ({files_checked} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
