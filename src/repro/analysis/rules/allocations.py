"""Hot-path allocation rules.

Functions registered in :data:`repro.analysis.hotpath.HOT_PATHS` (or marked
``@hot_path``) run once per serving tick; the incremental kernels among
them are tracemalloc-pinned to *zero* steady-state allocation.  These rules
keep the pins honest between benchmark runs: a fresh ``np.empty`` or an
``out=``-less ufunc inside a registered function is flagged on every lint
run, not on the next time someone re-reads a flamegraph.

Nested ``def``/``lambda`` bodies are excluded — a closure defined inside a
hot function is its own (unregistered) function.
"""

from __future__ import annotations

import ast

from ..lint import FileContext, LintFinding, dotted_name

__all__ = ["HotPathAllocRule", "HotPathUfuncOutRule"]

#: numpy callables that always allocate a fresh array.
_ALLOCATING_CONSTRUCTORS = {
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "array", "copy", "concatenate", "stack",
    "vstack", "hstack", "dstack", "column_stack",
    "tile", "repeat", "where", "pad",
    "arange", "linspace", "logspace", "eye", "identity", "meshgrid",
}

#: ndarray methods that allocate.
_ALLOCATING_METHODS = {"copy", "astype", "flatten", "tolist"}

#: numpy callables that accept ``out=`` — in a ``strict`` hot path each call
#: must use it (the zero-allocation contract).
_OUT_CAPABLE = {
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "matmul", "power", "mod", "remainder",
    "exp", "log", "log2", "log10", "sqrt", "square", "reciprocal",
    "sin", "cos", "tan", "tanh", "sinh", "cosh",
    "abs", "absolute", "fabs", "negative", "positive", "sign", "rint",
    "floor", "ceil", "trunc", "clip",
    "maximum", "minimum", "fmax", "fmin",
    "greater", "greater_equal", "less", "less_equal", "equal", "not_equal",
    "logical_and", "logical_or", "logical_xor", "logical_not",
    "isfinite", "isnan", "isinf",
    "sum", "prod", "max", "min", "amax", "amin", "mean",
}


def _numpy_member(name: str | None) -> str | None:
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 2 and parts[0] in ("np", "numpy"):
        return parts[1]
    return None


def _hot_body(function: ast.AST):
    """Nodes lexically inside ``function``, excluding nested function bodies."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class HotPathAllocRule:
    name = "hot-alloc"
    description = (
        "registered hot paths may not call allocating numpy constructors "
        "(np.empty/zeros/concatenate/...) or .copy()/.astype(); preallocate "
        "in __init__ or a ScratchArena"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        findings = []
        for function, qualname, _tier in context.hot_functions():
            for node in _hot_body(function):
                if not isinstance(node, ast.Call):
                    continue
                member = _numpy_member(dotted_name(node.func))
                if member in _ALLOCATING_CONSTRUCTORS:
                    findings.append(
                        context.finding(
                            node, self.name,
                            f"np.{member} allocates inside hot path {qualname}; "
                            "preallocate the buffer and fill it in place",
                        )
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ALLOCATING_METHODS
                    and not isinstance(node.func.value, ast.Constant)
                ):
                    findings.append(
                        context.finding(
                            node, self.name,
                            f".{node.func.attr}() allocates inside hot path "
                            f"{qualname}; reuse a preallocated buffer",
                        )
                    )
        return findings


class HotPathUfuncOutRule:
    name = "hot-ufunc-out"
    description = (
        "strict (zero-allocation) hot paths must pass out= to every "
        "out-capable numpy call so no tick allocates an intermediate"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        findings = []
        for function, qualname, tier in context.hot_functions():
            if tier != "strict":
                continue
            for node in _hot_body(function):
                if not isinstance(node, ast.Call):
                    continue
                member = _numpy_member(dotted_name(node.func))
                if member not in _OUT_CAPABLE:
                    continue
                if any(keyword.arg == "out" for keyword in node.keywords):
                    continue
                findings.append(
                    context.finding(
                        node, self.name,
                        f"np.{member} without out= allocates a fresh array every "
                        f"tick in zero-allocation hot path {qualname}",
                    )
                )
        return findings
