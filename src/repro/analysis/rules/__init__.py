"""Rule registry for the static invariant linter.

Every rule is an object with a ``name`` (the id used in
``# repro: allow[name]`` suppressions), a one-line ``description`` (shown
by ``python -m repro.analysis --rules``) and a
``check(context) -> list[LintFinding]`` method over a parsed
:class:`~repro.analysis.lint.FileContext`.
"""

from .allocations import HotPathAllocRule, HotPathUfuncOutRule
from .determinism import (
    IdCacheKeyRule,
    SetOrderRule,
    UnseededRngRule,
    WallClockRule,
)
from .numerics import Float32LiteralRule, NanTransparencyRule

__all__ = ["RULES"]

#: The default rule set, in reporting order.
RULES = (
    WallClockRule(),
    UnseededRngRule(),
    IdCacheKeyRule(),
    SetOrderRule(),
    HotPathAllocRule(),
    HotPathUfuncOutRule(),
    NanTransparencyRule(),
    Float32LiteralRule(),
)
