"""Numerics rules: NaN transparency and float64 bit-equality hygiene.

NaN is load-bearing in this codebase: a non-finite score *is* the "no
observation this tick" signal that the POT state, alert streaks and drift
sketches are all contractually transparent to.  Replacing NaNs with
numbers (``np.nan_to_num``) or comparing against NaN with ``==``/``!=``
silently converts a survey gap into a fake observation.

The float32 rule guards the other direction: the serving stack's
bit-for-bit guarantee is a *float64* contract, and plans are generic over
an opt-in dtype — a hard-coded float32 literal or cast inside one of those
modules would quietly fork the numerics.
"""

from __future__ import annotations

import ast

from ..lint import FileContext, LintFinding, dotted_name

__all__ = ["NanTransparencyRule", "Float32LiteralRule"]

#: Module path prefixes under the float64 bit-equality contract.  Generic
#: dtype plumbing (``dtype=self.dtype``, ``np.dtype(...)`` resolution) is
#: untouched — only hard-coded float32 is flagged.
_BIT_EQUALITY_PATHS = (
    "repro/runtime/",
    "repro/streaming/",
    "repro/nn/",
    "repro/core/",
    "repro/evaluation/",
)


def _is_nan_constant(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name is not None and name.split(".")[-1] in ("nan", "NaN", "NAN"):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and str(node.args[0].value).lower() in ("nan", "-nan")
    ):
        return True
    return False


class NanTransparencyRule:
    name = "nan-transparency"
    description = (
        "no np.nan_to_num and no ==/!= comparisons against NaN: non-finite "
        "scores mean 'no observation' and must flow through POT/streaming "
        "state untouched; use np.isfinite/np.isnan masks"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        findings = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] == "nan_to_num":
                    findings.append(
                        context.finding(
                            node, self.name,
                            "np.nan_to_num turns a survey gap into a fake "
                            "observation; mask with np.isfinite and keep the "
                            "NaN no-op contract instead",
                        )
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(_is_nan_constant(operand) for operand in operands) and any(
                    isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                ):
                    findings.append(
                        context.finding(
                            node, self.name,
                            "comparing against NaN with ==/!= is always "
                            "False/True (IEEE-754); use np.isnan",
                        )
                    )
        return findings


def _is_float32(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value == "float32":
        return True
    name = dotted_name(node)
    return name is not None and name.split(".")[-1] == "float32"


class Float32LiteralRule:
    name = "float32-literal"
    description = (
        "no hard-coded float32 dtypes/casts inside float64 bit-equality "
        "modules (runtime/streaming/nn/core/evaluation); single precision is "
        "an explicit dtype= opt-in at the compile boundary"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        if not any(prefix in context.path for prefix in _BIT_EQUALITY_PATHS):
            return []
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "float32":
                findings.append(
                    context.finding(
                        node, self.name,
                        "float32(...) cast inside a float64 bit-equality "
                        "module; plans opt into single precision only via the "
                        "compile-time dtype parameter",
                    )
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_float32(node.args[0])
            ):
                findings.append(
                    context.finding(
                        node, self.name,
                        ".astype(float32) inside a float64 bit-equality module "
                        "forks the numerics; keep the module generic over the "
                        "plan dtype",
                    )
                )
                continue
            for keyword in node.keywords:
                if keyword.arg == "dtype" and _is_float32(keyword.value):
                    findings.append(
                        context.finding(
                            node, self.name,
                            "dtype=float32 literal inside a float64 "
                            "bit-equality module; thread the plan dtype "
                            "instead of hard-coding single precision",
                        )
                    )
        return findings
