"""Determinism rules: wall clocks, RNG state, ``id()`` keys, set ordering.

The repro's serving and training paths promise bit-identical replays:
the same inputs, the same seeds, the same outputs — across reruns, worker
counts and checkpoint resumes.  Each rule here flags one way that promise
silently breaks.
"""

from __future__ import annotations

import ast

from ..lint import FileContext, LintFinding, dotted_name

__all__ = ["WallClockRule", "UnseededRngRule", "IdCacheKeyRule", "SetOrderRule"]

#: Monotonic clocks (``time.perf_counter``/``perf_counter_ns``/``monotonic``)
#: measure *durations* and are fine on any path; these read the wall clock,
#: whose value can never be replayed.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: ``np.random`` attributes that do NOT touch the hidden global RNG stream.
_SEEDED_RNG_API = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _numpy_random_member(name: str | None) -> str | None:
    """The member name for ``np.random.X`` / ``numpy.random.X`` chains."""
    if name is None:
        return None
    parts = name.split(".")
    for index in range(len(parts) - 1):
        if parts[index] in ("np", "numpy") and parts[index + 1] == "random":
            remainder = parts[index + 2:]
            if remainder:
                return remainder[0]
    return None


class WallClockRule:
    name = "wallclock"
    description = (
        "no wall-clock reads (time.time, datetime.now, ...) — a replayed tick "
        "must see the data's timeline, not the host's; use time.perf_counter "
        "for durations"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = ".".join(name.split(".")[-2:])
            if name in _WALL_CLOCK_CALLS or tail in _WALL_CLOCK_CALLS:
                findings.append(
                    context.finding(
                        node, self.name,
                        f"wall-clock read {name}() is not replayable; derive time "
                        "from the data timeline (or perf_counter for durations)",
                    )
                )
        return findings


class UnseededRngRule:
    name = "unseeded-rng"
    description = (
        "no global/unseeded RNG state: stdlib random, np.random.<fn> module "
        "functions, or np.random.default_rng() without a seed"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        findings = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        findings.append(
                            context.finding(
                                node, self.name,
                                "stdlib random is hidden global state; use "
                                "np.random.default_rng(seed)",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        context.finding(
                            node, self.name,
                            "stdlib random is hidden global state; use "
                            "np.random.default_rng(seed)",
                        )
                    )
            elif isinstance(node, ast.Call):
                member = _numpy_random_member(dotted_name(node.func))
                if member is None:
                    continue
                if member == "RandomState":
                    findings.append(
                        context.finding(
                            node, self.name,
                            "np.random.RandomState is the legacy global-stream "
                            "API; use np.random.default_rng(seed)",
                        )
                    )
                elif member == "default_rng":
                    if not node.args and not node.keywords:
                        findings.append(
                            context.finding(
                                node, self.name,
                                "np.random.default_rng() with no seed draws OS "
                                "entropy; pass an explicit seed",
                            )
                        )
                elif member not in _SEEDED_RNG_API:
                    findings.append(
                        context.finding(
                            node, self.name,
                            f"np.random.{member} mutates the hidden global RNG "
                            "stream; thread a np.random.default_rng(seed) "
                            "Generator instead",
                        )
                    )
        return findings


class IdCacheKeyRule:
    name = "id-key"
    description = (
        "no id() values as cache/set keys — CPython recycles addresses, so a "
        "dead object's key aliases a live one (the PR 8 _self_stage_cache "
        "regression); key on content or minted tokens"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        findings = []
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                findings.append(
                    context.finding(
                        node, self.name,
                        "id() is only unique while the object is alive; a "
                        "recycled address aliases a different object — key on "
                        "content or a monotonic token",
                    )
                )
        return findings


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra keeps set-ness: (a | b), (a & b), (a - b)
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class SetOrderRule:
    name = "set-order"
    description = (
        "no iteration over sets where the order can reach output (loops, "
        "list()/tuple()/join over a set): hash order varies across runs; "
        "wrap in sorted()"
    )

    _MESSAGE = (
        "set iteration order is not deterministic across processes; wrap the "
        "set in sorted() before iterating"
    )

    def check(self, context: FileContext) -> list[LintFinding]:
        findings = []
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expression(node.iter):
                findings.append(context.finding(node.iter, self.name, self._MESSAGE))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        findings.append(
                            context.finding(generator.iter, self.name, self._MESSAGE)
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple", "enumerate")
                    and node.args
                    and _is_set_expression(node.args[0])
                ):
                    findings.append(context.finding(node.args[0], self.name, self._MESSAGE))
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_expression(node.args[0])
                ):
                    findings.append(context.finding(node.args[0], self.name, self._MESSAGE))
        return findings
