"""Static invariant checking for the reproduction's core guarantees.

The repo's contracts — bit-for-bit equality between the autograd, compiled
and incremental serving paths, zero-allocation steady-state ticks, and
NaN-transparent POT/streaming state — are enforced dynamically by tests,
but a test only exercises the configurations someone thought to pin.  This
package makes the contracts *executable on every file, every CI run*:

* :mod:`repro.analysis.lint` — an AST-walking rule framework with
  repo-specific rules (wall-clock reads, unseeded RNG, ``id()`` cache
  keys, set-iteration ordering, hot-path allocations, NaN-contract and
  float32-literal violations), ``# repro: allow[rule]`` suppressions and
  unused-suppression detection.  ``python -m repro.analysis`` runs it as a
  blocking CI gate.
* :mod:`repro.analysis.plancheck` — an abstract verifier for the compiled
  runtime: symbolic shape/dtype propagation over plan weights, a shadow
  interpretation of incremental ticks that detects workspace aliasing in
  :class:`~repro.runtime.incremental.ScratchArena` buffers, ring-buffer
  invariant checks, layout-consistency checks and an end-to-end
  incremental-vs-full score comparison.  Exposed to users as
  ``compile_detector(..., verify=True)``.
* :mod:`repro.analysis.hotpath` — the registry naming the functions whose
  steady-state ticks must not allocate, plus the ``@hot_path`` decorator
  for registering new ones in place.
"""

from .hotpath import HOT_PATHS, hot_path
from .lint import (
    DEFAULT_TARGETS,
    LintFinding,
    lint_file,
    lint_paths,
    lint_source,
)
from .plancheck import (
    PlanIssue,
    PlanReport,
    PlanVerificationError,
    TrackingArena,
    check_state,
    check_structure,
    verify_detector,
    verify_model,
)
from .rules import RULES

__all__ = [
    "DEFAULT_TARGETS",
    "HOT_PATHS",
    "LintFinding",
    "PlanIssue",
    "PlanReport",
    "PlanVerificationError",
    "RULES",
    "TrackingArena",
    "check_state",
    "check_structure",
    "hot_path",
    "lint_file",
    "lint_paths",
    "lint_source",
    "verify_detector",
    "verify_model",
]
