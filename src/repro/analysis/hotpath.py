"""Registry of steady-state hot paths and the ``@hot_path`` decorator.

A *hot path* is a function whose per-tick execution is part of a pinned
performance contract: the incremental serving kernels are tracemalloc-pinned
to zero steady-state allocation, and the fleet/POT/telemetry tick paths are
benchmarked against allocation-driven regressions.  The
``hot-alloc``/``hot-ufunc-out`` lint rules (:mod:`repro.analysis.rules`)
flag numpy allocations inside registered functions so a new ``np.empty`` or
an ``out=``-less ufunc cannot sneak into a tick unnoticed.

Two registration mechanisms, both purely declarative:

* the :data:`HOT_PATHS` manifest below — ``"path::qualname"`` keys matched
  by path *suffix*, covering existing code without touching it;
* the :func:`hot_path` decorator — for new code, mark the function where it
  is defined.  The linter recognises the decorator syntactically; at
  runtime it is a zero-cost identity wrapper.

Tiers
-----
``"alloc"``
    The function may not call allocating numpy constructors
    (``np.empty``/``np.zeros``/``np.concatenate``/``np.stack``/… ) or the
    allocating ``.copy()``/``.astype()`` methods.  Fresh result arrays that
    intentionally outlive the tick carry a ``# repro: allow[hot-alloc]``
    suppression with a justification.
``"strict"``
    Everything ``alloc`` forbids, plus every ufunc call must write into a
    preallocated destination (``out=``).  This is the zero-allocation
    contract of the incremental workspace kernels.
"""

from __future__ import annotations

__all__ = ["HOT_PATHS", "hot_path"]

#: ``"<path suffix>::<qualified name>"`` → tier.  Qualified names follow the
#: lexical nesting of the AST (``Class.method``); the path is matched as a
#: ``/``-separated suffix of the linted file's path.
HOT_PATHS: dict[str, str] = {
    # -- incremental serving: the zero-allocation tick kernels ------------
    "repro/runtime/incremental.py::ScratchArena.get": "strict",
    "repro/runtime/incremental.py::_ws_linear": "strict",
    "repro/runtime/incremental.py::_ws_relu": "strict",
    "repro/runtime/incremental.py::_ws_gelu": "strict",
    "repro/runtime/incremental.py::_ws_sigmoid": "strict",
    "repro/runtime/incremental.py::_sigmoid_inplace": "strict",
    "repro/runtime/incremental.py::_ws_activation": "strict",
    "repro/runtime/incremental.py::_ws_softmax_inplace": "strict",
    "repro/runtime/incremental.py::_ws_layer_norm": "strict",
    "repro/runtime/incremental.py::_ws_ffn": "strict",
    "repro/runtime/incremental.py::_ws_attend": "strict",
    "repro/runtime/incremental.py::_ws_self_attention": "strict",
    "repro/runtime/incremental.py::_ws_cross_attention": "strict",
    "repro/runtime/incremental.py::_ws_encoder_layer": "strict",
    "repro/runtime/incremental.py::_ws_self_stage": "strict",
    "repro/runtime/incremental.py::_ws_cross_stage": "strict",
    "repro/runtime/incremental.py::_ws_decoder_layer": "strict",
    "repro/runtime/incremental.py::IncrementalState.append": "strict",
    "repro/runtime/incremental.py::IncrementalState._embed_row": "strict",
    "repro/runtime/incremental.py::IncrementalState.score": "strict",
    "repro/runtime/incremental.py::IncrementalState._score_full": "strict",
    "repro/runtime/incremental.py::temporal_step": "strict",
    "repro/runtime/incremental.py::noise_step": "strict",
    "repro/runtime/incremental.py::model_step": "strict",
    "repro/runtime/compiler.py::CompiledDetector.score_stack_step": "strict",
    "repro/runtime/compiler.py::CompiledDetector.score_step": "strict",
    # -- fleet serving tick ----------------------------------------------
    "repro/streaming/fleet.py::FleetManager.step": "alloc",
    "repro/streaming/fleet.py::FleetManager._step_inner": "alloc",
    "repro/streaming/fleet.py::FleetManager._incremental_forward": "alloc",
    "repro/streaming/fleet.py::FleetManager._record_tick_metrics": "alloc",
    # -- per-star adaptive thresholds ------------------------------------
    "repro/streaming/vector_pot.py::VectorizedIncrementalPOT.update": "alloc",
    "repro/streaming/vector_pot.py::VectorizedIncrementalPOT._push_excesses": "alloc",
    "repro/streaming/vector_pot.py::VectorizedIncrementalPOT._recompute_thresholds": "alloc",
    # -- telemetry per-tick updates --------------------------------------
    "repro/obs/metrics.py::Counter.inc": "alloc",
    "repro/obs/metrics.py::Gauge.set": "alloc",
    "repro/obs/metrics.py::Gauge.inc": "alloc",
    "repro/obs/metrics.py::Histogram.observe": "alloc",
    "repro/obs/metrics.py::Histogram.observe_many": "alloc",
    "repro/obs/metrics.py::VectorCounter.add": "alloc",
    "repro/obs/metrics.py::VectorCounter.inc_at": "alloc",
    "repro/obs/metrics.py::VectorGauge.set": "alloc",
    "repro/obs/metrics.py::VectorGauge.set_at": "alloc",
    "repro/obs/drift.py::DriftMonitor.update": "alloc",
}

_TIERS = ("alloc", "strict")


def hot_path(function=None, *, tier: str = "alloc"):
    """Mark a function as a registered steady-state hot path.

    Usable bare (``@hot_path``) or parameterised
    (``@hot_path(tier="strict")``).  The lint rules match the decorator
    *syntactically*, so marking a function is enough — no import-time
    registration happens; at runtime the function is returned unchanged.
    """
    if tier not in _TIERS:
        raise ValueError(f"hot_path tier must be one of {_TIERS}, got {tier!r}")
    if function is None:
        def decorate(inner):
            inner.__hot_path_tier__ = tier
            return inner
        return decorate
    function.__hot_path_tier__ = tier
    return function
