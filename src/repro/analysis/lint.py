"""AST lint framework enforcing the repo's reproducibility contracts.

The rules in :mod:`repro.analysis.rules` encode invariants that the test
suite can only probe pointwise — *no wall-clock reads on serving paths*,
*no unseeded RNG*, *no ``id()`` cache keys*, *no allocations in registered
hot paths*, *no NaN-opaque transforms on score arrays* — as syntactic
checks that run over every file on every CI run.

Suppressions
------------
An intentional violation is silenced in place::

    started = time.time()  # repro: allow[wallclock] -- report timestamp only

The marker is ``# repro: allow[rule]`` (comma-separate several rules) on
the **same line** as the finding; everything after the closing bracket is
the justification.  Suppressions are themselves checked: an ``allow`` that
silences nothing raises an ``unused-suppression`` finding, so stale
annotations cannot accumulate.

Entry points
------------
:func:`lint_source` checks one in-memory module, :func:`lint_file` one
file, :func:`lint_paths` walks directories; ``python -m repro.analysis``
wraps :func:`lint_paths` as the CI gate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

from .hotpath import HOT_PATHS

__all__ = [
    "DEFAULT_TARGETS",
    "LintFinding",
    "FileContext",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Directories ``python -m repro.analysis`` walks when invoked bare, relative
#: to the repository root.  Scripts under ``benchmarks/`` and ``examples/``
#: are linted with the same determinism rules as the package — a benchmark
#: that reads global RNG state is as unreproducible as a serving path that
#: does.
DEFAULT_TARGETS = ("src/repro", "benchmarks", "examples")

_ALLOW_RE = re.compile(r"repro:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"


class _Suppression:
    __slots__ = ("line", "rules", "used")

    def __init__(self, line: int, rules: tuple[str, ...]):
        self.line = line
        self.rules = rules
        self.used: set[str] = set()


class FileContext:
    """Parsed module plus everything the rules need to check it.

    Exposes the AST, per-node qualified names (``Class.method`` following
    lexical nesting), the hot-path tier of every function (manifest suffix
    match or ``@hot_path`` decorator) and the suppression table parsed from
    comment tokens (comments inside string literals are ignored).
    """

    def __init__(self, path: str, source: str):
        self.path = str(Path(path).as_posix())
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self._qualnames: dict[ast.AST, str] = {}
        self._hot_tiers: dict[ast.AST, str] = {}
        self._suppressions: dict[int, _Suppression] = {}
        self._collect_names(self.tree, prefix="")
        self._collect_suppressions()

    # ------------------------------------------------------------------
    def _collect_names(self, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qualname = f"{prefix}{child.name}"
                self._qualnames[child] = qualname
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    tier = self._resolve_hot_tier(child, qualname)
                    if tier is not None:
                        self._hot_tiers[child] = tier
                self._collect_names(child, prefix=f"{qualname}.")
            else:
                self._collect_names(child, prefix=prefix)

    def _resolve_hot_tier(self, node: ast.FunctionDef, qualname: str) -> str | None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = dotted_name(target)
            if name is not None and name.split(".")[-1] == "hot_path":
                tier = "alloc"
                if isinstance(decorator, ast.Call):
                    for keyword in decorator.keywords:
                        if keyword.arg == "tier" and isinstance(keyword.value, ast.Constant):
                            tier = str(keyword.value.value)
                    if decorator.args and isinstance(decorator.args[0], ast.Constant):
                        tier = str(decorator.args[0].value)
                return tier
        for key, tier in HOT_PATHS.items():
            manifest_path, _, manifest_name = key.partition("::")
            if manifest_name == qualname and _path_matches(self.path, manifest_path):
                return tier
        return None

    def _collect_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _ALLOW_RE.search(token.string)
                if match is None:
                    continue
                rules = tuple(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
                line = token.start[0]
                self._suppressions[line] = _Suppression(line, rules)
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
            pass

    # ------------------------------------------------------------------
    def qualname(self, node: ast.AST) -> str | None:
        return self._qualnames.get(node)

    def hot_functions(self) -> list[tuple[ast.AST, str, str]]:
        """Registered hot paths in this file: ``(node, qualname, tier)``."""
        return [
            (node, self._qualnames[node], tier) for node, tier in self._hot_tiers.items()
        ]

    def finding(self, node: ast.AST, rule: str, message: str) -> LintFinding:
        return LintFinding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )

    # ------------------------------------------------------------------
    def filter_suppressed(self, findings: list[LintFinding]) -> list[LintFinding]:
        """Drop suppressed findings; append unused-suppression findings."""
        kept: list[LintFinding] = []
        for finding in findings:
            suppression = self._suppressions.get(finding.line)
            if suppression is not None and finding.rule in suppression.rules:
                suppression.used.add(finding.rule)
            else:
                kept.append(finding)
        for suppression in self._suppressions.values():
            for rule in suppression.rules:
                if rule not in suppression.used:
                    kept.append(
                        LintFinding(
                            path=self.path,
                            line=suppression.line,
                            col=1,
                            rule="unused-suppression",
                            message=(
                                f"allow[{rule}] suppresses nothing on this line; "
                                "remove the stale annotation"
                            ),
                        )
                    )
        kept.sort(key=lambda f: (f.line, f.col, f.rule))
        return kept


def _path_matches(path: str, suffix: str) -> bool:
    parts = path.split("/")
    suffix_parts = suffix.split("/")
    return parts[-len(suffix_parts):] == suffix_parts


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<memory>", rules=None) -> list[LintFinding]:
    """Lint one module's source; returns unsuppressed findings, sorted."""
    if rules is None:
        from .rules import RULES as rules
    try:
        context = FileContext(path, source)
    except SyntaxError as error:
        return [
            LintFinding(
                path=str(Path(path).as_posix()),
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule="syntax-error",
                message=f"file does not parse: {error.msg}",
            )
        ]
    findings: list[LintFinding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    return context.filter_suppressed(findings)


def lint_file(path, rules=None) -> list[LintFinding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def lint_paths(paths, rules=None) -> tuple[list[LintFinding], int]:
    """Lint every ``*.py`` under ``paths``; ``(findings, files_checked)``."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(
                candidate
                for candidate in sorted(entry.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif entry.suffix == ".py":
            files.append(entry)
    findings: list[LintFinding] = []
    for file in files:
        findings.extend(lint_file(file, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)
