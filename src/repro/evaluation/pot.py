"""Peaks-over-threshold (POT) automatic thresholding via extreme value theory.

Following Siffer et al. (KDD 2017), anomaly-score thresholds are derived from
the Generalized Pareto Distribution (GPD) fitted to the excesses of scores
over an initial high quantile:

1. set an initial threshold ``t`` at quantile ``level`` of the calibration
   scores (the paper uses ``level = 0.99``);
2. fit a GPD to the excesses ``s - t`` for all scores ``s > t``;
3. the final threshold for target tail probability ``q`` (paper: 0.001) is

   ``z_q = t + (sigma / gamma) * ((q * n / N_t)^(-gamma) - 1)``

   where ``n`` is the number of calibration scores and ``N_t`` the number of
   excesses.  When the fitted shape ``gamma`` is (near) zero the exponential
   limit ``z_q = t - sigma * log(q * n / N_t)`` is used.

``SPOT`` wraps this procedure for streaming data, updating the excess set as
new scores arrive, and ``DSPOT`` adds a drift term (moving-average removal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GPDFit",
    "fit_gpd",
    "gpd_tail_threshold",
    "gpd_tail_thresholds",
    "pot_threshold",
    "SPOT",
    "DSPOT",
]


@dataclass
class GPDFit:
    """Maximum-likelihood fit of a Generalized Pareto Distribution."""

    shape: float  # gamma
    scale: float  # sigma
    num_excesses: int


def _gpd_negative_log_likelihood(shape: float, scale: float, excesses: np.ndarray) -> float:
    if scale <= 0:
        return np.inf
    if abs(shape) < 1e-9:
        return len(excesses) * np.log(scale) + excesses.sum() / scale
    z = 1.0 + shape * excesses / scale
    if (z <= 0).any():
        return np.inf
    return len(excesses) * np.log(scale) + (1.0 + 1.0 / shape) * np.log(z).sum()


def fit_gpd(excesses: np.ndarray) -> GPDFit:
    """Fit a GPD to positive excesses using the Grimshaw trick / grid search.

    A robust light-weight estimator: we search over candidate shape values and
    solve for the scale by profile likelihood, which is accurate enough for
    thresholding purposes and has no external dependencies.
    """
    excesses = np.asarray(excesses, dtype=np.float64)
    excesses = excesses[excesses > 0]
    if excesses.size == 0:
        raise ValueError("cannot fit a GPD with no positive excesses")
    mean = float(excesses.mean())
    if excesses.size < 3 or np.allclose(excesses, excesses[0]):
        # Degenerate case: fall back to an exponential fit.
        return GPDFit(shape=0.0, scale=max(mean, 1e-12), num_excesses=int(excesses.size))

    best = GPDFit(shape=0.0, scale=mean, num_excesses=int(excesses.size))
    best_nll = _gpd_negative_log_likelihood(0.0, mean, excesses)
    # Candidate shapes spanning heavy and bounded tails.
    for shape in np.linspace(-1.0, 2.0, 61):
        if abs(shape) < 1e-9:
            continue
        # Profile scale: method-of-moments style initial value refined by a
        # small golden-section search on the likelihood.
        scale_grid = mean * np.array([0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0])
        for scale in scale_grid:
            nll = _gpd_negative_log_likelihood(shape, float(scale), excesses)
            if nll < best_nll:
                best_nll = nll
                best = GPDFit(shape=float(shape), scale=float(scale), num_excesses=int(excesses.size))
    return best


def gpd_tail_thresholds(
    initial_thresholds: np.ndarray,
    shapes: np.ndarray,
    scales: np.ndarray,
    num_excesses: np.ndarray,
    q: float,
    num_observations: np.ndarray,
) -> np.ndarray:
    """Array-native ``z_q`` inversion: one threshold per (star's) GPD fit.

    Element ``i`` computes exactly :func:`gpd_tail_threshold` for the
    ``i``-th fit.  Every POT variant — batch, SPOT, DSPOT, the streaming
    :class:`repro.streaming.IncrementalPOT` and the per-star
    :class:`repro.streaming.VectorizedIncrementalPOT` — funnels through this
    one ufunc-backed implementation, which keeps their thresholds
    bit-for-bit comparable (numpy's array ufuncs are element-consistent,
    whereas mixing scalar ``math``-style calls with array calls is not).
    """
    initial = np.asarray(initial_thresholds, dtype=np.float64)
    shapes = np.asarray(shapes, dtype=np.float64)
    scales = np.asarray(scales, dtype=np.float64)
    ratio = q * np.asarray(num_observations, dtype=np.float64) / np.maximum(num_excesses, 1)
    thresholds = np.empty(initial.shape, dtype=np.float64)
    exponential = np.abs(shapes) < 1e-9
    if exponential.any():
        thresholds[exponential] = (
            initial[exponential] - scales[exponential] * np.log(ratio[exponential])
        )
    heavy = ~exponential
    if heavy.any():
        thresholds[heavy] = initial[heavy] + (scales[heavy] / shapes[heavy]) * (
            ratio[heavy] ** -shapes[heavy] - 1.0
        )
    return np.maximum(thresholds, initial)


def gpd_tail_threshold(
    initial_threshold: float,
    fit: GPDFit,
    q: float,
    num_observations: int,
) -> float:
    """Invert a fitted GPD tail into the threshold ``z_q`` (Eq. 18 core).

    This is the shared final step of every POT variant (batch, SPOT, DSPOT
    and the streaming :class:`repro.streaming.IncrementalPOT`): given the
    initial threshold ``t``, a GPD fit of the excesses over ``t`` and the
    total number of observations ``n``, return

    ``z_q = t + (sigma / gamma) * ((q * n / N_t)^(-gamma) - 1)``

    falling back to the exponential limit for ``gamma ~ 0``.  The result is
    clamped from below at the initial threshold.
    """
    return float(
        gpd_tail_thresholds(
            np.asarray([initial_threshold]),
            np.asarray([fit.shape]),
            np.asarray([fit.scale]),
            np.asarray([fit.num_excesses]),
            q,
            np.asarray([num_observations]),
        )[0]
    )


def pot_threshold(
    scores: np.ndarray,
    level: float = 0.99,
    q: float = 1e-3,
    minimum_excesses: int = 10,
) -> float:
    """Compute the POT anomaly threshold from calibration ``scores``.

    Parameters
    ----------
    scores:
        Calibration anomaly scores (typically from the training split), any shape.
    level:
        Initial-threshold quantile (paper: 0.99).
    q:
        Target tail probability (paper: 1e-3).
    minimum_excesses:
        If fewer than this many scores exceed the initial quantile, the
        initial threshold is lowered until enough excesses are available;
        if that is impossible the empirical ``1 - q`` quantile is returned.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.size == 0:
        raise ValueError("scores must not be empty")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")

    n = scores.size
    initial = float(np.quantile(scores, level))
    excesses = scores[scores > initial] - initial
    # Lower the initial threshold if the tail is too sparse to fit.
    trial_level = level
    while excesses.size < minimum_excesses and trial_level > 0.5:
        trial_level -= 0.05
        initial = float(np.quantile(scores, trial_level))
        excesses = scores[scores > initial] - initial
    if excesses.size < 3:
        return float(np.quantile(scores, 1.0 - q))

    fit = fit_gpd(excesses)
    # The threshold must not fall below the initial quantile.
    return gpd_tail_threshold(initial, fit, q, n)


class SPOT:
    """Streaming POT detector for univariate anomaly scores.

    ``fit`` calibrates on an initial batch; ``step`` processes one new score,
    returning ``True`` if it exceeds the current threshold, and adds
    non-anomalous excesses to the tail model.
    """

    def __init__(self, q: float = 1e-3, level: float = 0.98):
        self.q = q
        self.level = level
        self.initial_threshold: float | None = None
        self.threshold: float | None = None
        self._excesses: list[float] = []
        self._num_observations = 0

    def fit(self, scores: np.ndarray) -> "SPOT":
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if scores.size < 10:
            raise ValueError("SPOT needs at least 10 calibration scores")
        self._num_observations = scores.size
        self.initial_threshold = float(np.quantile(scores, self.level))
        self._excesses = list(scores[scores > self.initial_threshold] - self.initial_threshold)
        self._update_threshold()
        return self

    def _update_threshold(self) -> None:
        if not self._excesses:
            self.threshold = self.initial_threshold
            return
        fit = fit_gpd(np.asarray(self._excesses))
        self.threshold = gpd_tail_threshold(
            self.initial_threshold, fit, self.q, self._num_observations
        )

    def step(self, score: float) -> bool:
        """Process one new score; return ``True`` if it is an anomaly."""
        if self.threshold is None or self.initial_threshold is None:
            raise RuntimeError("SPOT must be fitted before calling step")
        self._num_observations += 1
        if score > self.threshold:
            return True
        if score > self.initial_threshold:
            self._excesses.append(score - self.initial_threshold)
            self._update_threshold()
        return False

    def detect(self, scores: np.ndarray) -> np.ndarray:
        """Run :meth:`step` over an array of scores and return the binary alarms."""
        return np.asarray([self.step(float(s)) for s in np.asarray(scores).ravel()], dtype=np.int64)


class DSPOT(SPOT):
    """Drift-aware SPOT: scores are first de-trended by a moving average."""

    def __init__(self, q: float = 1e-3, level: float = 0.98, depth: int = 10):
        super().__init__(q=q, level=level)
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.depth = depth
        self._window: list[float] = []

    def fit(self, scores: np.ndarray) -> "DSPOT":
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if scores.size <= self.depth + 10:
            raise ValueError("DSPOT needs more calibration scores than its depth")
        self._window = list(scores[-self.depth:])
        residuals = scores[self.depth:] - np.array(
            [scores[i:i + self.depth].mean() for i in range(scores.size - self.depth)]
        )
        super().fit(residuals)
        return self

    def step(self, score: float) -> bool:
        if not self._window:
            raise RuntimeError("DSPOT must be fitted before calling step")
        baseline = float(np.mean(self._window))
        residual = score - baseline
        is_anomaly = super().step(residual)
        if not is_anomaly:
            self._window.append(score)
            if len(self._window) > self.depth:
                self._window.pop(0)
        return is_anomaly
