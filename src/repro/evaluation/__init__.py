"""Evaluation protocol: metrics, point-adjust strategy and POT thresholding."""

from .metrics import ConfusionCounts, EvaluationResult, confusion_counts, precision_recall_f1
from .point_adjust import adjust_predictions, anomaly_segments
from .pot import GPDFit, fit_gpd, gpd_tail_threshold, gpd_tail_thresholds, pot_threshold, SPOT, DSPOT
from .evaluator import DetectionOutcome, evaluate_scores, threshold_scores, best_f1_evaluation

__all__ = [
    "ConfusionCounts",
    "EvaluationResult",
    "confusion_counts",
    "precision_recall_f1",
    "adjust_predictions",
    "anomaly_segments",
    "GPDFit",
    "fit_gpd",
    "gpd_tail_threshold",
    "gpd_tail_thresholds",
    "pot_threshold",
    "SPOT",
    "DSPOT",
    "DetectionOutcome",
    "evaluate_scores",
    "threshold_scores",
    "best_f1_evaluation",
]
