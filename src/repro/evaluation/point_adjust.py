"""Point-adjust strategy (Xu et al. 2018; used by the paper in Section IV-C).

Alarms in astronomical monitoring are acted upon at the segment level: if any
point inside a contiguous ground-truth anomaly segment is detected, the whole
segment counts as detected.  The point-adjust strategy therefore expands a
prediction that hits a segment to cover the entire segment before computing
precision/recall/F1.
"""

from __future__ import annotations

import numpy as np

__all__ = ["adjust_predictions", "anomaly_segments"]


def anomaly_segments(labels: np.ndarray) -> list[tuple[int, int]]:
    """Return ``(start, end)`` pairs (half-open) of contiguous 1-runs in a 1-D label array."""
    labels = np.asarray(labels).astype(bool)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    segments: list[tuple[int, int]] = []
    start = None
    for index, flag in enumerate(labels):
        if flag and start is None:
            start = index
        elif not flag and start is not None:
            segments.append((start, index))
            start = None
    if start is not None:
        segments.append((start, len(labels)))
    return segments


def _adjust_single(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    adjusted = predictions.astype(bool).copy()
    for start, end in anomaly_segments(labels):
        if adjusted[start:end].any():
            adjusted[start:end] = True
    return adjusted


def adjust_predictions(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Apply point adjustment to ``predictions`` given ground-truth ``labels``.

    Both arrays may be 1-D (single variate) or 2-D ``(time, variates)``;
    adjustment is performed independently per variate.
    """
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.ndim == 1:
        return _adjust_single(predictions, labels)
    if predictions.ndim != 2:
        raise ValueError("only 1-D or 2-D inputs are supported")
    adjusted = np.empty_like(predictions)
    for variate in range(predictions.shape[1]):
        adjusted[:, variate] = _adjust_single(predictions[:, variate], labels[:, variate])
    return adjusted
