"""End-to-end evaluation protocol used in Tables II-IV.

Given per-point anomaly scores for the training (calibration) and test
splits, the protocol is:

1. derive the threshold from the calibration scores with POT
   (``level = 0.99``, ``q = 0.001`` — Section IV-B);
2. flag test points whose score exceeds the threshold;
3. apply the point-adjust strategy per variate;
4. report precision, recall and F1.

``evaluate_scores`` implements this protocol.  ``best_f1_evaluation`` is a
supplementary utility that searches the score range for the best attainable
F1 (useful for analysis; not used in the headline tables).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import EvaluationResult, precision_recall_f1
from .point_adjust import adjust_predictions
from .pot import pot_threshold

__all__ = ["DetectionOutcome", "evaluate_scores", "threshold_scores", "best_f1_evaluation"]


@dataclass
class DetectionOutcome:
    """Full outcome of an evaluation run."""

    result: EvaluationResult
    threshold: float | np.ndarray
    predictions: np.ndarray
    adjusted_predictions: np.ndarray


def threshold_scores(
    train_scores: np.ndarray,
    test_scores: np.ndarray,
    level: float = 0.99,
    q: float = 1e-3,
    per_variate: bool = False,
) -> tuple[np.ndarray, float | np.ndarray]:
    """Compute POT thresholds and binary predictions for ``test_scores``.

    When ``per_variate`` is true and the scores are 2-D, a separate threshold
    is computed for each variate (each star has its own score distribution).
    """
    train_scores = np.asarray(train_scores, dtype=np.float64)
    test_scores = np.asarray(test_scores, dtype=np.float64)
    if per_variate and test_scores.ndim == 2:
        if train_scores.ndim != 2 or train_scores.shape[1] != test_scores.shape[1]:
            raise ValueError("per-variate thresholding needs matching 2-D train scores")
        thresholds = np.array([
            pot_threshold(train_scores[:, v], level=level, q=q)
            for v in range(test_scores.shape[1])
        ])
        predictions = (test_scores >= thresholds[None, :]).astype(np.int64)
        return predictions, thresholds
    threshold = pot_threshold(train_scores, level=level, q=q)
    predictions = (test_scores >= threshold).astype(np.int64)
    return predictions, threshold


def evaluate_scores(
    train_scores: np.ndarray,
    test_scores: np.ndarray,
    test_labels: np.ndarray,
    level: float = 0.99,
    q: float = 1e-3,
    point_adjust: bool = True,
    per_variate: bool = False,
) -> DetectionOutcome:
    """Run the full POT + point-adjust evaluation protocol."""
    test_labels = np.asarray(test_labels)
    test_scores = np.asarray(test_scores, dtype=np.float64)
    if test_scores.shape != test_labels.shape:
        raise ValueError(
            f"test scores and labels must align: {test_scores.shape} != {test_labels.shape}"
        )
    predictions, threshold = threshold_scores(
        train_scores, test_scores, level=level, q=q, per_variate=per_variate
    )
    adjusted = adjust_predictions(predictions, test_labels) if point_adjust else predictions.astype(bool)
    result = precision_recall_f1(adjusted, test_labels)
    return DetectionOutcome(
        result=result,
        threshold=threshold,
        predictions=predictions,
        adjusted_predictions=adjusted.astype(np.int64),
    )


def best_f1_evaluation(
    test_scores: np.ndarray,
    test_labels: np.ndarray,
    num_thresholds: int = 100,
    point_adjust: bool = True,
) -> tuple[EvaluationResult, float]:
    """Search candidate thresholds for the best attainable F1.

    Returns the best result and the corresponding threshold.
    """
    test_scores = np.asarray(test_scores, dtype=np.float64)
    test_labels = np.asarray(test_labels)
    candidates = np.quantile(test_scores, np.linspace(0.5, 1.0, num_thresholds, endpoint=False))
    best_result = EvaluationResult(precision=0.0, recall=0.0, f1=0.0)
    best_threshold = float(candidates[-1]) if len(candidates) else 0.0
    for threshold in np.unique(candidates):
        predictions = test_scores >= threshold
        if point_adjust:
            predictions = adjust_predictions(predictions, test_labels)
        result = precision_recall_f1(predictions, test_labels)
        if result.f1 > best_result.f1:
            best_result = result
            best_threshold = float(threshold)
    return best_result, best_threshold
