"""Precision, recall and F1-score (Section IV-C)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfusionCounts", "confusion_counts", "precision_recall_f1", "EvaluationResult"]


@dataclass
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


@dataclass
class EvaluationResult:
    """Evaluation triple reported in Tables II-IV (values in [0, 1])."""

    precision: float
    recall: float
    f1: float

    def as_percentages(self) -> dict[str, float]:
        return {
            "precision": 100.0 * self.precision,
            "recall": 100.0 * self.recall,
            "f1": 100.0 * self.f1,
        }


def confusion_counts(predictions: np.ndarray, labels: np.ndarray) -> ConfusionCounts:
    """Count TP/FP/TN/FN between binary ``predictions`` and ``labels``."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"predictions and labels must have the same shape: {predictions.shape} != {labels.shape}"
        )
    return ConfusionCounts(
        true_positives=int((predictions & labels).sum()),
        false_positives=int((predictions & ~labels).sum()),
        true_negatives=int((~predictions & ~labels).sum()),
        false_negatives=int((~predictions & labels).sum()),
    )


def precision_recall_f1(predictions: np.ndarray, labels: np.ndarray) -> EvaluationResult:
    """Compute precision, recall and F1 between binary arrays of equal shape."""
    counts = confusion_counts(predictions, labels)
    return EvaluationResult(precision=counts.precision, recall=counts.recall, f1=counts.f1)
