"""Compiled inference runtime: tape-free fused forward plans for serving.

Training needs the reverse-mode autograd :class:`~repro.nn.Tensor`; serving
does not.  This package exports a trained :class:`repro.core.AeroDetector`
into *plans* — module weights frozen into read-only flat arrays, forward
logic replayed with raw ``np.ndarray`` kernels — so the scoring hot path
pays for arithmetic only: no ``Tensor`` allocation, no graph bookkeeping,
no per-window python loops.

* :mod:`~repro.runtime.ops` — numerics-exact ndarray kernels mirroring the
  ``repro.nn`` ops (the basis of the float64 bit-for-bit guarantee);
* :mod:`~repro.runtime.plans` — :class:`TemporalPlan`, :class:`NoisePlan`
  and :class:`CompiledModel`, the fused executable forms of the two AERO
  stages and the score head;
* :mod:`~repro.runtime.compiler` — :func:`compile_model` /
  :func:`compile_detector` weight export, and :class:`CompiledDetector`,
  the drop-in serving front-end (``score``/``detect``/``score_windows``
  plus the fused multi-star ``score_stack``).

Entry points::

    compiled = compile_detector(detector)            # bit-equal float64
    compiled32 = compile_detector(detector, dtype="float32")
    scores = compiled.score(test_series)             # == detector.score(...)

or, through the detector itself::

    detector.score(test_series, backend="compiled")
    stream = detector.stream(backend="compiled")     # tape-free streaming
"""

from .compiler import CompiledDetector, compile_detector, compile_model
from .incremental import IncrementalState, ScratchArena
from .plans import (
    CompiledForwardResult,
    CompiledModel,
    NoisePlan,
    TemporalPlan,
    TimeEmbeddingPlan,
)

__all__ = [
    "compile_detector",
    "compile_model",
    "CompiledDetector",
    "CompiledModel",
    "CompiledForwardResult",
    "IncrementalState",
    "ScratchArena",
    "TemporalPlan",
    "NoisePlan",
    "TimeEmbeddingPlan",
]
