"""Numerics-exact ndarray kernels for the compiled inference runtime.

Every function here reproduces, operation for operation, the arithmetic of
its :mod:`repro.nn` counterpart (``tensor.py`` / ``layers.py``): the same
expression trees, the same scalar constants, the same numpy ufuncs.  That
is what makes the compiled plans **bit-for-bit equal** to the autograd
forward pass in float64 — IEEE-754 arithmetic is deterministic, so an
identical sequence of operations produces identical bits.

Two kinds of speedups are applied, neither of which changes a single bit:

* **in-place completion** — once an intermediate array is freshly
  allocated, the remaining ufuncs of the expression write into it
  (``out=``) instead of allocating again; the values computed are the same.
* **degenerate-shape shortcuts** — a ``(…, 1) @ (1, d)`` embedding matmul
  is a sum over one product, so the broadcast multiply ``x * w[0]``
  produces identical bits without a GEMM dispatch.

Scalar constants are python floats, which numpy promotes as "weak"
scalars: float32 inputs therefore stay float32 end to end in the optional
single-precision mode (no silent upcast to float64).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear",
    "relu",
    "gelu",
    "sigmoid",
    "softmax",
    "layer_norm",
    "apply_activation",
]


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ W + b`` — mirrors :class:`repro.nn.Linear.forward`.

    When the contraction axis has length 1 (the univariate value
    embeddings), the matmul degenerates to one product per output element
    and is computed as a broadcast multiply — bit-identical, no GEMM.
    """
    if weight.shape[0] == 1 and x.shape[-1] == 1:
        out = x * weight[0]
    else:
        out = x @ weight
    if bias is not None:
        np.add(out, bias, out=out)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Matches ``Tensor.relu``: multiply by a 0/1 mask (not ``np.maximum``)."""
    mask = (x > 0).astype(x.dtype)
    np.multiply(x, mask, out=mask)
    return mask


def gelu(x: np.ndarray) -> np.ndarray:
    """Matches ``Tensor.gelu`` (tanh approximation)."""
    c = float(np.sqrt(2.0 / np.pi))
    inner = c * (x + 0.044715 * x ** 3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Matches ``Tensor.sigmoid`` including its overflow clip."""
    out = np.clip(x, -60.0, 60.0)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Matches ``Tensor.softmax``: max-shifted exponentials."""
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    np.divide(shifted, shifted.sum(axis=axis, keepdims=True), out=shifted)
    return shifted


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float) -> np.ndarray:
    """Matches :class:`repro.nn.LayerNorm.forward` over the last axis.

    The ``Tensor`` path computes the mean as ``sum * (1.0 / count)`` (not
    ``np.mean``) and the variance as the mean of ``centered * centered``;
    both are replicated here, with the ``x - mean`` intermediate computed
    once and reused (bit-identical — the autograd path evaluates the same
    subtraction twice).
    """
    inverse_count = 1.0 / x.shape[-1]
    mean = x.sum(axis=-1, keepdims=True)
    np.multiply(mean, inverse_count, out=mean)
    centered = x - mean
    var = (centered * centered).sum(axis=-1, keepdims=True)
    np.multiply(var, inverse_count, out=var)
    np.add(var, eps, out=var)
    np.sqrt(var, out=var)
    np.divide(centered, var, out=centered)
    np.multiply(centered, gamma, out=centered)
    np.add(centered, beta, out=centered)
    return centered


def apply_activation(x: np.ndarray, name: str) -> np.ndarray:
    """Dispatch matching the activation names used across :mod:`repro.nn`."""
    if name == "identity":
        return x
    if name == "relu":
        return relu(x)
    if name == "gelu":
        return gelu(x)
    if name == "tanh":
        return np.tanh(x)
    if name == "sigmoid":
        return sigmoid(x)
    raise ValueError(f"unsupported activation: {name!r}")
