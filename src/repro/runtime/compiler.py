"""Compiling trained detectors into tape-free inference plans.

``compile_model`` exports the weights of a trained :class:`repro.core.AeroModel`
into read-only flat arrays and assembles the fused forward plans of
:mod:`repro.runtime.plans`.  ``compile_detector`` additionally freezes
everything the serving path needs around the model — scaler statistics, the
training-tail context, and the POT threshold — into a :class:`CompiledDetector`
that can score raw series without touching the autograd stack at all.

The export is *read-only* in both directions: weights are copied (a later
``fit()`` or optimizer step cannot mutate a compiled plan) and the copies are
write-locked (a plan cannot corrupt the live model).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.detector import sliding_window_scores
from ..data.preprocessing import MinMaxScaler
from .plans import (
    AttentionPlan,
    CompiledForwardResult,
    CompiledModel,
    DecoderLayerPlan,
    EncoderLayerPlan,
    FeedForwardPlan,
    LayerNormPlan,
    NoisePlan,
    TemporalPlan,
    TimeEmbeddingPlan,
    freeze,
)

if TYPE_CHECKING:  # pragma: no cover - imports only for type checkers
    from ..core.detector import AeroDetector
    from ..core.model import AeroModel

__all__ = ["compile_model", "compile_detector", "CompiledDetector"]

_SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _resolve_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"compiled plans support float64 and float32, got {resolved.name!r}"
        )
    return resolved


# ----------------------------------------------------------------------
# module -> plan exporters
# ----------------------------------------------------------------------
def _export_linear(linear, dtype) -> tuple[np.ndarray, np.ndarray | None]:
    weight = freeze(linear.weight.data, dtype)
    bias = freeze(linear.bias.data, dtype) if linear.bias is not None else None
    return weight, bias


def _compile_attention(attention, dtype) -> AttentionPlan:
    wq, bq = _export_linear(attention.w_query, dtype)
    wk, bk = _export_linear(attention.w_key, dtype)
    wv, bv = _export_linear(attention.w_value, dtype)
    wo, bo = _export_linear(attention.w_out, dtype)
    return AttentionPlan(wq, bq, wk, bk, wv, bv, wo, bo, attention.num_heads)


def _compile_feed_forward(feed_forward, dtype) -> FeedForwardPlan:
    w1, b1 = _export_linear(feed_forward.linear1, dtype)
    w2, b2 = _export_linear(feed_forward.linear2, dtype)
    return FeedForwardPlan(w1, b1, w2, b2, feed_forward.activation)


def _compile_layer_norm(norm, dtype) -> LayerNormPlan:
    return LayerNormPlan(freeze(norm.gamma.data, dtype), freeze(norm.beta.data, dtype), norm.eps)


def _compile_encoder_layer(layer, dtype) -> EncoderLayerPlan:
    return EncoderLayerPlan(
        self_attention=_compile_attention(layer.self_attention, dtype),
        feed_forward=_compile_feed_forward(layer.feed_forward, dtype),
        norm1=_compile_layer_norm(layer.norm1, dtype),
        norm2=_compile_layer_norm(layer.norm2, dtype),
    )


def _compile_decoder_layer(layer, dtype) -> DecoderLayerPlan:
    return DecoderLayerPlan(
        self_attention=_compile_attention(layer.self_attention, dtype),
        cross_attention=_compile_attention(layer.cross_attention, dtype),
        feed_forward=_compile_feed_forward(layer.feed_forward, dtype),
        norm1=_compile_layer_norm(layer.norm1, dtype),
        norm2=_compile_layer_norm(layer.norm2, dtype),
        norm3=_compile_layer_norm(layer.norm3, dtype),
    )


def _compile_temporal(module, dtype) -> TemporalPlan:
    time_embedding = TimeEmbeddingPlan(
        frequencies=freeze(module.time_embedding.frequencies, dtype),
        alpha=freeze(module.time_embedding.alpha.data, dtype),
        dtype=dtype,
    )
    return TemporalPlan(
        time_embedding=time_embedding,
        encoder_embedding=_export_linear(module.encoder_embedding, dtype),
        decoder_embedding=_export_linear(module.decoder_embedding, dtype),
        encoder_layers=[_compile_encoder_layer(layer, dtype) for layer in module.encoder.layers],
        decoder_layers=[_compile_decoder_layer(layer, dtype) for layer in module.decoder.layers],
        output_ffn=_compile_feed_forward(module.output_ffn, dtype),
        output_projection=_export_linear(module.output_projection, dtype),
        conditioning=module.conditioning,
        multivariate_input=module.multivariate_input,
        use_short_window=module.use_short_window,
        dtype=dtype,
    )


def _compile_noise(module, dtype) -> NoisePlan:
    return NoisePlan(
        weight=freeze(module.gcn.weight.data, dtype),
        bias=freeze(module.gcn.bias.data, dtype),
        activation=module.gcn.activation,
        graph_mode=module.graph_mode,
        dynamic_decay=module.dynamic_decay,
        remove_self_loops=module.config.remove_self_loops,
        node_scales=module._node_scales,
        dtype=dtype,
    )


def compile_model(model: "AeroModel", dtype="float64") -> CompiledModel:
    """Freeze a trained :class:`AeroModel` into a :class:`CompiledModel`.

    The plan always executes eval-mode (inference) semantics — dropout is
    elided — matching what ``AeroModel.forward`` computes after training
    (the trainer leaves the model in ``eval()`` mode).
    """
    dtype = _resolve_dtype(dtype)
    temporal = _compile_temporal(model.temporal, dtype) if model.temporal is not None else None
    noise = _compile_noise(model.noise, dtype) if model.noise is not None else None
    return CompiledModel(
        temporal=temporal,
        noise=noise,
        use_short_window=model.use_short_window,
        num_variates=model.num_variates,
        dtype=dtype,
    )


# ----------------------------------------------------------------------
# detector-level compilation
# ----------------------------------------------------------------------
class CompiledDetector:
    """Serving front-end over a :class:`CompiledModel`.

    Bundles the compiled plans with the frozen scaler statistics,
    training-tail context and POT threshold of the source detector, and
    reimplements the scoring entry points of :class:`repro.core.AeroDetector`
    with identical batching — so ``score()``/``detect()`` are bit-for-bit
    equal to the autograd path in float64 mode.

    ``score_stack`` is the fused multi-star serving path: a ``(S, W, N)``
    stack of ring-buffer windows (one per shard) is scored with a single
    plan call, no per-shard staging.
    """

    def __init__(
        self,
        *,
        model: CompiledModel,
        config,
        scaler: MinMaxScaler,
        threshold: float,
        train_tail: np.ndarray | None,
        train_tail_times: np.ndarray | None,
    ):
        self.model = model
        self.config = config
        self.scaler = scaler
        self.threshold = float(threshold)
        self._train_tail = train_tail
        self._train_tail_times = train_tail_times

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.model.dtype)

    @property
    def num_variates(self) -> int:
        return self.model.num_variates

    def reset_dynamic_state(self) -> None:
        self.model.reset_dynamic_state()

    # ------------------------------------------------------------------
    def forward(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> CompiledForwardResult:
        return self.model.forward(long_windows, short_windows, long_times, short_times)

    def score_windows(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> np.ndarray:
        """Tape-free equivalent of :meth:`AeroDetector.score_windows`."""
        return self.model.forward(long_windows, short_windows, long_times, short_times).scores

    # ------------------------------------------------------------------
    # incremental serving
    # ------------------------------------------------------------------
    def new_incremental_state(self, num_stacks: int, layout: str = "stack"):
        """A fresh :class:`repro.runtime.IncrementalState` for this plan.

        The state starts *invalid* (it has no window history); seed it with
        :meth:`IncrementalState.rebuild` from the serving ring buffers, then
        advance it one tick at a time with :meth:`score_stack_step`.
        ``layout`` picks which full-forward entry point the state matches
        bit for bit: ``"stack"`` for :meth:`score_stack` (fleet serving),
        ``"windows"`` for :meth:`score_windows` (per-stream serving).
        """
        from .incremental import IncrementalState

        return IncrementalState(self.model, self.config, num_stacks, layout=layout)

    def score_stack_step(self, state, rows: np.ndarray, timestamp=None) -> np.ndarray:
        """Append one scaled exposure and score the fleet incrementally.

        ``rows`` is the ``(num_stacks, N)`` *scaled* exposure (exactly what
        the streaming fronts append to their ring buffers); ``timestamp``
        the shared exposure time (``None`` locks the state to the default
        index cadence).  Returns ``(num_stacks, N)`` scores — bit-for-bit
        equal (float64) to staging the updated windows through
        :meth:`score_stack` — or NaN while the state warms up.
        """
        state.append(rows, timestamp)
        if not state.warm:
            return np.full((state.num_stacks, state.num_variates), np.nan)  # repro: allow[hot-alloc] -- warm-up ticks only; the emitted result must outlive the tick
        return state.score()

    def score_step(self, state, row: np.ndarray, timestamp=None) -> np.ndarray:
        """Single-stack :meth:`score_stack_step`: ``(N,)`` row in, ``(N,)`` scores out."""
        rows = np.asarray(row, dtype=np.float64).reshape(1, -1)
        return self.score_stack_step(state, rows, timestamp)[0]

    def score_stack(self, stack: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        """Score a ``(S, W, N)`` stack of full windows in one fused call.

        Each of the ``S`` stack entries is one serving window in time-major
        layout — exactly what a ring buffer view yields — so a fleet of
        shards is scored without transposing or staging per shard.
        ``timestamps`` may be ``(W,)`` (shared exposure timeline) or
        ``(S, W)``.  Returns ``(S, N)`` scores.
        """
        stack = np.asarray(stack, dtype=self.model.dtype)
        if stack.ndim != 3:
            raise ValueError("stack must be 3-D (stacks, window, variates)")
        window = self.config.window
        short = self.config.short_window
        if stack.shape[1] != window:
            raise ValueError(f"stack windows must have length {window}, got {stack.shape[1]}")
        long_windows = stack.transpose(0, 2, 1)
        if timestamps is None:
            long_times = short_times = None
        else:
            times = np.asarray(timestamps, dtype=np.float64)
            if times.ndim == 1:
                times = np.broadcast_to(times, (stack.shape[0], window))
            long_times = times
            short_times = times[:, window - short:]
        return self.model.forward(
            long_windows,
            long_windows[:, :, window - short:],
            long_times,
            short_times,
        ).scores

    # ------------------------------------------------------------------
    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        """Anomaly scores for every point of ``series``.

        Runs the shared :func:`~repro.core.detector.sliding_window_scores`
        driver — the same context prepend, micro-batch grouping and
        early-point backfill as :meth:`AeroDetector.score` — over the
        compiled plans, so float64 output is bit-for-bit equal.
        """
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2:
            raise ValueError("series must be 2-D (time, variates)")
        scaled = self.scaler.transform(series)
        if self.model.graph_mode == "dynamic":
            self.model.reset_dynamic_state()
        return sliding_window_scores(
            lambda batch: self.model.forward(
                batch.long, batch.short, batch.long_times, batch.short_times
            ).scores,
            self.config,
            scaled,
            timestamps,
            self._train_tail,
            self._train_tail_times,
            score_dtype=self.model.dtype,
        )

    def detect(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        """Binary anomaly labels under the frozen POT threshold."""
        return (self.score(series, timestamps) >= self.threshold).astype(np.int64)


def compile_detector(detector: "AeroDetector", dtype="float64", verify: bool = False) -> CompiledDetector:
    """Export a fitted :class:`AeroDetector` into a :class:`CompiledDetector`.

    Captures the model weights, the fitted scaler statistics, the
    training-tail scoring context and the train-calibrated POT threshold.
    The detector must be fitted; the compiled artifact is fully decoupled
    from it afterwards (re-fitting the detector does not change the plan).

    ``verify=True`` runs :func:`repro.analysis.plancheck.verify_model` on
    the exported plan before returning — structural shape/dtype checks
    plus an instrumented incremental drive per layout, compared against
    the full forward — raising
    :class:`~repro.analysis.plancheck.PlanVerificationError` on any issue.
    Verification restores all observable serving state, so a verified
    detector scores exactly what an unverified one does.
    """
    model = detector._require_fitted()
    dtype = _resolve_dtype(dtype)
    scaler = MinMaxScaler(feature_range=detector.scaler.feature_range, eps=detector.scaler.eps)
    scaler.data_min_ = detector.scaler.data_min_.copy()
    scaler.data_max_ = detector.scaler.data_max_.copy()
    tail, tail_times = detector.window_context()
    compiled = CompiledDetector(
        model=compile_model(model, dtype=dtype),
        config=detector.config,
        scaler=scaler,
        threshold=detector.threshold(),
        train_tail=None if tail is None else np.array(tail, dtype=np.float64),
        train_tail_times=None if tail_times is None else np.array(tail_times, dtype=np.float64),
    )
    if verify:
        from ..analysis.plancheck import verify_detector

        verify_detector(compiled).raise_if_failed()
    return compiled
