"""Incremental per-tick execution for the compiled serving runtime.

A streaming tick scores one ``W``-length sliding window per star stack, and
consecutive windows share ``W - 1`` rows.  The full compiled forward
(:meth:`repro.runtime.plans.CompiledModel.forward`) recomputes everything
from scratch every tick; the :class:`IncrementalState` built here caches the
cross-tick invariants instead:

* **ring-layout value buffers** — every stack's scaled rows live in a
  mirrored ring (each row written twice, ``2W`` slots), so the current
  window is always one zero-copy contiguous view, never a re-stage;
* **per-row value embeddings** — in the univariate layout the encoder (and,
  under full conditioning, decoder) value projection of a row is a
  degenerate ``(…, 1) @ (1, d)`` map that never changes once the row
  arrives, so it is computed once per row into its own mirrored ring;
* **memoized time embeddings** — shared with the full path through
  :class:`~repro.runtime.plans.TimeEmbeddingPlan`; a steady cadence hits
  the memo every tick;
* **token-keyed decoder stages** — the masked-mode decoder input is a pure
  time embedding, so its self stage, variate expansion and cross-attention
  query are all cached against the embedding's memo token;
* **frozen GCN graph inputs** — the ``static`` graph's degree-normalized
  adjacency is a constant of the fleet geometry and is built once per state
  (re)build.

Everything that genuinely depends on the newest row — attention over the
window, softmax normalizations, the decoder cross stages, the GCN
propagation — re-runs each tick, but into named buffers of a
:class:`ScratchArena`, so the steady-state tick allocates nothing beyond
the emitted score vector.  The workspace kernels below replay the *exact*
ufunc/GEMM sequences of :mod:`repro.runtime.ops`, so float64 incremental
scores are bit-for-bit equal to the full compiled forward.

Invalidation: the state stays valid as long as it is fed the same rows, in
the same order, as the serving ring buffers (the streaming fronts append to
both in lockstep — imputed dropout rows included).  Whenever that lockstep
breaks — a model hot-swap rescales the buffered history, a front detects a
desynchronisation, or the state is brand new — the front rebuilds the state
from the ring buffers with :meth:`IncrementalState.rebuild` and scoring
continues on the very same tick.  Window geometries the incremental kernels
do not cover (``use_short_window=False``) fall back to the full compiled
forward transparently, counted in :attr:`IncrementalState.fallbacks`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from . import ops

if TYPE_CHECKING:  # pragma: no cover - imports only for type checkers
    from .plans import (
        AttentionPlan,
        CompiledModel,
        DecoderLayerPlan,
        EncoderLayerPlan,
        FeedForwardPlan,
        LayerNormPlan,
        NoisePlan,
        TemporalPlan,
    )

__all__ = ["IncrementalState", "ScratchArena", "temporal_step", "noise_step", "model_step"]

#: Same literal as ``repro.runtime.plans._GRAPH_EPS`` (kept in sync so the
#: cached static adjacency reproduces the full path's normalization bits).
_GRAPH_EPS = 1e-8

_GELU_C = float(np.sqrt(2.0 / np.pi))


class ScratchArena:
    """Named preallocated scratch buffers for one incremental state.

    ``get(name, shape, dtype)`` returns the same buffer on every tick, so a
    steady-state forward allocates nothing: each kernel writes its result
    into its named slot with ``out=``.  Shapes are fixed by the serving
    geometry; a mismatched request (only possible across a geometry change,
    which rebuilds the state anyway) transparently reallocates the slot.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple, dtype) -> np.ndarray:
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape != tuple(shape) or buffer.dtype != np.dtype(dtype):
            buffer = np.empty(shape, dtype=dtype)  # repro: allow[hot-alloc] -- first-touch/geometry-change only; steady-state ticks hit the cached slot
            self._buffers[name] = buffer
        return buffer

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())


# ----------------------------------------------------------------------
# workspace kernels — ``ops.py`` sequences replayed into arena buffers.
# Every ufunc below appears in the same order, with the same operand
# order, as its ``ops``/``plans`` counterpart; only the destination of
# each freshly-allocated intermediate changes (a named arena buffer
# instead of a new allocation), which cannot change a bit.
# ----------------------------------------------------------------------
def _ws_linear(arena: ScratchArena, name: str, x, weight, bias):
    out = arena.get(name, x.shape[:-1] + (weight.shape[-1],), weight.dtype)
    if weight.shape[0] == 1 and x.shape[-1] == 1:
        np.multiply(x, weight[0], out=out)
    else:
        np.matmul(x, weight, out=out)
    if bias is not None:
        np.add(out, bias, out=out)
    return out


def _ws_relu(arena: ScratchArena, name: str, x):
    mask = arena.get(name + ".mask", x.shape, np.bool_)
    np.greater(x, 0, out=mask)
    out = arena.get(name + ".out", x.shape, x.dtype)
    np.multiply(x, mask, out=out)
    return out


def _ws_gelu(arena: ScratchArena, name: str, x):
    inner = arena.get(name + ".inner", x.shape, x.dtype)
    out = arena.get(name + ".out", x.shape, x.dtype)
    np.power(x, 3, out=inner)
    np.multiply(inner, 0.044715, out=inner)
    np.add(x, inner, out=inner)
    np.multiply(inner, _GELU_C, out=inner)
    np.tanh(inner, out=inner)
    np.add(inner, 1.0, out=inner)
    np.multiply(x, 0.5, out=out)
    np.multiply(out, inner, out=out)
    return out


def _ws_sigmoid(arena: ScratchArena, name: str, x):
    out = arena.get(name + ".out", x.shape, x.dtype)
    np.clip(x, -60.0, 60.0, out=out)
    return _sigmoid_inplace(out)


def _sigmoid_inplace(out):
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)
    return out


def _ws_activation(arena: ScratchArena, name: str, x, kind: str):
    if kind == "identity":
        return x
    if kind == "relu":
        return _ws_relu(arena, name, x)
    if kind == "gelu":
        return _ws_gelu(arena, name, x)
    if kind == "tanh":
        out = arena.get(name + ".out", x.shape, x.dtype)
        np.tanh(x, out=out)
        return out
    if kind == "sigmoid":
        return _ws_sigmoid(arena, name, x)
    raise ValueError(f"unsupported activation: {kind!r}")


def _ws_softmax_inplace(arena: ScratchArena, name: str, x):
    reduced = x.shape[:-1] + (1,)
    peak = arena.get(name + ".max", reduced, x.dtype)
    np.max(x, axis=-1, keepdims=True, out=peak)
    np.subtract(x, peak, out=x)
    np.exp(x, out=x)
    total = arena.get(name + ".sum", reduced, x.dtype)
    np.sum(x, axis=-1, keepdims=True, out=total)
    np.divide(x, total, out=x)
    return x


def _ws_layer_norm(arena: ScratchArena, name: str, norm: "LayerNormPlan", x):
    reduced = x.shape[:-1] + (1,)
    inverse_count = 1.0 / x.shape[-1]
    mean = arena.get(name + ".mean", reduced, x.dtype)
    np.sum(x, axis=-1, keepdims=True, out=mean)
    np.multiply(mean, inverse_count, out=mean)
    centered = arena.get(name + ".cen", x.shape, x.dtype)
    np.subtract(x, mean, out=centered)
    squared = arena.get(name + ".sq", x.shape, x.dtype)
    np.multiply(centered, centered, out=squared)
    var = arena.get(name + ".var", reduced, x.dtype)
    np.sum(squared, axis=-1, keepdims=True, out=var)
    np.multiply(var, inverse_count, out=var)
    np.add(var, norm.eps, out=var)
    np.sqrt(var, out=var)
    np.divide(centered, var, out=centered)
    np.multiply(centered, norm.gamma, out=centered)
    np.add(centered, norm.beta, out=centered)
    return centered


def _ws_ffn(arena: ScratchArena, name: str, ffn: "FeedForwardPlan", x):
    hidden = _ws_linear(arena, name + ".h", x, ffn.w1, ffn.b1)
    hidden = _ws_activation(arena, name + ".act", hidden, ffn.activation)
    return _ws_linear(arena, name + ".o", hidden, ffn.w2, ffn.b2)


def _ws_attend(arena: ScratchArena, name: str, attention: "AttentionPlan", q, k, v):
    batch, heads, length, d_head = q.shape
    keys = k.shape[2]
    scores = arena.get(name + ".scores", (batch, heads, length, keys), attention.wq.dtype)
    np.matmul(q, k.swapaxes(-1, -2), out=scores)
    np.multiply(scores, attention.scale, out=scores)
    _ws_softmax_inplace(arena, name + ".sm", scores)
    attended = arena.get(name + ".att", (batch, heads, length, d_head), attention.wq.dtype)
    np.matmul(scores, v, out=attended)
    merged = arena.get(name + ".merge", (batch, length, heads * d_head), attention.wq.dtype)
    np.copyto(merged.reshape(batch, length, heads, d_head), attended.transpose(0, 2, 1, 3))
    return _ws_linear(arena, name + ".out", merged, attention.wo, attention.bo)


def _split_heads(attention: "AttentionPlan", x):
    batch, length, _ = x.shape
    return x.reshape(batch, length, attention.num_heads, attention.d_head).transpose(0, 2, 1, 3)


def _ws_self_attention(arena: ScratchArena, name: str, attention: "AttentionPlan", x):
    batch, length, d_model = x.shape
    qkv = arena.get(name + ".qkv", (3, batch, length, d_model), attention.wq.dtype)
    np.matmul(x[None], attention.wqkv[:, None], out=qkv)
    np.add(qkv, attention.bqkv, out=qkv)
    return _ws_attend(
        arena, name, attention,
        _split_heads(attention, qkv[0]),
        _split_heads(attention, qkv[1]),
        _split_heads(attention, qkv[2]),
    )


def _ws_cross_attention(arena: ScratchArena, name: str, attention: "AttentionPlan", x, memory, cached_q=None):
    batch, keys, d_model = memory.shape
    if cached_q is None:
        q = _ws_linear(arena, name + ".q", x, attention.wq, attention.bq)
    else:
        q = cached_q
    kv = arena.get(name + ".kv", (2, batch, keys, d_model), attention.wq.dtype)
    np.matmul(memory[None], attention.wkv[:, None], out=kv)
    np.add(kv, attention.bkv, out=kv)
    return _ws_attend(
        arena, name, attention,
        _split_heads(attention, q),
        _split_heads(attention, kv[0]),
        _split_heads(attention, kv[1]),
    )


def _ws_encoder_layer(arena: ScratchArena, name: str, layer: "EncoderLayerPlan", x):
    attended = _ws_self_attention(arena, name + ".sa", layer.self_attention, x)
    np.add(x, attended, out=attended)
    x = _ws_layer_norm(arena, name + ".n1", layer.norm1, attended)
    transformed = _ws_ffn(arena, name + ".ff", layer.feed_forward, x)
    np.add(x, transformed, out=transformed)
    return _ws_layer_norm(arena, name + ".n2", layer.norm2, transformed)


def _ws_self_stage(arena: ScratchArena, name: str, layer: "DecoderLayerPlan", x):
    attended = _ws_self_attention(arena, name + ".sa", layer.self_attention, x)
    np.add(x, attended, out=attended)
    return _ws_layer_norm(arena, name + ".n1", layer.norm1, attended)


def _ws_cross_stage(arena: ScratchArena, name: str, layer: "DecoderLayerPlan", x, memory, cached_q=None):
    cross = _ws_cross_attention(arena, name + ".ca", layer.cross_attention, x, memory, cached_q)
    np.add(x, cross, out=cross)
    x = _ws_layer_norm(arena, name + ".n2", layer.norm2, cross)
    transformed = _ws_ffn(arena, name + ".ff", layer.feed_forward, x)
    np.add(x, transformed, out=transformed)
    return _ws_layer_norm(arena, name + ".n3", layer.norm3, transformed)


def _ws_decoder_layer(arena: ScratchArena, name: str, layer: "DecoderLayerPlan", x, memory):
    return _ws_cross_stage(arena, name, layer, _ws_self_stage(arena, name, layer, x), memory)


# ----------------------------------------------------------------------
# incremental state
# ----------------------------------------------------------------------
class IncrementalState:
    """Per-fleet cross-tick serving state for one :class:`CompiledModel`.

    Holds the mirrored ring buffers, per-row embedding rings, token-keyed
    decoder caches, frozen graph inputs and the scratch arena for
    ``num_stacks`` star stacks of the model's geometry.  Built through
    :meth:`repro.runtime.CompiledDetector.new_incremental_state`.

    Lifecycle: a fresh state is *invalid* (it has no history); a front
    seeds it with :meth:`rebuild` from its ring-buffer windows, after which
    :meth:`append` + :meth:`score` (or the combined
    ``CompiledDetector.score_stack_step``) advance it one tick at a time.
    :meth:`invalidate` (or any event that breaks ring/buffer lockstep, e.g.
    a model hot-swap) forces the next tick through :meth:`rebuild` again.
    """

    #: Bound on the token-keyed expanded-compact / cross-query caches.
    MAX_STAGE_CACHE = 8

    def __init__(self, model: "CompiledModel", config, num_stacks: int, layout: str = "stack"):
        if num_stacks <= 0:
            raise ValueError("num_stacks must be positive")
        if layout not in ("stack", "windows"):
            raise ValueError(f"layout must be 'stack' or 'windows', got {layout!r}")
        self.model = model
        self.config = config
        #: Which full-forward entry point this state must match bit for bit.
        #: ``"stack"`` replicates ``score_stack``'s memory layouts (the fleet
        #: path: transposed multivariate error strides); ``"windows"``
        #: replicates ``score_windows``'s (the per-stream path: C-contiguous
        #: error strides).  The GCN kernels are layout-sensitive at the ulp
        #: level, so the two entry points are 1-ulp different worlds and the
        #: state has to pick the one its serving front compares against.
        self.layout = layout
        self.num_stacks = int(num_stacks)
        self.num_variates = model.num_variates
        self.window = int(config.window)
        self.short = int(config.short_window)
        self.dtype = np.dtype(model.dtype)
        self.arena = ScratchArena()

        temporal = model.temporal
        #: The incremental kernels cover every ablation with a short-window
        #: target; ``use_short_window=False`` re-reconstructs the whole long
        #: window each tick, which shares no cacheable prefix work worth
        #: special-casing — those models serve through the full-forward
        #: fallback (still from the rings, still bit-equal).
        self._supported = bool(model.use_short_window)
        self._uni = temporal is not None and not temporal.multivariate_input

        mirror = 2 * self.window
        if self._uni:
            folded = self.num_stacks * self.num_variates
            self._values = np.empty((folded, mirror), dtype=self.dtype)
            d_enc = temporal.encoder_embedding_w.shape[1]
            self._enc_embed = np.empty((folded, mirror, d_enc), dtype=self.dtype)
            if temporal.conditioning == "full":
                d_dec = temporal.decoder_embedding_w.shape[1]
                self._dec_embed = np.empty((folded, mirror, d_dec), dtype=self.dtype)
            else:
                self._dec_embed = None
        else:
            self._values = np.empty((self.num_stacks, mirror, self.num_variates), dtype=self.dtype)
            self._enc_embed = None
            self._dec_embed = None
        noise = model.noise
        #: Scaled-features mirror ring for the static-graph GCN: with no
        #: temporal stage the errors ARE the stored values, so the
        #: propagation input for the W-1 shared timesteps is constant across
        #: ticks (per-variate scaling, no window-slot dependence) and is
        #: maintained one row per append instead of re-scaling the whole
        #: window every tick.  Row-wise scaling is elementwise, hence
        #: bit-identical to the full-window multiply.  Temporal models'
        #: errors change every tick (reconstruction re-phases), so they keep
        #: the per-tick multiply.
        if (
            temporal is None
            and noise is not None
            and noise.graph_mode == "static"
            and noise.scales is not None
            and not self._uni
        ):
            self._features = np.empty_like(self._values)
        else:
            self._features = None
        self._times = np.empty(mirror, dtype=np.float64)
        self.times_mode: str | None = None  # "real" | "default", locked on first use

        # Cross-tick caches -------------------------------------------------
        self._expand_cache: dict[int, np.ndarray] = {}
        self._crossq_cache: dict[int, np.ndarray] = {}
        self._static_norm: np.ndarray | None = None
        self._static_last: np.ndarray | None = None

        # Lifecycle + counters ---------------------------------------------
        self.pos = 0
        self.count = 0
        self.valid = False
        self.invalid_reason = "fresh state (no history yet)"
        self.ticks = 0
        self.incremental_ticks = 0
        self.rebuilds = 0
        self.fallbacks = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @property
    def supported(self) -> bool:
        """Whether ticks run the incremental kernels (vs the full fallback)."""
        return self._supported

    @property
    def warm(self) -> bool:
        """Whether the rings hold a full window."""
        return self.count >= self.window

    @property
    def window_start(self) -> int:
        """First slot of the current window in the mirrored rings."""
        return (self.pos - 1) % self.window + 1

    # ------------------------------------------------------------------
    def invalidate(self, reason: str = "invalidated") -> None:
        """Mark the state stale; the next tick must :meth:`rebuild` first."""
        self.valid = False
        self.invalid_reason = reason
        self.invalidations += 1

    def _lock_times_mode(self, mode: str) -> None:
        if self.times_mode is None:
            self.times_mode = mode
        elif self.times_mode != mode:
            raise ValueError(
                "cannot mix real and index timestamps in one incremental state "
                f"(state is {self.times_mode!r}); rebuild() to switch modes"
            )

    def append(self, rows: np.ndarray, timestamp: float | None = None) -> None:
        """Append one scaled exposure row per stack (``(num_stacks, N)``)."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.shape != (self.num_stacks, self.num_variates):
            raise ValueError(
                f"rows must have shape ({self.num_stacks}, {self.num_variates}), got {rows.shape}"
            )
        self._lock_times_mode("default" if timestamp is None else "real")
        slot = self.pos % self.window
        mirror = slot + self.window
        if self._uni:
            self._values[:, slot] = rows.reshape(-1)
        else:
            self._values[:, slot] = rows
        self._values[:, mirror] = self._values[:, slot]
        if self._features is not None:
            np.multiply(
                self._values[:, slot], self.model.noise.scales, out=self._features[:, slot]
            )
            self._features[:, mirror] = self._features[:, slot]
        if timestamp is not None:
            self._times[slot] = self._times[mirror] = float(timestamp)
        if self._enc_embed is not None:
            self._embed_row(
                self._enc_embed, slot,
                self.model.temporal.encoder_embedding_w,
                self.model.temporal.encoder_embedding_b,
            )
        if self._dec_embed is not None:
            self._embed_row(
                self._dec_embed, slot,
                self.model.temporal.decoder_embedding_w,
                self.model.temporal.decoder_embedding_b,
            )
        self.pos += 1
        self.count = min(self.count + 1, self.window)

    def _embed_row(self, ring: np.ndarray, slot: int, weight, bias) -> None:
        # Degenerate ``(…, 1) @ (1, d)`` value embedding of one row — the
        # same broadcast multiply ``ops.linear`` dispatches for the full
        # univariate fold, restricted to the newest row.
        row = ring[:, slot]
        np.multiply(self._values[:, slot, None], weight[0], out=row)
        if bias is not None:
            np.add(row, bias, out=row)
        ring[:, slot + self.window] = row

    def rebuild(self, stack: np.ndarray, times: np.ndarray | None = None) -> None:
        """Re-seed every ring from ``(num_stacks, W, N)`` serving windows.

        ``times`` is the shared ``(W,)`` exposure timeline (``None`` locks
        the state to the default index cadence).  Rebuilding resets the
        validity flag and the timestamp mode; cross-tick caches carry over
        (they key on content, not position).
        """
        stack = np.asarray(stack, dtype=np.float64)
        expected = (self.num_stacks, self.window, self.num_variates)
        if stack.shape != expected:
            raise ValueError(f"stack must have shape {expected}, got {stack.shape}")
        window = self.window
        if self._uni:
            self._values[:, :window] = stack.transpose(0, 2, 1).reshape(-1, window)
        else:
            self._values[:, :window] = stack
        self._values[:, window:] = self._values[:, :window]
        if times is None:
            self.times_mode = "default"
        else:
            times = np.asarray(times, dtype=np.float64)
            if times.shape != (window,):
                raise ValueError(f"times must have shape ({window},), got {times.shape}")
            self._times[:window] = times
            self._times[window:] = times
            self.times_mode = "real"
        if self._features is not None:
            np.multiply(self._values, self.model.noise.scales, out=self._features)
        if self._enc_embed is not None:
            self._rebuild_embed(
                self._enc_embed,
                self.model.temporal.encoder_embedding_w,
                self.model.temporal.encoder_embedding_b,
            )
        if self._dec_embed is not None:
            self._rebuild_embed(
                self._dec_embed,
                self.model.temporal.decoder_embedding_w,
                self.model.temporal.decoder_embedding_b,
            )
        self.pos = window
        self.count = window
        self.valid = True
        self.invalid_reason = ""
        self.rebuilds += 1

    def _rebuild_embed(self, ring: np.ndarray, weight, bias) -> None:
        window = self.window
        np.multiply(self._values[:, :window, None], weight[0], out=ring[:, :window])
        if bias is not None:
            np.add(ring[:, :window], bias, out=ring[:, :window])
        ring[:, window:] = ring[:, :window]

    # ------------------------------------------------------------------
    # zero-copy views over the current window
    # ------------------------------------------------------------------
    def values_window(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` of the window in fold layout (multivariate)."""
        j = self.window_start
        return self._values[:, j + start : j + stop]

    def target_view(self) -> np.ndarray:
        """The ``(num_stacks, N, omega)`` short-window reconstruction target."""
        j = self.window_start
        begin = j + self.window - self.short
        end = j + self.window
        if self._uni:
            return self._values[:, begin:end].reshape(
                self.num_stacks, self.num_variates, self.short
            )
        return self._values[:, begin:end].transpose(0, 2, 1)

    def features_view(self) -> np.ndarray:
        """Static-GCN scaled features over the target window (zero-copy)."""
        j = self.window_start
        begin = j + self.window - self.short
        return self._features[:, begin : j + self.window].transpose(0, 2, 1)

    # ------------------------------------------------------------------
    # cross-tick caches
    # ------------------------------------------------------------------
    def _stage_cache_put(self, cache: dict, token: int, value: np.ndarray) -> np.ndarray:
        value.flags.writeable = False
        if len(cache) >= self.MAX_STAGE_CACHE:
            del cache[next(iter(cache))]
        cache[token] = value
        return value

    def expanded_compact(self, compact: np.ndarray, token: int | None) -> np.ndarray:
        """``np.repeat`` of the memoized decoder self stage across variates."""
        if token is None:
            return np.repeat(compact, self.num_variates, axis=0)
        cached = self._expand_cache.get(token)
        if cached is None:
            cached = self._stage_cache_put(
                self._expand_cache, token, np.repeat(compact, self.num_variates, axis=0)
            )
        return cached

    def cross_query(self, attention: "AttentionPlan", x: np.ndarray, token: int | None):
        """The first decoder layer's cross-attention query for input ``x``.

        The masked-mode decoder input is a function of the time embedding
        alone, so its Q projection is cached against the embedding token;
        ``None`` (uncached embedding) computes the query in the workspace.
        """
        if token is None:
            return None
        cached = self._crossq_cache.get(token)
        if cached is None:
            cached = self._stage_cache_put(
                self._crossq_cache, token, ops.linear(x, attention.wq, attention.bq)
            )
        return cached

    def static_adjacency(self, plan: "NoisePlan") -> np.ndarray:
        """The degree-normalized all-ones adjacency of the static graph.

        A constant of the fleet geometry, built once with exactly the
        normalization sequence of :meth:`NoisePlan.forward` and frozen.
        """
        if self._static_norm is None:
            num_variates = self.num_variates
            normalized = np.ones(
                (self.num_stacks, num_variates, num_variates), dtype=self.dtype
            )
            if plan.remove_self_loops:
                diagonal = np.arange(num_variates)
                normalized[:, diagonal, diagonal] = 0.0
            degree = np.abs(normalized).sum(axis=2)
            inverse_degree = np.where(degree > _GRAPH_EPS, 1.0 / (degree + _GRAPH_EPS), 0.0)
            np.multiply(inverse_degree[:, :, None], normalized, out=normalized)
            normalized.flags.writeable = False
            self._static_norm = normalized
        return self._static_norm

    def static_last_adjacency(self) -> np.ndarray:
        """Frozen mirror of the full path's per-tick ``np.ones`` diagnostic."""
        if self._static_last is None:
            last = np.ones((self.num_variates, self.num_variates), dtype=self.dtype)
            last.flags.writeable = False
            self._static_last = last
        return self._static_last

    # ------------------------------------------------------------------
    def score(self) -> np.ndarray:
        """Score the current window; ``(num_stacks, N)``, freshly allocated.

        Raises when the state is invalid (needs :meth:`rebuild`) or not yet
        warm — the streaming fronts guard both before calling.
        """
        if not self.valid:
            raise RuntimeError(
                f"incremental state must be rebuilt before scoring: {self.invalid_reason}"
            )
        if not self.warm:
            raise RuntimeError("incremental state window is not full yet")
        self.ticks += 1
        if self._supported:
            self.incremental_ticks += 1
            return model_step(self.model, self)
        self.fallbacks += 1
        return self._score_full()

    def _score_full(self) -> np.ndarray:
        """Transparent full-forward fallback, staged from the rings.

        Replays exactly what ``CompiledDetector.score_stack`` runs on the
        same window, so fallback ticks keep the bit-for-bit guarantee.
        """
        j = self.window_start
        window = self.window
        stack = self.arena.get(
            "fallback.stack", (self.num_stacks, window, self.num_variates), self.dtype
        )
        if self._uni:
            np.copyto(
                stack,
                self._values[:, j : j + window]
                .reshape(self.num_stacks, self.num_variates, window)
                .transpose(0, 2, 1),
            )
        else:
            np.copyto(stack, self._values[:, j : j + window])
        long_windows = stack.transpose(0, 2, 1)
        short_windows = long_windows[:, :, window - self.short :]
        if self.times_mode == "real":
            times = np.broadcast_to(self._times[j : j + window], (self.num_stacks, window))
            long_times = times
            short_times = times[:, window - self.short :]
        else:
            long_times = short_times = None
        return self.model.forward(long_windows, short_windows, long_times, short_times).scores


# ----------------------------------------------------------------------
# per-tick module steps
# ----------------------------------------------------------------------
def temporal_step(plan: "TemporalPlan", state: IncrementalState) -> np.ndarray:
    """One-tick temporal reconstruction over ``state``'s current window.

    Mirrors :meth:`TemporalPlan.forward` stage for stage — same kernels,
    same operand order — reading the window from the state rings and the
    per-row value embeddings from their caches.  Returns the
    ``(num_stacks, N, omega)`` reconstruction (a workspace view).
    """
    arena = state.arena
    stacks = state.num_stacks
    variates = state.num_variates
    window = state.window
    omega = state.short
    context = window - omega
    j = state.window_start
    masked = plan.conditioning == "masked"

    if state.times_mode == "real":
        long_times = arena.get("times.long", (stacks, window), np.float64)
        long_times[:] = state._times[j : j + window][None, :]
    else:
        long_times = plan._default_long_times(stacks, window)
    short_times = long_times[:, context:]

    # -- encoder input ---------------------------------------------------
    length = context if masked else window
    encoder_time = plan.time_embedding(long_times[:, :context] if masked else long_times)
    if plan.multivariate_input:
        encoder_input = _ws_linear(
            arena, "enc.in",
            state.values_window(0, length),
            plan.encoder_embedding_w, plan.encoder_embedding_b,
        )
        np.add(encoder_input, encoder_time, out=encoder_input)
    else:
        embedded = state._enc_embed[:, j : j + length]
        d_model = embedded.shape[2]
        encoder_input = arena.get("enc.in", (stacks * variates, length, d_model), plan.dtype)
        np.add(
            embedded.reshape(stacks, variates, length, d_model),
            encoder_time[:, None],
            out=encoder_input.reshape(stacks, variates, length, d_model),
        )

    memory = encoder_input
    for index, layer in enumerate(plan.encoder_layers):
        memory = _ws_encoder_layer(arena, f"enc{index}", layer, memory)

    # -- decoder ---------------------------------------------------------
    if masked:
        decoder_time, decoder_token = plan.time_embedding.embed(
            short_times, position_offset=context
        )
        if plan.decoder_layers:
            compact = plan._decoder_self_stage(decoder_time, decoder_token)
            if plan.multivariate_input:
                staged = compact
            else:
                staged = state.expanded_compact(compact, decoder_token)
            query = state.cross_query(
                plan.decoder_layers[0].cross_attention, staged, decoder_token
            )
            decoded = _ws_cross_stage(
                arena, "dec0", plan.decoder_layers[0], staged, memory, cached_q=query
            )
            for index, layer in enumerate(plan.decoder_layers[1:], start=1):
                decoded = _ws_decoder_layer(arena, f"dec{index}", layer, decoded, memory)
        else:
            decoded = plan._expand_time(decoder_time, variates)
    else:
        decoder_time = plan.time_embedding(short_times, position_offset=context)
        if plan.multivariate_input:
            decoded = _ws_linear(
                arena, "dec.in",
                state.values_window(context, window),
                plan.decoder_embedding_w, plan.decoder_embedding_b,
            )
            np.add(decoded, decoder_time, out=decoded)
        else:
            embedded = state._dec_embed[:, j + context : j + window]
            d_model = embedded.shape[2]
            decoded = arena.get("dec.in", (stacks * variates, omega, d_model), plan.dtype)
            np.add(
                embedded.reshape(stacks, variates, omega, d_model),
                decoder_time[:, None],
                out=decoded.reshape(stacks, variates, omega, d_model),
            )
        for index, layer in enumerate(plan.decoder_layers):
            decoded = _ws_decoder_layer(arena, f"dec{index}", layer, decoded, memory)

    # -- reconstruction head ---------------------------------------------
    hidden = _ws_ffn(arena, "head.ffn", plan.output_ffn, decoded)
    projected = _ws_linear(
        arena, "head.proj", hidden, plan.output_projection_w, plan.output_projection_b
    )
    np.clip(projected, -60.0, 60.0, out=projected)
    _sigmoid_inplace(projected)
    if plan.multivariate_input:
        return projected.transpose(0, 2, 1)
    return projected.reshape(stacks, variates, omega)


def _ws_like_layout(arena: ScratchArena, name: str, reference: np.ndarray) -> np.ndarray:
    """A workspace buffer with ``reference``'s shape *and* memory layout.

    The GCN's einsum/GEMM kernels are layout-sensitive at the ulp level
    (BLAS blocks strided and contiguous operands differently), so buffers
    feeding them must replicate the stride pattern the full forward's fresh
    allocations carry — C-contiguous in the univariate fold layout,
    ``(S, omega, N)``-transposed in the multivariate one.
    """
    if reference.flags.c_contiguous:
        return arena.get(name, reference.shape, reference.dtype)
    stacks, variates, omega = reference.shape
    return arena.get(name, (stacks, omega, variates), reference.dtype).transpose(0, 2, 1)


def noise_step(plan: "NoisePlan", state: IncrementalState, errors, target) -> np.ndarray:
    """One-tick GCN propagation; returns the newest timestep's ``(S, N)`` column.

    ``static`` mode reuses the state's frozen degree-normalized adjacency;
    ``window``/``dynamic`` adjacencies depend on this tick's errors, so the
    full :meth:`NoisePlan.forward` runs verbatim (its transient adjacency
    allocations free every tick — no steady-state growth).

    Only the newest column of the reconstruction reaches the Eq. 17 score,
    so the static path runs both GEMMs in full (single-column GEMMs are
    *not* bit-stable against the full product's column) but confines the
    elementwise bias/activation/rescale tail to that one column — per-entry
    ufuncs are bit-identical whatever their batch shape.
    """
    if plan.graph_mode != "static":
        return plan.forward(errors, target)[:, :, -1]
    arena = state.arena
    normalized = state.static_adjacency(plan)
    plan.last_adjacency = state.static_last_adjacency()
    if plan.scales is None:
        features = errors
    elif state._features is not None:
        features = state.features_view()
    else:
        features = _ws_like_layout(arena, "gcn.features", errors)
        np.multiply(errors, plan.scales[None, :, None], out=features)
    propagated = arena.get("gcn.propagated", errors.shape, errors.dtype)
    np.matmul(normalized, features, out=propagated)
    out = arena.get("gcn.out", errors.shape[:2] + (plan.weight.shape[1],), errors.dtype)
    np.matmul(propagated, plan.weight, out=out)
    last = arena.get("gcn.last", errors.shape[:2], errors.dtype)
    np.add(out[:, :, -1], plan.bias[-1], out=last)
    last = _ws_activation(arena, "gcn.act", last, plan.activation)
    if plan.inverse_scales is not None:
        np.multiply(last, plan.inverse_scales[None, :, -1], out=last)
    return last


def model_step(model: "CompiledModel", state: IncrementalState) -> np.ndarray:
    """One-tick score head over the incremental module steps.

    Mirrors :meth:`CompiledModel.forward`'s two-stage composition and
    Eq. 17 score; only the emitted ``(num_stacks, N)`` score vector is a
    fresh allocation (results outlive the tick), everything else lives in
    the arena.
    """
    arena = state.arena
    target = state.target_view()
    # Without a temporal stage the errors are bitwise the target
    # (``x - 0.0 == x``), and the static-graph GEMMs are stride-insensitive,
    # so the ring view serves directly.  Everything else stages errors in a
    # workspace: the adjacency einsum/norm kernels are layout-sensitive at
    # the ulp level, so the buffer replicates the layout the serving front
    # compares against — ``score_stack``'s ``target - reconstruction``
    # inherits its operands' transposed layout in the multivariate fold,
    # while ``score_windows``'s C-contiguous window batch yields
    # C-contiguous errors (see ``_ws_like_layout``).
    needs_workspace = model.temporal is not None or (
        model.noise is not None and model.noise.graph_mode != "static"
    )
    if needs_workspace:
        if state._uni or state.layout == "windows":
            errors = arena.get("model.errors", target.shape, model.dtype)
        else:
            stacks, variates, omega = target.shape
            errors = arena.get(
                "model.errors", (stacks, omega, variates), model.dtype
            ).transpose(0, 2, 1)
        if model.temporal is not None:
            reconstruction = temporal_step(model.temporal, state)
            np.subtract(target, reconstruction, out=errors)
        else:
            np.copyto(errors, target)
    else:
        errors = target
    if model.noise is not None:
        noise_last = noise_step(model.noise, state, errors, target)
        residual_last = arena.get("model.residual", target.shape[:2], model.dtype)
        np.subtract(errors[:, :, -1], noise_last, out=residual_last)
        return np.abs(residual_last)  # repro: allow[hot-ufunc-out] -- the one allowed allocation per tick: the emitted score vector outlives the arena
    # Ablated noise module reconstructs zeros: the residual IS the errors.
    return np.abs(errors[:, :, -1])  # repro: allow[hot-ufunc-out] -- emitted score vector, same as above
