"""Tape-free fused forward plans for serving-speed scoring.

A *plan* is the compiled form of one trained module: weights frozen into
read-only flat arrays, forward logic rewritten as pure ``np.ndarray``
kernels (:mod:`repro.runtime.ops`) with no :class:`~repro.nn.Tensor`
allocation and no autograd bookkeeping.  Plans are built by
:mod:`repro.runtime.compiler` and are the execution layer behind
``AeroDetector.score(backend="compiled")`` and the streaming/fleet serving
paths.

Guarantees
----------
* **float64 mode** — bit-for-bit equal to the autograd forward pass.  Every
  kernel replays the exact operation sequence of the ``Tensor`` path (see
  ``ops.py``), and every fusion below only rearranges *dispatch*, never
  arithmetic:

  - the noise GCN's per-window python loop becomes stacked ``np.matmul``
    calls (identical per-slice GEMMs);
  - the three Q/K/V projections of a self-attention become one stacked
    matmul over a ``(3, d, d)`` weight block (same per-slice GEMMs);
  - time embeddings are memoized on the observation *intervals* — the only
    thing they depend on besides the frozen phase parameters — so serving a
    regular cadence pays the transcendentals once;
  - in the default masked/univariate mode the decoder input is a pure time
    embedding, identical across the folded variates, so the decoder's
    self-attention stage runs once per window and is repeated across
    variates afterwards (duplicated batch rows produce duplicated bits).

* **float32 mode** — the same plans execute in single precision throughout
  (weights cast once at compile time, python-float scalars keep arrays in
  float32), trading bit-equality for roughly half the memory traffic.
* **eval-mode semantics** — plans never apply dropout; they implement the
  inference semantics of a module in ``eval()`` mode regardless of the
  source module's training flag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import ops

__all__ = [
    "FeedForwardPlan",
    "LayerNormPlan",
    "AttentionPlan",
    "EncoderLayerPlan",
    "DecoderLayerPlan",
    "TimeEmbeddingPlan",
    "TemporalPlan",
    "NoisePlan",
    "CompiledForwardResult",
    "CompiledModel",
]

#: Numerical floor shared with ``repro.nn.normalize_adjacency`` and
#: ``repro.core.graph_learning`` (kept literal so the kernels stay exact).
_GRAPH_EPS = 1e-8


def freeze(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Copy ``array`` into a read-only ndarray of the plan dtype.

    The copy decouples the plan from the live training weights (a later
    ``fit()`` or optimizer step cannot silently change a compiled plan) and
    the write lock makes the export genuinely read-only.
    """
    out = np.array(array, dtype=dtype)
    out.flags.writeable = False
    return out


class FeedForwardPlan:
    """Frozen :class:`repro.nn.FeedForward` (dropout elided — eval mode)."""

    __slots__ = ("w1", "b1", "w2", "b2", "activation")

    def __init__(self, w1, b1, w2, b2, activation: str):
        self.w1, self.b1, self.w2, self.b2 = w1, b1, w2, b2
        self.activation = activation

    def __call__(self, x: np.ndarray) -> np.ndarray:
        hidden = ops.apply_activation(ops.linear(x, self.w1, self.b1), self.activation)
        return ops.linear(hidden, self.w2, self.b2)


class LayerNormPlan:
    """Frozen :class:`repro.nn.LayerNorm`."""

    __slots__ = ("gamma", "beta", "eps")

    def __init__(self, gamma, beta, eps: float):
        self.gamma, self.beta, self.eps = gamma, beta, eps

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return ops.layer_norm(x, self.gamma, self.beta, self.eps)


class AttentionPlan:
    """Frozen :class:`repro.nn.MultiHeadAttention` (no mask — AERO uses none).

    Besides the per-projection weights, the plan stores the Q/K/V weights
    stacked into one ``(3, d, d)`` block and the K/V weights into a
    ``(2, d, d)`` block, so a self-attention issues one batched matmul for
    all three projections and a cross-attention one for both memory
    projections.  Stacked matmuls dispatch the same per-slice GEMMs as
    three separate calls, so float64 results are bit-identical.
    """

    __slots__ = (
        "wq", "bq", "wo", "bo", "wqkv", "bqkv", "wkv", "bkv",
        "num_heads", "d_head", "scale",
    )

    def __init__(self, wq, bq, wk, bk, wv, bv, wo, bo, num_heads: int):
        if bq is None or bk is None or bv is None or bo is None:
            raise ValueError("attention projections must have biases")
        self.wq, self.bq = wq, bq
        self.wo, self.bo = wo, bo
        self.wqkv = np.stack([wq, wk, wv])
        self.bqkv = np.stack([bq, bk, bv])[:, None, None, :]
        self.wkv = np.stack([wk, wv])
        self.bkv = np.stack([bk, bv])[:, None, None, :]
        # The stacked blocks are as load-bearing as the per-projection
        # weights they restack — same freeze contract.
        for stacked in (self.wqkv, self.bqkv, self.wkv, self.bkv):
            stacked.flags.writeable = False
        self.num_heads = num_heads
        self.d_head = wq.shape[1] // num_heads
        # Same value as the autograd path's ``1.0 / np.sqrt(d_k)``.
        self.scale = float(1.0 / np.sqrt(self.d_head))

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _attend(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        scores = q @ k.swapaxes(-1, -2)
        np.multiply(scores, self.scale, out=scores)
        attended = ops.softmax(scores) @ v
        batch, heads, length, d_head = attended.shape
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, length, heads * d_head)
        return ops.linear(merged, self.wo, self.bo)

    def self_attention(self, x: np.ndarray) -> np.ndarray:
        qkv = x[None] @ self.wqkv[:, None]
        qkv += self.bqkv
        return self._attend(
            self._split_heads(qkv[0]), self._split_heads(qkv[1]), self._split_heads(qkv[2])
        )

    def cross(self, x: np.ndarray, memory: np.ndarray) -> np.ndarray:
        q = ops.linear(x, self.wq, self.bq)
        kv = memory[None] @ self.wkv[:, None]
        kv += self.bkv
        return self._attend(
            self._split_heads(q), self._split_heads(kv[0]), self._split_heads(kv[1])
        )


class EncoderLayerPlan:
    """Frozen post-norm Transformer encoder layer."""

    __slots__ = ("self_attention", "feed_forward", "norm1", "norm2")

    def __init__(self, self_attention, feed_forward, norm1, norm2):
        self.self_attention = self_attention
        self.feed_forward = feed_forward
        self.norm1, self.norm2 = norm1, norm2

    def __call__(self, x: np.ndarray) -> np.ndarray:
        attended = self.self_attention.self_attention(x)
        np.add(x, attended, out=attended)
        x = self.norm1(attended)
        transformed = self.feed_forward(x)
        np.add(x, transformed, out=transformed)
        return self.norm2(transformed)


class DecoderLayerPlan:
    """Frozen post-norm Transformer decoder layer with cross-attention.

    The layer is split into a ``self_stage`` (self-attention + norm) and a
    ``cross_stage`` (cross-attention + feed-forward) so the temporal plan
    can run the self stage once per window when the decoder input is
    variate-independent (masked conditioning, univariate layout).
    """

    __slots__ = ("self_attention", "cross_attention", "feed_forward", "norm1", "norm2", "norm3")

    def __init__(self, self_attention, cross_attention, feed_forward, norm1, norm2, norm3):
        self.self_attention = self_attention
        self.cross_attention = cross_attention
        self.feed_forward = feed_forward
        self.norm1, self.norm2, self.norm3 = norm1, norm2, norm3

    def self_stage(self, x: np.ndarray) -> np.ndarray:
        attended = self.self_attention.self_attention(x)
        np.add(x, attended, out=attended)
        return self.norm1(attended)

    def cross_stage(self, x: np.ndarray, memory: np.ndarray) -> np.ndarray:
        cross = self.cross_attention.cross(x, memory)
        np.add(x, cross, out=cross)
        x = self.norm2(cross)
        transformed = self.feed_forward(x)
        np.add(x, transformed, out=transformed)
        return self.norm3(transformed)

    def __call__(self, x: np.ndarray, memory: np.ndarray) -> np.ndarray:
        return self.cross_stage(self.self_stage(x), memory)


class TimeEmbeddingPlan:
    """Frozen :class:`repro.core.time_embedding.TimeEmbedding`, memoized.

    The embedding depends on the timestamps only through the observation
    *intervals* (the positional half of the phase is fixed by window length
    and offset), so results are cached keyed by the interval bytes.  A
    stream or fleet serving a regular cadence — identical intervals every
    step — therefore pays the sin/cos transcendentals once.  Cached arrays
    are write-locked; downstream kernels only read them.

    Each cached embedding additionally carries a *token* — a monotonically
    increasing integer minted when the entry is first inserted.  Tokens are
    never reused, so downstream caches (the decoder self-stage memo, the
    incremental state's expanded/query caches) can key on them safely:
    unlike ``id()``, a token cannot alias a different array allocated later
    at a recycled address.
    """

    __slots__ = ("frequencies", "alpha", "dtype", "_cache", "_cache_bytes", "_next_token")

    #: Entries kept before the oldest-inserted one is evicted (each entry is
    #: one embedded window geometry — a handful is typical for a serving
    #: process).
    MAX_CACHE = 64
    #: Total bytes the memo may retain; embeddings larger than this are
    #: returned uncached (batch scoring of irregular timestamps would
    #: otherwise retain megabytes of never-reused batch embeddings).
    MAX_CACHE_BYTES = 8 << 20

    def __init__(self, frequencies, alpha, dtype):
        self.frequencies = frequencies
        self.alpha = alpha
        self.dtype = dtype
        self._cache: dict[tuple, tuple[int, np.ndarray]] = {}
        self._cache_bytes = 0
        self._next_token = 0

    def embed(
        self, timestamps: np.ndarray, position_offset: int = 0
    ) -> tuple[np.ndarray, int | None]:
        """The embedding plus its cache token (``None`` when uncached)."""
        # Intervals are differenced in float64 regardless of the plan dtype:
        # large absolute timestamps (e.g. unix epochs) would be quantized by
        # a float32 cast before subtraction, destroying the cadence signal.
        # Only the (small) intervals are cast down — a no-op for float64.
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if timestamps.ndim != 2:
            raise ValueError("timestamps must be 2-D (batch, length)")
        intervals = np.diff(timestamps, axis=1, prepend=timestamps[:, :1]).astype(
            self.dtype, copy=False
        )
        key = (intervals.shape, position_offset, intervals.tobytes())
        cached = self._cache.get(key)
        if cached is not None:
            return cached[1], cached[0]

        positions = position_offset + np.arange(timestamps.shape[1], dtype=self.dtype)
        positional = positions[None, :, None] * self.frequencies[None, None, :]
        # phase = f_j * pos_t + alpha_j * delta_t, embedded as sin + cos
        # (additions commute bitwise; ``phase`` is finished in place).
        phase = self.alpha * intervals[:, :, None]
        np.add(phase, positional, out=phase)
        embedding = np.sin(phase)
        np.cos(phase, out=phase)
        np.add(embedding, phase, out=embedding)
        embedding.flags.writeable = False
        if embedding.nbytes > self.MAX_CACHE_BYTES // 4:
            return embedding, None
        # Evict oldest-inserted entries (dict preserves insertion order)
        # until the new one fits: a steady mixed-cadence fleet keeps its hot
        # entries instead of thrashing the whole memo on every overflow.
        while self._cache and (
            len(self._cache) >= self.MAX_CACHE
            or self._cache_bytes + embedding.nbytes > self.MAX_CACHE_BYTES
        ):
            _, evicted = self._cache.pop(next(iter(self._cache)))
            self._cache_bytes -= evicted.nbytes
        token = self._next_token
        self._next_token += 1
        self._cache[key] = (token, embedding)
        self._cache_bytes += embedding.nbytes
        return embedding, token

    def __call__(self, timestamps: np.ndarray, position_offset: int = 0) -> np.ndarray:
        return self.embed(timestamps, position_offset)[0]


class TemporalPlan:
    """Fused forward plan for the temporal reconstruction module.

    Replays :class:`repro.core.temporal.TemporalReconstructionModule.forward`
    (both conditioning modes, univariate and multivariate layouts, long- and
    short-window reconstruction targets) on raw ndarrays.
    """

    __slots__ = (
        "time_embedding",
        "encoder_embedding_w", "encoder_embedding_b",
        "decoder_embedding_w", "decoder_embedding_b",
        "encoder_layers", "decoder_layers",
        "output_ffn", "output_projection_w", "output_projection_b",
        "conditioning", "multivariate_input", "use_short_window", "dtype",
        "_default_times", "_self_stage_cache",
    )

    def __init__(
        self,
        *,
        time_embedding: TimeEmbeddingPlan,
        encoder_embedding: tuple[np.ndarray, np.ndarray | None],
        decoder_embedding: tuple[np.ndarray, np.ndarray | None],
        encoder_layers: list[EncoderLayerPlan],
        decoder_layers: list[DecoderLayerPlan],
        output_ffn: FeedForwardPlan,
        output_projection: tuple[np.ndarray, np.ndarray | None],
        conditioning: str,
        multivariate_input: bool,
        use_short_window: bool,
        dtype,
    ):
        self.time_embedding = time_embedding
        self.encoder_embedding_w, self.encoder_embedding_b = encoder_embedding
        self.decoder_embedding_w, self.decoder_embedding_b = decoder_embedding
        self.encoder_layers = encoder_layers
        self.decoder_layers = decoder_layers
        self.output_ffn = output_ffn
        self.output_projection_w, self.output_projection_b = output_projection
        self.conditioning = conditioning
        self.multivariate_input = multivariate_input
        self.use_short_window = use_short_window
        self.dtype = dtype
        self._default_times: dict[tuple[int, int], np.ndarray] = {}
        self._self_stage_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _default_long_times(self, batch: int, window: int) -> np.ndarray:
        """The regular-cadence timestamps the autograd path tiles per call."""
        key = (batch, window)
        times = self._default_times.get(key)
        if times is None:
            times = np.tile(np.arange(window, dtype=np.float64), (batch, 1))
            times.flags.writeable = False
            if len(self._default_times) >= TimeEmbeddingPlan.MAX_CACHE:
                del self._default_times[next(iter(self._default_times))]
            self._default_times[key] = times
        return times

    def _decoder_self_stage(self, decoder_time: np.ndarray, token: int | None) -> np.ndarray:
        """First decoder layer's self stage, memoized on the embedding token.

        ``token`` is the :class:`TimeEmbeddingPlan` cache token of
        ``decoder_time`` (``None`` when the embedding was too large to
        cache).  Tokens are monotonic and never reused, so — unlike the
        ``id()``-keyed scheme this replaces — a key can never alias a
        different array allocated later at a recycled address, and the memo
        does not need to pin the embedding alive to keep its key stable.
        A stream serving a regular cadence hits this memo on every step,
        skipping the whole pre-cross decoder stage.
        """
        if token is not None:
            cached = self._self_stage_cache.get(token)
            if cached is not None:
                return cached
        compact = self.decoder_layers[0].self_stage(decoder_time)
        if token is not None:
            compact.flags.writeable = False
            if len(self._self_stage_cache) >= TimeEmbeddingPlan.MAX_CACHE:
                del self._self_stage_cache[next(iter(self._self_stage_cache))]
            self._self_stage_cache[token] = compact
        return compact

    def _fold(self, windows: np.ndarray) -> np.ndarray:
        batch, variates, length = windows.shape
        if self.multivariate_input:
            return windows.transpose(0, 2, 1)
        return windows.reshape(batch * variates, length, 1)

    def _embed_values(
        self,
        windows: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None,
        time: np.ndarray,
    ) -> np.ndarray:
        """Value projection plus time embedding for one window tensor.

        In the univariate layout the time embedding of a window is shared by
        its folded variates; instead of materializing ``np.repeat(time, N)``
        the fresh ``(B * N, L, d)`` value projection is viewed as
        ``(B, N, L, d)`` and the ``(B, L, d)`` embedding broadcast-added —
        the same additions, one per output element, in place.
        """
        batch, variates, length = windows.shape
        values = ops.linear(self._fold(windows), weight, bias)
        if self.multivariate_input:
            values += time
            return values
        grouped = values.reshape(batch, variates, length, -1)
        grouped += time[:, None]
        return values

    def _expand_time(self, embedding: np.ndarray, num_variates: int) -> np.ndarray:
        if self.multivariate_input:
            return embedding
        return np.repeat(embedding, num_variates, axis=0)

    # ------------------------------------------------------------------
    def forward(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> np.ndarray:
        long_windows = np.asarray(long_windows, dtype=self.dtype)
        short_windows = np.asarray(short_windows, dtype=self.dtype)
        batch, variates, window = long_windows.shape
        omega = short_windows.shape[2]
        # Timestamps stay float64 down to the embedding (which differences
        # them before casting) — see TimeEmbeddingPlan.__call__.
        if long_times is None:
            long_times = self._default_long_times(batch, window)
        else:
            long_times = np.asarray(long_times, dtype=np.float64)
        if short_times is None:
            short_times = long_times[:, window - omega:]
        else:
            short_times = np.asarray(short_times, dtype=np.float64)

        if not self.use_short_window:
            short_windows = long_windows
            short_times = long_times
            omega = window

        decoder_input = None  # set on the paths where it is fully expanded
        if self.conditioning == "masked":
            context = long_windows[:, :, : window - omega]
            context_times = long_times[:, : window - omega]
            encoder_input = self._embed_values(
                context,
                self.encoder_embedding_w,
                self.encoder_embedding_b,
                self.time_embedding(context_times),
            )
            decoder_time, decoder_token = self.time_embedding.embed(
                short_times, position_offset=window - omega
            )
            if self.multivariate_input:
                decoder_input = decoder_time
        else:
            encoder_input = self._embed_values(
                long_windows,
                self.encoder_embedding_w,
                self.encoder_embedding_b,
                self.time_embedding(long_times),
            )
            decoder_time = None
            decoder_input = self._embed_values(
                short_windows,
                self.decoder_embedding_w,
                self.decoder_embedding_b,
                self.time_embedding(short_times, position_offset=window - omega),
            )

        memory = encoder_input
        for layer in self.encoder_layers:
            memory = layer(memory)

        if decoder_input is not None or not self.decoder_layers:
            if decoder_input is None:
                decoder_input = self._expand_time(decoder_time, variates)
            decoded = decoder_input
            for layer in self.decoder_layers:
                decoded = layer(decoded, memory)
        else:
            # Masked univariate mode: the decoder input is the short-window
            # time embedding, identical for every folded variate of a window.
            # Run the first self-attention stage once per window, then expand
            # across variates for the cross-attention against the per-variate
            # memory (duplicated batch rows produce duplicated bits).
            compact = self._decoder_self_stage(decoder_time, decoder_token)
            decoded = self.decoder_layers[0].cross_stage(
                np.repeat(compact, variates, axis=0), memory
            )
            for layer in self.decoder_layers[1:]:
                decoded = layer(decoded, memory)

        projected = ops.sigmoid(
            ops.linear(self.output_ffn(decoded), self.output_projection_w, self.output_projection_b)
        )
        if self.multivariate_input:
            return projected.transpose(0, 2, 1)
        return projected.reshape(batch, variates, omega)

    __call__ = forward

    # ------------------------------------------------------------------
    def forward_incremental(self, state, new_row: np.ndarray | None = None) -> np.ndarray:
        """One-tick reconstruction over ``state``'s current ring window.

        ``state`` is a :class:`repro.runtime.incremental.IncrementalState`
        whose rings hold the serving window; ``new_row`` (scaled ``(S, N)``)
        is appended first when given.  Cross-tick caches (per-row value
        embeddings, memoized time embeddings, token-keyed decoder stages)
        make the per-tick cost sub-window while the float64 output stays
        bit-for-bit equal to :meth:`forward` on the same window.
        """
        from .incremental import temporal_step

        if new_row is not None:
            state.append(new_row)
        return temporal_step(self, state)


class NoisePlan:
    """Fused forward plan for the concurrent-noise reconstruction module.

    The autograd module loops over the batch, normalizing one adjacency and
    running one ``(N, N) @ (N, omega)`` GCN propagation per window.  The
    plan fuses the whole batch: vectorised degree normalization and stacked
    ``np.matmul`` calls, which dispatch the identical per-slice GEMMs and
    therefore keep float64 execution bit-for-bit equal.
    """

    __slots__ = (
        "weight", "bias", "activation",
        "graph_mode", "dynamic_decay", "remove_self_loops",
        "scales", "inverse_scales", "dtype",
        "last_adjacency", "_dynamic_state",
    )

    def __init__(
        self,
        *,
        weight: np.ndarray,
        bias: np.ndarray,
        activation: str,
        graph_mode: str,
        dynamic_decay: float,
        remove_self_loops: bool,
        node_scales: np.ndarray | None,
        dtype,
    ):
        self.weight = weight
        self.bias = bias
        self.activation = activation
        self.graph_mode = graph_mode
        self.dynamic_decay = dynamic_decay
        self.remove_self_loops = remove_self_loops
        if node_scales is None:
            self.scales = None
            self.inverse_scales = None
        else:
            self.scales = freeze(node_scales, dtype)
            self.inverse_scales = freeze(1.0 / self.scales[:, None], dtype)
        self.dtype = dtype
        self.last_adjacency: np.ndarray | None = None
        self._dynamic_state: np.ndarray | None = None

    # ------------------------------------------------------------------
    def reset_dynamic_state(self) -> None:
        self._dynamic_state = None

    def _cosine_adjacency(self, errors: np.ndarray) -> np.ndarray:
        """Dtype-generic replica of ``graph_learning.batch_window_adjacency``."""
        norms = np.linalg.norm(errors, axis=2)
        denom = np.maximum(norms[:, :, None] * norms[:, None, :], _GRAPH_EPS)
        similarity = np.einsum("bnw,bmw->bnm", errors, errors)
        np.divide(similarity, denom, out=similarity)
        np.clip(similarity, 0.0, 1.0, out=similarity)
        return similarity

    def _adjacency_for(self, errors: np.ndarray) -> np.ndarray:
        """Fresh per-window adjacency for the ``window``/``dynamic`` modes."""
        window_graphs = self._cosine_adjacency(errors)
        if self.graph_mode == "window":
            return window_graphs
        smoothed = np.empty_like(window_graphs)
        state = self._dynamic_state
        for index in range(len(window_graphs)):
            if state is None:
                state = window_graphs[index]
            else:
                state = self.dynamic_decay * state + (1.0 - self.dynamic_decay) * window_graphs[index]
            smoothed[index] = state
        self._dynamic_state = state
        return smoothed

    # ------------------------------------------------------------------
    def forward(self, errors: np.ndarray, short_windows: np.ndarray) -> np.ndarray:
        errors = np.asarray(errors, dtype=self.dtype)
        if errors.shape != np.shape(short_windows):
            raise ValueError(
                f"errors and short windows must align: {errors.shape} != {np.shape(short_windows)}"
            )
        batch, num_variates, _ = errors.shape
        if self.scales is not None and len(self.scales) != num_variates:
            raise ValueError(
                f"node scales length {len(self.scales)} does not match {num_variates} variates"
            )

        if self.graph_mode == "static":
            normalized = np.ones((batch, num_variates, num_variates), dtype=errors.dtype)
            self.last_adjacency = np.ones((num_variates, num_variates), dtype=errors.dtype)
        else:
            normalized = self._adjacency_for(errors)
            self.last_adjacency = normalized[-1].copy()

        # Batched ``normalize_adjacency``: same elementwise expressions as the
        # per-window calls in ``repro.nn.graph``, applied in place on the
        # fresh adjacency stack.
        if self.remove_self_loops:
            diagonal = np.arange(num_variates)
            normalized[:, diagonal, diagonal] = 0.0
        degree = np.abs(normalized).sum(axis=2)
        inverse_degree = np.where(degree > _GRAPH_EPS, 1.0 / (degree + _GRAPH_EPS), 0.0)
        np.multiply(inverse_degree[:, :, None], normalized, out=normalized)

        features = errors if self.scales is None else errors * self.scales[None, :, None]
        propagated = normalized @ features
        out = propagated @ self.weight
        np.add(out, self.bias, out=out)
        out = ops.apply_activation(out, self.activation)
        if self.inverse_scales is not None:
            np.multiply(out, self.inverse_scales[None], out=out)
        return out

    __call__ = forward

    # ------------------------------------------------------------------
    def forward_incremental(self, state, errors: np.ndarray, target: np.ndarray) -> np.ndarray:
        """One-tick GCN propagation using ``state``'s cached graph inputs.

        In ``static`` mode the degree-normalized adjacency is a constant of
        the fleet geometry, so it is computed once per state (re)build and
        reused every tick; ``window``/``dynamic`` adjacencies depend on this
        tick's errors and are recomputed exactly as :meth:`forward` does.
        Float64 output is bit-for-bit equal to :meth:`forward`.
        """
        from .incremental import noise_step

        return noise_step(self, state, errors, target)


@dataclass
class CompiledForwardResult:
    """Mirror of :class:`repro.core.model.AeroForwardResult` for plan output."""

    reconstruction: np.ndarray
    errors: np.ndarray
    noise_reconstruction: np.ndarray
    residual: np.ndarray
    scores: np.ndarray


class CompiledModel:
    """A full AERO model frozen into tape-free forward plans.

    Mirrors :meth:`repro.core.model.AeroModel.forward` — two stages plus the
    Eq. 17 score head — with plain ndarrays end to end.
    """

    __slots__ = ("temporal", "noise", "use_short_window", "num_variates", "dtype")

    def __init__(
        self,
        *,
        temporal: TemporalPlan | None,
        noise: NoisePlan | None,
        use_short_window: bool,
        num_variates: int,
        dtype,
    ):
        if temporal is None and noise is None:
            raise ValueError("at least one of the two module plans must be present")
        self.temporal = temporal
        self.noise = noise
        self.use_short_window = use_short_window
        self.num_variates = num_variates
        self.dtype = dtype

    # ------------------------------------------------------------------
    @property
    def graph_mode(self) -> str | None:
        return self.noise.graph_mode if self.noise is not None else None

    def reset_dynamic_state(self) -> None:
        if self.noise is not None:
            self.noise.reset_dynamic_state()

    # ------------------------------------------------------------------
    def forward(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> CompiledForwardResult:
        long_windows = np.asarray(long_windows, dtype=self.dtype)
        short_windows = np.asarray(short_windows, dtype=self.dtype)
        target = short_windows if self.use_short_window else long_windows

        if self.temporal is not None:
            reconstruction = self.temporal(long_windows, short_windows, long_times, short_times)
        else:
            reconstruction = np.zeros_like(target)
        errors = target - reconstruction

        if self.noise is not None:
            noise_reconstruction = self.noise(errors, target)
        else:
            noise_reconstruction = np.zeros_like(target)

        # ``target - reconstruction - noise_reconstruction`` associates left,
        # so the ``errors`` intermediate is the exact first operand.
        residual = errors - noise_reconstruction
        scores = np.abs(residual[:, :, -1])
        return CompiledForwardResult(
            reconstruction=reconstruction,
            errors=errors,
            noise_reconstruction=noise_reconstruction,
            residual=residual,
            scores=scores,
        )

    __call__ = forward

    def scores(
        self,
        long_windows: np.ndarray,
        short_windows: np.ndarray,
        long_times: np.ndarray | None = None,
        short_times: np.ndarray | None = None,
    ) -> np.ndarray:
        """Anomaly scores only — the serving hot path."""
        return self.forward(long_windows, short_windows, long_times, short_times).scores
