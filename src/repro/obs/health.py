"""Health snapshots: the introspection surface a router or operator polls.

:meth:`repro.streaming.FleetManager.health` and
:meth:`repro.streaming.StreamingService.health` return the dataclasses
below — queue depth, drop counts, per-shard NaN/gap rates, POT re-fit
counts, re-arm masks in force, the serving model version and p50/p99 step
latency — aggregated from the front-ends' *always-on* cheap internal
accounting, so health works with telemetry disabled.  This is the surface
the ROADMAP's sharded ingest router (item 1) and continual-learning loop
(item 3) poll to decide rebalances and canary promotions.

The snapshots are plain data: ``to_dict()`` for JSON endpoints,
``format()`` for one-line operator output.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["FleetHealth", "ServiceHealth", "latency_percentiles"]


def latency_percentiles(latencies) -> tuple[float, float]:
    """``(p50, p99)`` in milliseconds from a recent-latency buffer (seconds).

    One sample is no distribution: it is reported verbatim for both
    percentiles (matching ``StreamingService.stats``); an empty buffer
    yields NaN.
    """
    values = np.asarray(latencies, dtype=np.float64)
    if values.size == 0:
        return float("nan"), float("nan")
    if values.size == 1:
        verbatim = float(values[0]) * 1e3
        return verbatim, verbatim
    return (
        float(np.percentile(values, 50)) * 1e3,
        float(np.percentile(values, 99)) * 1e3,
    )


@dataclass
class FleetHealth:
    """One fleet's live serving state (see module docstring)."""

    steps_ingested: int
    num_shards: int
    num_stars: int
    backend: str
    threshold_mode: str
    model_version: str | None           # ModelRegistry label, if deployed from one
    warmed_up: bool
    alerts_fired: int
    threshold_refits: int
    rearm_suppressed_stars: int         # re-arm masks currently in force
    dropouts: int                       # stars that crossed the dropout gap so far
    rejoins: int
    missing_rate: float                 # fleet-wide fraction of missing observations
    shard_gap_rates: list[float] = field(default_factory=list)  # per shard
    p50_step_ms: float = float("nan")
    p99_step_ms: float = float("nan")
    drift_tripped_stars: int = 0        # stars the drift monitor holds tripped

    @property
    def healthy(self) -> bool:
        """Serving and not drowning in gaps (no shard majority-missing)."""
        rates = self.shard_gap_rates or [0.0]
        return self.warmed_up and max(rates) < 0.5

    def to_dict(self) -> dict:
        data = asdict(self)
        data["healthy"] = self.healthy
        return data

    def format(self) -> str:
        gaps = ", ".join(f"{rate:.3f}" for rate in self.shard_gap_rates)
        version = self.model_version or "unversioned"
        return (
            f"fleet[{version}] steps={self.steps_ingested} "
            f"stars={self.num_stars}/{self.num_shards} shards backend={self.backend} "
            f"mode={self.threshold_mode} alerts={self.alerts_fired} "
            f"refits={self.threshold_refits} rearming={self.rearm_suppressed_stars} "
            f"drift_tripped={self.drift_tripped_stars} "
            f"dropouts={self.dropouts}/{self.rejoins} gap_rates=[{gaps}] "
            f"latency p50={self.p50_step_ms:.2f}ms p99={self.p99_step_ms:.2f}ms "
            f"{'healthy' if self.healthy else 'DEGRADED'}"
        )

    __str__ = format


@dataclass
class ServiceHealth:
    """One ingestion service's live state, with its fleet's health nested."""

    processed_steps: int
    queue_depth: int
    max_queue: int
    max_queue_depth: int
    under_pressure: bool
    dropped_total: int
    dropped_queue_full: int             # rejected at submit: bounded queue full
    dropped_shed: int                   # explicitly shed stale queued exposures
    alerts_fired: int
    p50_step_ms: float = float("nan")
    p99_step_ms: float = float("nan")
    fleet: FleetHealth | None = None

    @property
    def healthy(self) -> bool:
        nested = self.fleet.healthy if self.fleet is not None else True
        return nested and not self.under_pressure

    def to_dict(self) -> dict:
        data = asdict(self)
        data["healthy"] = self.healthy
        if self.fleet is not None:
            data["fleet"] = self.fleet.to_dict()
        return data

    def format(self) -> str:
        lines = [
            f"service steps={self.processed_steps} "
            f"queue={self.queue_depth}/{self.max_queue} (max {self.max_queue_depth}) "
            f"dropped={self.dropped_total} "
            f"(queue_full={self.dropped_queue_full} shed={self.dropped_shed}) "
            f"alerts={self.alerts_fired} "
            f"latency p50={self.p50_step_ms:.2f}ms p99={self.p99_step_ms:.2f}ms "
            f"{'healthy' if self.healthy else 'DEGRADED'}"
        ]
        if self.fleet is not None:
            lines.append("  " + self.fleet.format())
        return "\n".join(lines)

    __str__ = format
