"""Metric exporters: Prometheus text exposition and JSONL snapshots.

Two complementary formats:

* :func:`render_prometheus` — the text exposition format a Prometheus
  scrape endpoint serves (``# HELP`` / ``# TYPE`` headers, labelled
  samples, cumulative ``_bucket``/``_sum``/``_count`` histogram series).
  :func:`parse_prometheus` parses it back into a flat sample dict, which
  is how the round-trip tests (and quick operator scripts) read it.
* :func:`snapshot` / :func:`write_jsonl_snapshot` — one JSON object per
  flush with every counter, gauge and histogram, appended to a ``.jsonl``
  file.  Two snapshots of the same registry diff line-by-line, the offline
  complement to a live scrape.

:class:`MetricsFlusher` hooks periodic JSONL flushing into a serving loop
(:meth:`repro.streaming.StreamingService.drain` calls ``tick()`` once per
drained step).
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

import numpy as np

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    VectorCounter,
    VectorGauge,
)

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "snapshot",
    "write_jsonl_snapshot",
    "read_jsonl_snapshots",
    "MetricsFlusher",
]


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``\\n``, ``\"``."""
    return str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` (single left-to-right pass)."""
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _format_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _histogram_lines(name: str, histogram: Histogram, label_prefix: str = "") -> list[str]:
    lines = []
    cumulative = 0
    counts = histogram.counts
    for upper, bucket in zip(histogram.uppers, counts[:-1]):
        cumulative += int(bucket)
        le = _format_value(float(upper))
        sep = "," if label_prefix else ""
        prefix = label_prefix[:-1] + sep if label_prefix else "{"
        lines.append(f'{name}_bucket{prefix}le="{le}"}} {cumulative}')
    cumulative += int(counts[-1])
    prefix = label_prefix[:-1] + ("," if label_prefix else "") if label_prefix else "{"
    lines.append(f'{name}_bucket{prefix}le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum{label_prefix} {_format_value(histogram.sum)}")
    lines.append(f"{name}_count{label_prefix} {histogram.count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every registered metric in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        name = metric.name
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, MetricFamily):
            for values, child in sorted(metric.children.items()):
                labels = _format_labels(metric.label_names, values)
                if isinstance(child, Histogram):
                    lines.extend(_histogram_lines(name, child, labels))
                else:
                    lines.append(f"{name}{labels} {_format_value(child.value)}")
        elif isinstance(metric, (VectorCounter, VectorGauge)):
            for index, value in enumerate(metric.values):
                labels = _format_labels((metric.label,), (str(index),))
                lines.append(f"{name}{labels} {_format_value(float(value))}")
        elif isinstance(metric, Histogram):
            lines.extend(_histogram_lines(name, metric))
        else:
            lines.append(f"{name} {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# Label values are quoted strings with backslash escapes, so the label block
# may legitimately contain ``}`` and ``"`` *inside* quotes — the patterns
# must skip quoted regions instead of stopping at the first ``}``.
_SAMPLE_PATTERN = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>\S+)$"
)
_LABEL_PATTERN = re.compile(
    r'(?P<name>[A-Za-z_][A-Za-z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse text exposition back into ``{(name, sorted_labels): value}``.

    The inverse of :func:`render_prometheus` for round-trip testing and
    quick scrape consumers; histogram series appear under their expanded
    ``_bucket``/``_sum``/``_count`` names.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_PATTERN.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = tuple(
            sorted(
                (m.group("name"), _unescape_label_value(m.group("value")))
                for m in _LABEL_PATTERN.finditer(match.group("labels") or "")
            )
        )
        raw = match.group("value")
        value = {"+Inf": np.inf, "-Inf": -np.inf, "NaN": np.nan}.get(raw)
        samples[(match.group("name"), labels)] = float(raw) if value is None else value
    return samples


# ---------------------------------------------------------------------------
# JSONL snapshots
# ---------------------------------------------------------------------------
def snapshot(registry: MetricsRegistry) -> dict:
    """One JSON-serialisable snapshot of every instrument's current state."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}

    def scalar_key(name: str, label_names, label_values) -> str:
        if not label_names:
            return name
        inner = ",".join(f"{n}={v}" for n, v in zip(label_names, label_values))
        return f"{name}{{{inner}}}"

    for metric in registry.collect():
        if isinstance(metric, MetricFamily):
            for values, child in sorted(metric.children.items()):
                key = scalar_key(metric.name, metric.label_names, values)
                if isinstance(child, Histogram):
                    histograms[key] = _histogram_dict(child)
                elif metric.kind == "counter":
                    counters[key] = child.value
                else:
                    gauges[key] = child.value
        elif isinstance(metric, VectorCounter):
            counters.update(
                {
                    scalar_key(metric.name, (metric.label,), (str(i),)): float(v)
                    for i, v in enumerate(metric.values)
                }
            )
        elif isinstance(metric, VectorGauge):
            gauges.update(
                {
                    scalar_key(metric.name, (metric.label,), (str(i),)): float(v)
                    for i, v in enumerate(metric.values)
                }
            )
        elif isinstance(metric, Histogram):
            histograms[metric.name] = _histogram_dict(metric)
        elif isinstance(metric, Counter):
            counters[metric.name] = metric.value
        elif isinstance(metric, Gauge):
            gauges[metric.name] = metric.value
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _histogram_dict(histogram: Histogram) -> dict:
    return {
        "buckets": [float(u) for u in histogram.uppers],
        "counts": [int(c) for c in histogram.counts],
        "sum": histogram.sum,
        "count": histogram.count,
        "p50": histogram.quantile(0.50),
        "p99": histogram.quantile(0.99),
    }


def write_jsonl_snapshot(
    registry: MetricsRegistry, path: str | Path, timestamp: float | None = None
) -> Path:
    """Append one snapshot line to ``path`` (created, with parents, if needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"time": time.time() if timestamp is None else float(timestamp)}  # repro: allow[wallclock] -- snapshot provenance stamp; callers pass `timestamp` for replayable exports
    record.update(snapshot(registry))
    with path.open("a") as handle:
        handle.write(json.dumps(_sanitize(record), allow_nan=False) + "\n")
    return path


def _sanitize(value):
    """Non-finite floats (empty-histogram quantiles) serialise as null."""
    if isinstance(value, dict):
        return {key: _sanitize(inner) for key, inner in value.items()}
    if isinstance(value, list):
        return [_sanitize(inner) for inner in value]
    if isinstance(value, float) and not np.isfinite(value):
        return None
    return value


def read_jsonl_snapshots(path: str | Path) -> list[dict]:
    """All snapshot records of a JSONL file, oldest first."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class MetricsFlusher:
    """Periodically append registry snapshots to a JSONL file.

    ``tick(steps)`` is called from a serving loop (one call per drained
    step, or batched); a snapshot is written every ``every_steps`` ticks
    and/or every ``every_seconds`` of wall clock, whichever fires first.
    ``flush()`` forces one out (e.g. at shutdown).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str | Path,
        every_steps: int | None = 256,
        every_seconds: float | None = None,
    ):
        if every_steps is None and every_seconds is None:
            raise ValueError("give every_steps and/or every_seconds")
        if every_steps is not None and every_steps < 1:
            raise ValueError("every_steps must be positive")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError("every_seconds must be positive")
        self.registry = registry
        self.path = Path(path)
        self.every_steps = every_steps
        self.every_seconds = every_seconds
        self.flushes = 0
        self._steps_since = 0
        self._last_flush = time.monotonic()

    def tick(self, steps: int = 1) -> bool:
        """Account ``steps`` loop iterations; flush if a period elapsed."""
        self._steps_since += steps
        due = (
            self.every_steps is not None and self._steps_since >= self.every_steps
        ) or (
            self.every_seconds is not None
            and time.monotonic() - self._last_flush >= self.every_seconds
        )
        if due:
            self.flush()
        return due

    def flush(self) -> Path:
        path = write_jsonl_snapshot(self.registry, self.path)
        self.flushes += 1
        self._steps_since = 0
        self._last_flush = time.monotonic()
        return path
