"""Per-star model-quality drift monitoring for fleet serving.

System telemetry (:mod:`repro.obs.metrics`) watches whether the fleet is
*running*; this module watches whether the model is still *right*.  A
detector is calibrated once against a held-out quiet stretch, then serves
for nights on end — but score distributions drift as stars age, seasons
turn and instruments degrade, and a threshold calibrated at deploy time
silently goes stale.  :class:`DriftMonitor` detects that online, per star,
at fleet scale:

* **streaming sketches in flat arrays** — every star carries an
  exponentially-weighted mean/variance, an exponentially-weighted
  equal-mass histogram, and P²-style streaming quantile estimators
  (Jain & Chlamtac's five-marker algorithm, vectorised over the fleet), so
  one :meth:`update` call per tick advances ``K`` stars with O(1) array
  ops — no per-star Python loop, matching the
  :class:`~repro.streaming.vector_pot.VectorizedIncrementalPOT` discipline;
* **a calibration-time reference** — :meth:`fit` snapshots each star's
  reference distribution (equal-mass bin edges, bin probabilities,
  quantiles, moments) from the scores the thresholds were calibrated on;
  :meth:`state_dict` round-trips the snapshot so
  :meth:`repro.training.ModelRegistry.publish` can persist it as a sidecar
  and ``deploy`` can restore it next to the model it describes;
* **PSI / KS-style divergence with hysteresis** — every ``check_interval``
  ticks each star's live histogram is compared against its reference via
  the population stability index and a discrete Kolmogorov–Smirnov
  statistic; a star *trips* only after ``trip_after`` consecutive failing
  checks and *clears* only after ``clear_after`` consecutive passing ones,
  so verdicts do not flap on sampling noise.

Like the rest of :mod:`repro.obs`, the monitor is passive: it only ever
*reads* the scores handed to it, so serving outputs are bit-identical with
monitoring enabled or disabled (asserted in ``tests/obs``), and non-finite
scores (survey gaps, warm-up, re-arm masks) are per-star no-ops exactly as
in the POT layer.
"""

from __future__ import annotations

import logging

import numpy as np

from .metrics import get_registry

__all__ = ["DriftMonitor", "DriftVerdict", "calibrate_drift_monitor"]

logger = logging.getLogger("repro.obs.drift")

#: Quantiles probed by the per-star P² estimators (median, tail, far tail).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

_STATE_SCALARS = (
    "halflife",
    "num_bins",
    "psi_trip",
    "psi_clear",
    "ks_trip",
    "ks_clear",
    "check_interval",
    "trip_after",
    "clear_after",
    "min_observations",
    "warmup_ticks",
)
_REFERENCE_ARRAYS = (
    "ref_edges",
    "ref_probs",
    "ref_quantiles",
    "ref_mean",
    "ref_std",
)


class DriftVerdict:
    """One drift check's fleet-wide outcome (plain data, operator-facing)."""

    __slots__ = ("step", "psi", "ks", "tripped", "newly_tripped", "newly_cleared")

    def __init__(self, step, psi, ks, tripped, newly_tripped, newly_cleared):
        self.step = step
        self.psi = psi                    # (K,) population stability index
        self.ks = ks                      # (K,) discrete KS statistic
        self.tripped = tripped            # (K,) bool, after hysteresis
        self.newly_tripped = newly_tripped
        self.newly_cleared = newly_cleared

    def format(self) -> str:
        worst = int(np.argmax(self.psi))
        return (
            f"drift check step={self.step} tripped={int(self.tripped.sum())} "
            f"worst star={worst} psi={self.psi[worst]:.3f} ks={self.ks[worst]:.3f}"
        )

    __str__ = format


class DriftMonitor:
    """Streaming per-star score-distribution drift detector (see module docstring).

    Parameters
    ----------
    halflife:
        Exponential decay halflife, in per-star observations, of the live
        sketches (moments and histogram).  Smaller reacts faster; larger
        averages over more of the night.
    quantiles:
        Probe quantiles for the P² estimators (reference values are
        snapshotted at :meth:`fit` for evidence and the KS-style shift).
    num_bins:
        Equal-mass reference bins of the PSI histogram.
    psi_trip / psi_clear, ks_trip / ks_clear:
        Hysteresis bounds: a check *fails* above the trip bound and
        *passes* below the clear bound (between the two, streaks reset —
        neither trip nor clear progress is made).
    check_interval:
        Divergence is evaluated every this-many :meth:`update` calls.
    trip_after / clear_after:
        Consecutive failing checks before a star trips / passing checks
        before a tripped star clears.
    min_observations:
        Per-star observations before its checks count at all.  The live
        histogram's effective sample size is bounded by ~2x the halflife,
        and an equal-mass PSI over ``B`` bins carries sampling noise of
        roughly ``(B - 1) / N`` — warm up past the point where that noise
        clears the trip bound, or quiet stars flap at startup (the default
        matches the default halflife).
    warmup_ticks:
        Leading :meth:`update` calls discarded entirely (no sketch
        ingestion).  A freshly started fleet's first windows straddle the
        seam between seeded context and live data — sinusoidal stars jump
        phase across the gap — and those transient scores would otherwise
        sit in the exponentially-weighted sketches for several halflives,
        looking exactly like drift.  Size it past the serving window.
    registry:
        Telemetry sink; ``None`` captures the process default at
        construction (a no-op until :func:`repro.obs.enable_telemetry`).
    """

    def __init__(
        self,
        halflife: float = 128.0,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        num_bins: int = 8,
        psi_trip: float = 0.25,
        psi_clear: float = 0.10,
        ks_trip: float = 0.35,
        ks_clear: float = 0.15,
        check_interval: int = 8,
        trip_after: int = 3,
        clear_after: int = 16,
        min_observations: int = 128,
        warmup_ticks: int = 32,
        registry=None,
    ):
        if halflife <= 0:
            raise ValueError("halflife must be positive")
        if num_bins < 2:
            raise ValueError("num_bins must be at least 2")
        quantiles = tuple(float(q) for q in quantiles)
        if not quantiles or any(not 0.0 < q < 1.0 for q in quantiles):
            raise ValueError("quantiles must be in (0, 1)")
        if psi_clear > psi_trip or ks_clear > ks_trip:
            raise ValueError("clear bounds must not exceed trip bounds (hysteresis)")
        if check_interval < 1 or trip_after < 1 or clear_after < 1:
            raise ValueError("check_interval, trip_after and clear_after must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be positive")
        if warmup_ticks < 0:
            raise ValueError("warmup_ticks must be non-negative")
        self.halflife = float(halflife)
        self.quantiles = quantiles
        self.num_bins = int(num_bins)
        self.psi_trip = float(psi_trip)
        self.psi_clear = float(psi_clear)
        self.ks_trip = float(ks_trip)
        self.ks_clear = float(ks_clear)
        self.check_interval = int(check_interval)
        self.trip_after = int(trip_after)
        self.clear_after = int(clear_after)
        self.min_observations = int(min_observations)
        self.warmup_ticks = int(warmup_ticks)
        self._decay = 0.5 ** (1.0 / self.halflife)

        # Calibration-time reference (None until fit).
        self.ref_edges: np.ndarray | None = None      # (K, B-1) interior edges
        self.ref_probs: np.ndarray | None = None      # (K, B)
        self.ref_quantiles: np.ndarray | None = None  # (Q, K)
        self.ref_mean: np.ndarray | None = None       # (K,)
        self.ref_std: np.ndarray | None = None        # (K,)

        registry = get_registry() if registry is None else registry
        self._m_checks = registry.counter(
            "drift_checks_total", "Drift divergence checks evaluated across all monitors"
        )
        self._m_trips = registry.counter(
            "drift_trips_total", "Stars newly tripped by drift monitors"
        )
        self._m_tripped = registry.gauge(
            "drift_tripped_stars", "Stars currently in the tripped drift state"
        )

    # ------------------------------------------------------------------
    def settings(self) -> dict:
        """Constructor kwargs reproducing this monitor's configuration.

        Hands the hysteresis policy and sketch geometry to code that must
        fit a *fresh* reference under the same rules — e.g. the continual
        learning loop calibrating a retrained candidate's drift sidecar
        against the live monitor's trip thresholds.  Telemetry sinks are
        not included; the rebuilt monitor captures its own.
        """
        return {
            "halflife": self.halflife,
            "quantiles": self.quantiles,
            "num_bins": self.num_bins,
            "psi_trip": self.psi_trip,
            "psi_clear": self.psi_clear,
            "ks_trip": self.ks_trip,
            "ks_clear": self.ks_clear,
            "check_interval": self.check_interval,
            "trip_after": self.trip_after,
            "clear_after": self.clear_after,
            "min_observations": self.min_observations,
            "warmup_ticks": self.warmup_ticks,
        }

    @property
    def num_stars(self) -> int:
        return 0 if self.ref_probs is None else int(self.ref_probs.shape[0])

    @property
    def tripped(self) -> np.ndarray:
        """Boolean ``(K,)`` mask of stars currently in the tripped state."""
        return self._tripped

    @property
    def tripped_stars(self) -> int:
        return int(np.count_nonzero(self._tripped))

    @property
    def trips_total(self) -> int:
        """Stars that ever newly tripped (re-trips after clearing count again)."""
        return self._trips_total

    @property
    def num_observations(self) -> np.ndarray:
        return self._num_observations

    @property
    def first_trip_step(self) -> np.ndarray:
        """Per-star tick index of the first trip (``-1`` = never tripped)."""
        return self._first_trip_step

    @property
    def live_quantiles(self) -> np.ndarray:
        """Current P² quantile estimates, ``(Q, K)`` (NaN while initialising)."""
        return self._p2_heights[:, :, 2].copy()

    @property
    def live_mean(self) -> np.ndarray:
        return self._ew_mean.copy()

    @property
    def live_std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self._ew_var, 0.0))

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def fit(self, scores: np.ndarray, num_stars: int | None = None) -> "DriftMonitor":
        """Snapshot the per-star reference distribution from calibration scores.

        1-D ``scores``: one shared reference broadcast to ``num_stars``
        stars (train-once / serve-many).  2-D ``(num_stars, T)``: one
        reference stream per star.  The reference should come from the same
        held-out quiet stretch the serving thresholds were calibrated on.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim == 1:
            if num_stars is None or num_stars <= 0:
                raise ValueError("1-D reference scores need an explicit positive num_stars")
            scores = np.broadcast_to(scores, (num_stars, scores.size))
        elif scores.ndim == 2:
            if num_stars is not None and num_stars != scores.shape[0]:
                raise ValueError(
                    f"num_stars={num_stars} does not match reference rows {scores.shape[0]}"
                )
        else:
            raise ValueError("reference scores must be 1-D (shared) or 2-D (per star)")
        finite_counts = np.isfinite(scores).sum(axis=1)
        needed = max(self.num_bins * 4, 16)
        if int(finite_counts.min()) < needed:
            raise ValueError(
                f"every star needs at least {needed} finite reference scores, "
                f"got a minimum of {int(finite_counts.min())}"
            )
        count = scores.shape[0]
        bins = self.num_bins
        edges = np.empty((count, bins - 1))
        probs = np.empty((count, bins))
        ref_quantiles = np.empty((len(self.quantiles), count))
        ref_mean = np.empty(count)
        ref_std = np.empty(count)
        interior = np.arange(1, bins) / bins
        for star in range(count):
            row = scores[star]
            row = row[np.isfinite(row)]
            edges[star] = np.quantile(row, interior)
            # Empirical reference mass per bin: exactly what the live
            # histogram converges to when nothing drifts (ties and repeated
            # values make it deviate from the ideal 1/B).
            assignments = np.searchsorted(edges[star], row, side="right")
            probs[star] = np.bincount(assignments, minlength=bins) / row.size
            ref_quantiles[:, star] = np.quantile(row, self.quantiles)
            ref_mean[star] = row.mean()
            ref_std[star] = row.std()
        self.ref_edges = edges
        self.ref_probs = probs
        self.ref_quantiles = ref_quantiles
        self.ref_mean = ref_mean
        self.ref_std = ref_std
        self._reset_live_state(count)
        return self

    def _reset_live_state(self, count: int) -> None:
        num_q = len(self.quantiles)
        self._counts = np.zeros((count, self.num_bins))
        self._ew_mean = np.zeros(count)
        self._ew_var = np.zeros(count)
        self._num_observations = np.zeros(count, dtype=np.int64)
        self._ticks = 0
        self._tripped = np.zeros(count, dtype=bool)
        self._fail_streak = np.zeros(count, dtype=np.int64)
        self._pass_streak = np.zeros(count, dtype=np.int64)
        self._first_trip_step = np.full(count, -1, dtype=np.int64)
        self._trips_total = 0
        self.last_psi = np.zeros(count)
        self.last_ks = np.zeros(count)
        self.last_verdict: DriftVerdict | None = None
        # P² marker state: heights/positions/desired are (Q, K, 5); the
        # first five finite observations per star seed the markers.
        self._p2_heights = np.full((num_q, count, 5), np.nan)
        self._p2_positions = np.tile(
            np.arange(1.0, 6.0), (num_q, count, 1)
        )
        q = np.asarray(self.quantiles)[:, None, None]
        marks = np.concatenate(
            [
                np.ones((num_q, 1, 1)),
                1.0 + 2.0 * q,
                1.0 + 4.0 * q,
                3.0 + 2.0 * q,
                np.full((num_q, 1, 1), 5.0),
            ],
            axis=2,
        )
        self._p2_desired = np.tile(marks, (1, count, 1))
        self._p2_increments = np.concatenate(
            [
                np.zeros((num_q, 1, 1)),
                q / 2.0,
                q,
                (1.0 + q) / 2.0,
                np.ones((num_q, 1, 1)),
            ],
            axis=2,
        )
        self._init_buffer = np.empty((count, 5))
        self._init_count = np.zeros(count, dtype=np.int64)

    # ------------------------------------------------------------------
    # the per-tick hot path
    # ------------------------------------------------------------------
    def update(self, scores: np.ndarray) -> int:
        """Ingest one score per star; returns how many stars *newly* tripped.

        Accepts any shape with one entry per star.  Non-finite scores mark
        stars with no trustworthy observation this tick (warm-up, survey
        gaps, re-arm masks): their sketches, streaks and verdicts are left
        exactly as they were, matching the POT layer's NaN semantics.
        """
        if self.ref_probs is None:
            raise RuntimeError("DriftMonitor must be fitted before update")
        flat = np.asarray(scores, dtype=np.float64).ravel()
        if flat.size != self.num_stars:
            raise ValueError(
                f"expected one score per star ({self.num_stars}), got {flat.size}"
            )
        self._ticks += 1
        if self._ticks <= self.warmup_ticks:
            return 0
        observed = np.isfinite(flat)
        if observed.any():
            self._update_moments(flat, observed)
            self._update_histogram(flat, observed)
            self._update_p2(flat, observed)
            self._num_observations += observed
        if self._ticks % self.check_interval == 0:
            return self._check()
        return 0

    def _update_moments(self, flat: np.ndarray, observed: np.ndarray) -> None:
        alpha = 1.0 - self._decay
        seen = self._num_observations > 0
        fresh = observed & ~seen
        live = observed & seen
        if fresh.any():
            self._ew_mean[fresh] = flat[fresh]
            self._ew_var[fresh] = 0.0
        if live.any():
            delta = flat[live] - self._ew_mean[live]
            self._ew_mean[live] += alpha * delta
            self._ew_var[live] = (1.0 - alpha) * (
                self._ew_var[live] + alpha * delta * delta
            )

    def _update_histogram(self, flat: np.ndarray, observed: np.ndarray) -> None:
        stars = np.flatnonzero(observed)
        # Per-star bin of this tick's score against that star's own edges:
        # an O(K * B) comparison, loop-free over the fleet.
        bins = (flat[stars, None] > self.ref_edges[stars]).sum(axis=1)
        self._counts[stars] *= self._decay
        self._counts[stars, bins] += 1.0

    def _update_p2(self, flat: np.ndarray, observed: np.ndarray) -> None:
        counts_before = self._init_count.copy()
        seeding = observed & (counts_before < 5)
        if seeding.any():
            stars = np.flatnonzero(seeding)
            self._init_buffer[stars, counts_before[stars]] = flat[stars]
            self._init_count[stars] += 1
            done = stars[self._init_count[stars] == 5]
            if done.size:
                self._p2_heights[:, done, :] = np.sort(self._init_buffer[done], axis=1)[
                    None, :, :
                ]
        active = observed & (counts_before >= 5)
        if not active.any():
            return
        h = self._p2_heights
        n = self._p2_positions
        x = flat[None, :]                              # (1, K) broadcasting over Q
        act = active[None, :]                          # (1, K)
        below = act & (x < h[:, :, 0])
        h[:, :, 0] = np.where(below, x, h[:, :, 0])
        above = act & (x > h[:, :, 4])
        h[:, :, 4] = np.where(above, x, h[:, :, 4])
        cell = (
            (x >= h[:, :, 1]).astype(np.int64)
            + (x >= h[:, :, 2])
            + (x >= h[:, :, 3])
        )                                              # (Q, K) in 0..3
        bump = np.arange(5)[None, None, :] > cell[:, :, None]
        n += np.where(act[:, :, None] & bump, 1.0, 0.0)
        self._p2_desired += np.where(act[:, :, None], self._p2_increments, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            for i in (1, 2, 3):
                d = self._p2_desired[:, :, i] - n[:, :, i]
                move = act & (
                    ((d >= 1.0) & (n[:, :, i + 1] - n[:, :, i] > 1.0))
                    | ((d <= -1.0) & (n[:, :, i - 1] - n[:, :, i] < -1.0))
                )
                sign = np.sign(d)
                span = n[:, :, i + 1] - n[:, :, i - 1]
                parabolic = h[:, :, i] + (sign / span) * (
                    (n[:, :, i] - n[:, :, i - 1] + sign)
                    * (h[:, :, i + 1] - h[:, :, i])
                    / (n[:, :, i + 1] - n[:, :, i])
                    + (n[:, :, i + 1] - n[:, :, i] - sign)
                    * (h[:, :, i] - h[:, :, i - 1])
                    / (n[:, :, i] - n[:, :, i - 1])
                )
                keeps_order = (h[:, :, i - 1] < parabolic) & (parabolic < h[:, :, i + 1])
                go_up = sign > 0
                neighbor_h = np.where(go_up, h[:, :, i + 1], h[:, :, i - 1])
                neighbor_n = np.where(go_up, n[:, :, i + 1], n[:, :, i - 1])
                linear = h[:, :, i] + sign * (neighbor_h - h[:, :, i]) / (
                    neighbor_n - n[:, :, i]
                )
                adjusted = np.where(keeps_order, parabolic, linear)
                h[:, :, i] = np.where(move, adjusted, h[:, :, i])
                n[:, :, i] = np.where(move, n[:, :, i] + sign, n[:, :, i])

    # ------------------------------------------------------------------
    # divergence + hysteresis
    # ------------------------------------------------------------------
    def divergence(self) -> tuple[np.ndarray, np.ndarray]:
        """Current per-star ``(psi, ks)`` of live histogram vs reference."""
        if self.ref_probs is None:
            raise RuntimeError("DriftMonitor must be fitted before divergence")
        totals = self._counts.sum(axis=1, keepdims=True)
        eps = 1.0 / (self.num_bins * 64.0)
        live = (self._counts + eps) / (totals + self.num_bins * eps)
        ref = (self.ref_probs + eps) / (1.0 + self.num_bins * eps)
        psi = np.sum((live - ref) * np.log(live / ref), axis=1)
        ks = np.abs(np.cumsum(live - ref, axis=1)).max(axis=1)
        empty = totals[:, 0] <= 0.0
        psi[empty] = 0.0
        ks[empty] = 0.0
        return psi, ks

    def _check(self) -> int:
        psi, ks = self.divergence()
        self.last_psi = psi
        self.last_ks = ks
        eligible = self._num_observations >= self.min_observations
        failing = eligible & ((psi > self.psi_trip) | (ks > self.ks_trip))
        passing = eligible & (psi < self.psi_clear) & (ks < self.ks_clear)
        self._fail_streak = np.where(failing, self._fail_streak + 1, 0)
        self._pass_streak = np.where(passing, self._pass_streak + 1, 0)
        newly_tripped = ~self._tripped & (self._fail_streak >= self.trip_after)
        newly_cleared = self._tripped & (self._pass_streak >= self.clear_after)
        self._tripped = (self._tripped | newly_tripped) & ~newly_cleared
        never = newly_tripped & (self._first_trip_step < 0)
        self._first_trip_step[never] = self._ticks
        num_new = int(np.count_nonzero(newly_tripped))
        self._trips_total += num_new
        self._m_checks.inc()
        if num_new:
            self._m_trips.inc(num_new)
            logger.warning(
                "drift_trip step=%d stars=%s psi_max=%.3f ks_max=%.3f",
                self._ticks,
                np.flatnonzero(newly_tripped).tolist(),
                float(psi[newly_tripped].max()),
                float(ks[newly_tripped].max()),
            )
        if newly_cleared.any():
            logger.warning(
                "drift_clear step=%d stars=%s",
                self._ticks,
                np.flatnonzero(newly_cleared).tolist(),
            )
        self._m_tripped.set(self.tripped_stars)
        self.last_verdict = DriftVerdict(
            step=self._ticks,
            psi=psi,
            ks=ks,
            tripped=self._tripped.copy(),
            newly_tripped=newly_tripped,
            newly_cleared=newly_cleared,
        )
        return num_new

    # ------------------------------------------------------------------
    # evidence + persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Per-star evidence arrays for dashboards and post-mortems."""
        psi, ks = self.divergence()
        return {
            "psi": psi,
            "ks": ks,
            "tripped": self._tripped.copy(),
            "first_trip_step": self._first_trip_step.copy(),
            "num_observations": self._num_observations.copy(),
            "live_mean": self.live_mean,
            "live_std": self.live_std,
            "live_quantiles": self.live_quantiles,
            "ref_mean": self.ref_mean.copy(),
            "ref_std": self.ref_std.copy(),
            "ref_quantiles": self.ref_quantiles.copy(),
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """The calibration-time reference sketch as flat arrays (npz-safe).

        This is the *reference*, not the live night: restoring it via
        :meth:`from_state_dict` yields a monitor that compares a fresh
        serving run against the same calibration snapshot (live sketches
        re-warm within ``min_observations`` ticks).  The dict round-trips
        through ``ModelRegistry.publish(..., drift_reference=...)`` /
        ``deploy`` alongside the model it describes.
        """
        if self.ref_probs is None:
            raise RuntimeError("fit the reference before exporting state")
        return {
            "halflife": np.asarray(self.halflife),
            "num_bins": np.asarray(self.num_bins, dtype=np.int64),
            "quantiles": np.asarray(self.quantiles),
            "psi_trip": np.asarray(self.psi_trip),
            "psi_clear": np.asarray(self.psi_clear),
            "ks_trip": np.asarray(self.ks_trip),
            "ks_clear": np.asarray(self.ks_clear),
            "check_interval": np.asarray(self.check_interval, dtype=np.int64),
            "trip_after": np.asarray(self.trip_after, dtype=np.int64),
            "clear_after": np.asarray(self.clear_after, dtype=np.int64),
            "min_observations": np.asarray(self.min_observations, dtype=np.int64),
            "warmup_ticks": np.asarray(self.warmup_ticks, dtype=np.int64),
            "ref_edges": self.ref_edges.copy(),
            "ref_probs": self.ref_probs.copy(),
            "ref_quantiles": self.ref_quantiles.copy(),
            "ref_mean": self.ref_mean.copy(),
            "ref_std": self.ref_std.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: dict, registry=None) -> "DriftMonitor":
        """Rebuild a monitor from :meth:`state_dict` output (or an npz)."""
        missing = [
            key
            for key in (*_STATE_SCALARS, "quantiles", *_REFERENCE_ARRAYS)
            if key not in state
        ]
        if missing:
            raise ValueError(f"drift state is missing keys: {missing}")
        monitor = cls(
            halflife=float(state["halflife"]),
            quantiles=tuple(np.asarray(state["quantiles"], dtype=np.float64)),
            num_bins=int(state["num_bins"]),
            psi_trip=float(state["psi_trip"]),
            psi_clear=float(state["psi_clear"]),
            ks_trip=float(state["ks_trip"]),
            ks_clear=float(state["ks_clear"]),
            check_interval=int(state["check_interval"]),
            trip_after=int(state["trip_after"]),
            clear_after=int(state["clear_after"]),
            min_observations=int(state["min_observations"]),
            warmup_ticks=int(state["warmup_ticks"]),
            registry=registry,
        )
        edges = np.asarray(state["ref_edges"], dtype=np.float64)
        probs = np.asarray(state["ref_probs"], dtype=np.float64)
        quantiles = np.asarray(state["ref_quantiles"], dtype=np.float64)
        if edges.ndim != 2 or probs.ndim != 2 or quantiles.ndim != 2:
            raise ValueError("drift reference arrays must be 2-D")
        counts = {edges.shape[0], probs.shape[0], quantiles.shape[1]}
        if len(counts) != 1:
            raise ValueError(f"drift reference arrays disagree on the star count: {counts}")
        if probs.shape[1] != monitor.num_bins or edges.shape[1] != monitor.num_bins - 1:
            raise ValueError("drift reference bin geometry does not match num_bins")
        monitor.ref_edges = edges.copy()
        monitor.ref_probs = probs.copy()
        monitor.ref_quantiles = quantiles.copy()
        monitor.ref_mean = np.asarray(state["ref_mean"], dtype=np.float64).copy()
        monitor.ref_std = np.asarray(state["ref_std"], dtype=np.float64).copy()
        monitor._reset_live_state(edges.shape[0])
        return monitor


def calibrate_drift_monitor(
    scores: np.ndarray,
    num_stars: int,
    **kwargs,
) -> DriftMonitor:
    """A fitted :class:`DriftMonitor` from held-out calibration scores.

    ``scores`` is the usual ``(T, N)`` per-variate score matrix of the
    reference field (e.g. ``detector.score(scenario.calibration)``), the
    same scores the serving thresholds are calibrated on.  When
    ``num_stars`` is a multiple of ``N``, each variate's reference is tiled
    across shards exactly like
    :func:`~repro.streaming.vector_pot.calibrate_adaptive_pot` (star
    ``shard * N + v`` gets variate ``v``'s reference); otherwise one pooled
    reference is broadcast to every star.  Keyword arguments pass through
    to :class:`DriftMonitor`.
    """
    scores = np.asarray(scores, dtype=np.float64)
    monitor = DriftMonitor(**kwargs)
    if scores.ndim == 2 and scores.shape[1] >= 1 and num_stars % scores.shape[1] == 0:
        reps = num_stars // scores.shape[1]
        return monitor.fit(np.tile(scores.T, (reps, 1)))
    return monitor.fit(scores.ravel(), num_stars=num_stars)
