"""Lightweight span tracing for the tick pipeline and the training loop.

A :class:`Tracer` hands out context-manager spans::

    with tracer.span("fleet.step"):
        with tracer.span("fleet.forward"):
            ...

Spans clock with the monotonic ``time.perf_counter_ns`` clock, nest
(parent/child via a per-thread stack) and land in a bounded in-memory ring
of completed :class:`SpanRecord`\\ s — a long-running service holds O(ring)
memory however many ticks it serves.  Per-name aggregates (count, total
and max duration) survive ring eviction, so ``summary()`` always reflects
the whole run.

Like the metrics layer, tracing defaults to a no-op :data:`NULL_TRACER`
whose ``span()`` returns one shared null context manager — two no-op calls
and zero allocations per instrumented block when tracing is off.

Instrumented span names (stable, test-pinned):

* ``fleet.step`` > ``fleet.ingest`` / ``fleet.forward`` /
  ``fleet.thresholds`` / ``fleet.alerts`` — the serving tick pipeline;
* ``stream.step`` — a single-star streaming micro-batch;
* ``training.stage1`` / ``training.stage2`` > ``training.epoch`` /
  ``training.validation`` — the two-stage training loop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = [
    "SpanRecord",
    "SpanStats",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_default_tracer",
    "trace",
    "use_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    start_ns: int          # monotonic clock (perf_counter_ns), not wall time
    duration_ns: int
    depth: int             # nesting depth at entry (0 = root span)
    parent: str | None     # enclosing span's name, if any

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


@dataclass
class SpanStats:
    """Per-name aggregate over every completed span (ring eviction immune)."""

    count: int = 0
    total_ns: int = 0
    max_ns: int = 0

    @property
    def mean_ms(self) -> float:
        return self.total_ns / self.count / 1e6 if self.count else float("nan")

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def max_ms(self) -> float:
        return self.max_ns / 1e6


class _ActiveSpan:
    """Context manager recording one span on exit (exceptions included)."""

    __slots__ = ("_tracer", "_name", "_start", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self._name)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter_ns() - self._start
        self._tracer._stack().pop()
        self._tracer._record(
            SpanRecord(
                name=self._name,
                start_ns=self._start,
                duration_ns=duration,
                depth=self._depth,
                parent=self._parent,
            )
        )


class Tracer:
    """Span collector with a bounded completed-span ring.

    ``capacity`` bounds the retained :class:`SpanRecord`\\ s (oldest spans
    are evicted first); per-name :class:`SpanStats` aggregates keep counting
    regardless.  Span stacks are per-thread, so concurrently training
    workers nest correctly without sharing parents across threads.
    """

    enabled = True

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: deque[SpanRecord] = deque(maxlen=capacity)
        self._stats: dict[str, SpanStats] = {}
        self._local = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        self._ring.append(record)
        stats = self._stats.get(record.name)
        if stats is None:
            stats = self._stats[record.name] = SpanStats()
        stats.count += 1
        stats.total_ns += record.duration_ns
        if record.duration_ns > stats.max_ns:
            stats.max_ns = record.duration_ns

    # ------------------------------------------------------------------
    def span(self, name: str) -> _ActiveSpan:
        """A context manager timing one named span."""
        return _ActiveSpan(self, name)

    @property
    def spans(self) -> list[SpanRecord]:
        """The retained completed spans, oldest first."""
        return list(self._ring)

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [span for span in self._ring if span.name == name]

    def summary(self) -> dict[str, SpanStats]:
        """Per-name aggregates over *all* completed spans (not just retained)."""
        return dict(self._stats)

    def clear(self) -> None:
        self._ring.clear()
        self._stats.clear()


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """No-op tracer: ``span()`` returns one shared do-nothing context manager."""

    enabled = False
    capacity = 0
    _SPAN = _NullSpan()

    def span(self, name: str) -> _NullSpan:
        return self._SPAN

    @property
    def spans(self) -> list[SpanRecord]:
        return []

    def spans_named(self, name: str) -> list[SpanRecord]:
        return []

    def summary(self) -> dict[str, SpanStats]:
        return {}

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()

_default_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide default tracer (null until telemetry is enabled)."""
    return _default_tracer


def set_default_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the default; ``None`` restores the null tracer."""
    global _default_tracer
    _default_tracer = NULL_TRACER if tracer is None else tracer
    return _default_tracer


def trace(name: str):
    """Span on the *current* default tracer — for call sites with no handle.

    Unlike component-held tracers (captured at construction), ``trace``
    resolves the default per call, so long-lived code paths (the training
    loop) honour telemetry toggles immediately.
    """
    return _default_tracer.span(name)


class use_tracer:
    """Context manager temporarily swapping the default tracer (tests)."""

    def __init__(self, tracer: Tracer | None):
        self._tracer = tracer

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = _default_tracer
        return set_default_tracer(self._tracer)

    def __exit__(self, exc_type, exc, tb) -> None:
        global _default_tracer
        _default_tracer = self._previous
