"""Incident flight recorder: a black box for the serving fleet.

When something goes wrong mid-night — a drift trip, an SLO fast-burn, an
alert storm — the question is always "what did the fleet actually see?",
and by the time anyone asks, the evidence has scrolled out of every buffer.
:class:`FlightRecorder` keeps it: a bounded ring of the most recent frames
(the **raw pre-scaling rows**, exactly as fed to ``step``) together with
every tick's scores, per-star thresholds, labels and fired alerts.  On
trigger it freezes the ring into an immutable :class:`FlightRecord` and —
when a ``dump_dir`` is configured — writes it to one compressed ``.npz``.

The record is replayable: because it stores the raw input rows and
timestamps, :meth:`FlightRecord.replay` can drive a *fresh* identically
constructed fleet through the captured frames and compare tick-for-tick
against the captured outputs with :class:`~repro.simulation.ReplayTrace`
semantics (exact ints, NaN-equal floats).  When the ring covered the
incident fleet's whole history the replay is **bit-identical** — the
post-mortem runs the actual incident, not a reconstruction.  A ring that
wrapped (frames older than ``capacity`` lost) still replays, but the fresh
fleet starts from seed context rather than the incident's warm state, so
treat partial-ring replays as triage evidence, not as ground truth.

Triggers are explicit (:meth:`FlightRecorder.trigger` from drift monitors
or SLO burn) or built in (an alert-storm watchdog over the recent tick
window).  A cooldown keeps one incident from shredding the ring into a
stack of near-identical dumps.

Like the rest of :mod:`repro.obs` the recorder is passive: it copies what
it is shown and never touches the scoring path, so serving outputs are
bit-identical with a recorder attached or not.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field, fields
from pathlib import Path

import numpy as np

from ..nn.serialization import load_arrays, save_arrays
from .metrics import get_registry

__all__ = ["FlightRecorder", "FlightRecord"]

logger = logging.getLogger("repro.obs.recorder")

_ARRAY_FIELDS = (
    "seqs",
    "steps",
    "timestamps",
    "rows",
    "scores",
    "thresholds",
    "labels",
    "alert_seqs",
    "alert_steps",
    "alert_stars",
    "alert_scores",
    "alert_thresholds",
)


@dataclass
class FlightRecord:
    """One frozen flight-recorder dump (see module docstring).

    ``rows`` are the raw pre-scaling exposures; ``timestamps`` encode
    timeline auto-advance ticks (``timestamp=None``) as NaN and
    :meth:`replay` decodes them back, so the replayed timeline matches the
    incident's exactly.
    """

    reason: str
    trigger_step: int
    seqs: np.ndarray              # (P,) int64 frame identities (fleet steps by default)
    steps: np.ndarray             # (P,) int64 fleet step counters
    timestamps: np.ndarray        # (P,) float64, NaN = auto-advance tick
    rows: np.ndarray              # (P, S, N) float64 raw input rows
    scores: np.ndarray            # (P, S, N) float64
    thresholds: np.ndarray        # (P, S, N) float64
    labels: np.ndarray            # (P, S, N) int64
    alert_seqs: np.ndarray        # (A,) int64
    alert_steps: np.ndarray       # (A,) int64
    alert_stars: np.ndarray       # (A,) int64
    alert_scores: np.ndarray      # (A,) float64
    alert_thresholds: np.ndarray  # (A,) float64
    path: Path | None = None      # where the dump landed, when written

    @property
    def num_ticks(self) -> int:
        return int(self.seqs.size)

    @property
    def num_alerts(self) -> int:
        return int(self.alert_seqs.size)

    def format(self) -> str:
        return (
            f"flight[{self.reason}] trigger_step={self.trigger_step} "
            f"ticks={self.num_ticks} alerts={self.num_alerts}"
        )

    __str__ = format

    # ------------------------------------------------------------------
    def to_trace(self):
        """The captured outputs as a :class:`~repro.simulation.ReplayTrace`.

        The import is deferred: :mod:`repro.simulation` imports
        :mod:`repro.obs`, so a module-level import here would be circular.
        """
        from ..simulation.trace import ReplayTrace

        return ReplayTrace(
            seqs=self.seqs.copy(),
            steps=self.steps.copy(),
            timestamps=self.timestamps.copy(),
            scores=self.scores.copy(),
            thresholds=self.thresholds.copy(),
            labels=self.labels.copy(),
            alert_seqs=self.alert_seqs.copy(),
            alert_steps=self.alert_steps.copy(),
            alert_stars=self.alert_stars.copy(),
            alert_scores=self.alert_scores.copy(),
            alert_thresholds=self.alert_thresholds.copy(),
        )

    def replay(self, fleet, rtol: float = 0.0, atol: float = 0.0):
        """Re-run the captured frames through ``fleet`` and diff the traces.

        Delegates to :func:`repro.simulation.replay_flight_record`; returns
        ``(trace, mismatches)`` where an empty mismatch list means the
        post-mortem run reproduced the incident bit-for-bit (at the given
        tolerances).
        """
        from ..simulation.replay import replay_flight_record

        return replay_flight_record(fleet, self, rtol=rtol, atol=atol)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the record as one compressed npz artifact."""
        payload = {name: getattr(self, name) for name in _ARRAY_FIELDS}
        payload["reason"] = np.asarray(self.reason)
        payload["trigger_step"] = np.asarray(self.trigger_step, dtype=np.int64)
        return save_arrays(path, payload)

    @classmethod
    def load(cls, path: str | Path) -> "FlightRecord":
        """Load a record saved by :meth:`save`; validates the key set."""
        arrays = load_arrays(path)
        names = {*_ARRAY_FIELDS, "reason", "trigger_step"}
        missing = names - set(arrays)
        extra = set(arrays) - names
        if missing or extra:
            raise ValueError(
                f"flight record {path} has wrong keys: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        return cls(
            reason=str(arrays["reason"]),
            trigger_step=int(arrays["trigger_step"]),
            path=Path(path),
            **{name: arrays[name] for name in _ARRAY_FIELDS},
        )


@dataclass
class _Frame:
    """One buffered tick (internal; arrays are private copies)."""

    seq: int
    step: int
    timestamp: float
    rows: np.ndarray
    scores: np.ndarray
    thresholds: np.ndarray
    labels: np.ndarray
    alerts: list = field(default_factory=list)


class FlightRecorder:
    """Bounded ring of recent serving frames, dumped on trigger.

    Parameters
    ----------
    capacity:
        Frames retained.  Size it to the window you want to be able to
        post-mortem — a full night for bit-identical replays, a few hundred
        ticks for triage evidence on long-running fleets.
    dump_dir:
        When set, every trigger also writes the frozen record to
        ``<dump_dir>/flight-<reason>-step<N>.npz`` (directory created on
        first dump).  Without it, dumps stay in-process on :attr:`records`.
    cooldown:
        Minimum ticks between dumps; re-triggers inside the window are
        counted (``suppressed_triggers``) but produce no record, so one
        sustained incident yields one dump, not one per check.
    alert_storm_window / alert_storm_threshold:
        Built-in trigger: when the total alerts fired over the last
        ``alert_storm_window`` ticks reaches ``alert_storm_threshold``, the
        recorder dumps with reason ``"alert_storm"``.  Set the threshold to
        ``None`` to disable the watchdog.
    registry:
        Telemetry sink; ``None`` captures the process default at
        construction (a no-op until :func:`repro.obs.enable_telemetry`).
    """

    def __init__(
        self,
        capacity: int = 512,
        dump_dir: str | Path | None = None,
        cooldown: int = 256,
        alert_storm_window: int = 32,
        alert_storm_threshold: int | None = 64,
        registry=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if alert_storm_window < 1:
            raise ValueError("alert_storm_window must be positive")
        if alert_storm_threshold is not None and alert_storm_threshold < 1:
            raise ValueError("alert_storm_threshold must be positive (or None to disable)")
        self.capacity = int(capacity)
        self.dump_dir = None if dump_dir is None else Path(dump_dir)
        self.cooldown = int(cooldown)
        self.alert_storm_window = int(alert_storm_window)
        self.alert_storm_threshold = alert_storm_threshold
        self._frames: deque[_Frame] = deque(maxlen=self.capacity)
        self._alert_counts: deque[int] = deque(maxlen=self.alert_storm_window)
        self._alerts_in_window = 0
        self._ticks = 0
        self._last_dump_tick: int | None = None
        self.records: list[FlightRecord] = []
        self.suppressed_triggers = 0
        registry = get_registry() if registry is None else registry
        self._m_dumps = registry.counter(
            "flight_dumps_total", "Flight-recorder dumps, by trigger reason",
            labels=("reason",),
        )

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return len(self._frames)

    @property
    def ticks_recorded(self) -> int:
        return self._ticks

    # ------------------------------------------------------------------
    def record(self, rows, timestamp, result, seq: int | None = None) -> FlightRecord | None:
        """Buffer one tick; returns a record iff the alert-storm watchdog fired.

        ``rows`` are the raw exposure rows as handed to the scorer (copied
        here — the recorder never aliases caller memory); ``result`` is the
        tick's ``FleetStepResult``-shaped output.  ``seq`` is an optional
        external frame identity (e.g. a scenario exposure index); it
        defaults to the scorer's own step counter.
        """
        scores = np.asarray(result.scores, dtype=np.float64)
        thresholds = getattr(result, "thresholds", None)
        if thresholds is None:
            thresholds = np.full(scores.shape, float(result.threshold))
        alerts = [
            (int(alert.star), float(alert.score), float(alert.threshold))
            for alert in getattr(result, "alerts", ()) or ()
        ]
        step = int(result.step)
        self._frames.append(
            _Frame(
                seq=step if seq is None else int(seq),
                step=step,
                timestamp=np.nan if timestamp is None else float(timestamp),
                rows=np.array(rows, dtype=np.float64, copy=True),
                scores=scores.copy(),
                thresholds=np.asarray(thresholds, dtype=np.float64).copy(),
                labels=np.asarray(result.labels, dtype=np.int64).copy(),
                alerts=alerts,
            )
        )
        self._ticks += 1
        evicted = 0
        if len(self._alert_counts) == self.alert_storm_window:
            evicted = self._alert_counts[0]
        self._alert_counts.append(len(alerts))
        self._alerts_in_window += len(alerts) - evicted
        if (
            self.alert_storm_threshold is not None
            and self._alerts_in_window >= self.alert_storm_threshold
        ):
            return self.trigger("alert_storm")
        return None

    # ------------------------------------------------------------------
    def trigger(self, reason: str) -> FlightRecord | None:
        """Freeze the ring into a :class:`FlightRecord` (cooldown permitting).

        Returns ``None`` when the ring is empty or a dump landed within the
        last ``cooldown`` ticks — sustained incidents produce one record,
        not a record per failing check.
        """
        if not self._frames:
            return None
        if (
            self._last_dump_tick is not None
            and self._ticks - self._last_dump_tick < self.cooldown
        ):
            self.suppressed_triggers += 1
            return None
        self._last_dump_tick = self._ticks
        record = self._freeze(reason)
        self.records.append(record)
        self._m_dumps.labels(reason=reason).inc()
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / f"flight-{reason}-step{record.trigger_step:06d}.npz"
            record.save(path)
            record.path = path
        logger.warning(
            "flight_dump reason=%s trigger_step=%d ticks=%d alerts=%d path=%s",
            reason, record.trigger_step, record.num_ticks, record.num_alerts,
            record.path,
        )
        return record

    def _freeze(self, reason: str) -> FlightRecord:
        frames = list(self._frames)
        alert_rows = [
            (frame.seq, frame.step, star, score, threshold)
            for frame in frames
            for star, score, threshold in frame.alerts
        ]
        return FlightRecord(
            reason=str(reason),
            trigger_step=frames[-1].step,
            seqs=np.asarray([frame.seq for frame in frames], dtype=np.int64),
            steps=np.asarray([frame.step for frame in frames], dtype=np.int64),
            timestamps=np.asarray([frame.timestamp for frame in frames], dtype=np.float64),
            rows=np.stack([frame.rows for frame in frames]),
            scores=np.stack([frame.scores for frame in frames]),
            thresholds=np.stack([frame.thresholds for frame in frames]),
            labels=np.stack([frame.labels for frame in frames]),
            alert_seqs=np.asarray([row[0] for row in alert_rows], dtype=np.int64),
            alert_steps=np.asarray([row[1] for row in alert_rows], dtype=np.int64),
            alert_stars=np.asarray([row[2] for row in alert_rows], dtype=np.int64),
            alert_scores=np.asarray([row[3] for row in alert_rows], dtype=np.float64),
            alert_thresholds=np.asarray([row[4] for row in alert_rows], dtype=np.float64),
        )
