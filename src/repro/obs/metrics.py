"""Process-local metrics: labelled counters, gauges and latency histograms.

The serving and training layers record what they do through a
:class:`MetricsRegistry`; exporters (:mod:`repro.obs.export`) render the
registry as Prometheus text exposition or JSONL snapshots.  Two design
rules keep telemetry out of the hot path's way:

* **array-native fleet metrics** — a fleet of ``K`` stars (or shards) does
  not touch ``K`` labelled children per tick; it updates one
  :class:`VectorCounter` / :class:`VectorGauge` whose backing store is a
  ``(K,)`` numpy array, so a 1k-star fleet pays O(1) array ops per tick;
* **a null registry** — :data:`NULL_REGISTRY` hands out singleton no-op
  instruments with fixed (non-varargs) signatures, so telemetry-off costs a
  handful of no-op method calls and **zero allocations** per tick.  The
  default registry *is* the null registry until :func:`enable_telemetry`
  (or :func:`set_default_registry`) installs a real one.

Instruments are resolved by name idempotently: asking a registry twice for
``fleet_ticks_total`` returns the same object, so independent components
(two fleets, a fleet and a replay harness) share process-level totals the
way Prometheus clients do.  The registry is process-local and assumes the
GIL-serialised access of this repository's single-process serving stack;
increments are not atomic across free-threaded writers.

Telemetry must never perturb results: instruments only ever *read* the
values handed to them — scores, thresholds and alerts are bit-identical
with telemetry on or off (asserted in ``tests/obs``).
"""

from __future__ import annotations

import contextlib
import math

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "VectorCounter",
    "VectorGauge",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS",
    "get_registry",
    "set_default_registry",
    "enable_telemetry",
    "disable_telemetry",
    "use_registry",
]

#: Default latency histogram upper bounds, in seconds (an +Inf overflow
#: bucket is always appended implicitly).
LATENCY_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not name or not name.replace("_", "a").replace(":", "a").isalnum() or name[0].isdigit():
        raise ValueError(
            f"invalid metric name {name!r}: use letters, digits, '_' (Prometheus-safe)"
        )
    return name


class Counter:
    """A monotonically increasing scalar (e.g. ticks served, frames dropped)."""

    kind = "counter"
    __slots__ = ("name", "help", "label_values", "_value")

    def __init__(self, name: str, help: str = "", label_values: tuple = ()):
        self.name = name
        self.help = help
        self.label_values = label_values
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decrements")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A scalar that can go up and down (e.g. queue depth, stars re-arming)."""

    kind = "gauge"
    __slots__ = ("name", "help", "label_values", "_value")

    def __init__(self, name: str, help: str = "", label_values: tuple = ()):
        self.name = name
        self.help = help
        self.label_values = label_values
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (<=) bucket semantics.

    ``buckets`` are the finite upper bounds, sorted ascending; an implicit
    ``+Inf`` overflow bucket catches everything above the last bound.  Per
    observation the invariant ``counts.sum() == count`` holds (the
    hypothesis property test in ``tests/obs`` pins it), and
    :meth:`observe_many` ingests a whole latency array with two numpy calls.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "label_values", "uppers", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        label_values: tuple = (),
    ):
        uppers = np.asarray(buckets, dtype=np.float64)
        if uppers.size == 0:
            raise ValueError("histogram needs at least one finite bucket bound")
        if not np.all(np.isfinite(uppers)):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        if np.any(np.diff(uppers) <= 0):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.label_values = label_values
        self.uppers = uppers
        self._counts = np.zeros(uppers.size + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[int(np.searchsorted(self.uppers, value, side="left"))] += 1
        self._sum += value
        self._count += 1

    def observe_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        np.add.at(self._counts, np.searchsorted(self.uppers, values, side="left"), 1)
        self._sum += float(values.sum())
        self._count += int(values.size)

    @property
    def counts(self) -> np.ndarray:
        """Per-bucket (non-cumulative) counts; the last entry is ``+Inf``."""
        return self._counts.copy()

    @property
    def cumulative_counts(self) -> np.ndarray:
        return np.cumsum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (NaN with no observations).

        Within a finite bucket the mass is assumed uniform; a quantile that
        lands in the overflow bucket is clamped to the last finite bound —
        the usual Prometheus ``histogram_quantile`` convention.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            return float("nan")
        target = q * self._count
        cumulative = np.cumsum(self._counts)
        bucket = int(np.searchsorted(cumulative, target, side="left"))
        if bucket >= self.uppers.size:
            return float(self.uppers[-1])
        lower = 0.0 if bucket == 0 else float(self.uppers[bucket - 1])
        upper = float(self.uppers[bucket])
        below = 0 if bucket == 0 else int(cumulative[bucket - 1])
        inside = int(self._counts[bucket])
        if inside == 0:
            return upper
        return lower + (upper - lower) * (target - below) / inside

    def reset(self) -> None:
        self._counts[:] = 0
        self._sum = 0.0
        self._count = 0


class MetricFamily:
    """A labelled metric: one child instrument per distinct label-value set.

    Children are created on first :meth:`labels` call and cached; the
    cardinality cap turns an unbounded label space (a bug: labelling by
    user id, timestamp, ...) into a loud error instead of a memory leak.
    """

    __slots__ = ("name", "help", "kind", "label_names", "max_cardinality", "_children", "_factory")

    def __init__(self, name, help, kind, label_names, factory, max_cardinality=1024):
        if not label_names:
            raise ValueError("a metric family needs at least one label name")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        self.max_cardinality = max_cardinality
        self._children: dict[tuple, object] = {}
        self._factory = factory

    def labels(self, **label_values):
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_cardinality:
                raise ValueError(
                    f"metric {self.name!r} exceeded its label cardinality cap "
                    f"({self.max_cardinality}); labels must come from a bounded set"
                )
            child = self._factory(self.name, self.help, key)
            self._children[key] = child
        return child

    @property
    def children(self) -> dict[tuple, object]:
        return dict(self._children)

    def reset(self) -> None:
        for child in self._children.values():
            child.reset()


class _VectorMetric:
    """Shared machinery of index-labelled array-backed metrics."""

    __slots__ = ("name", "help", "label", "values")

    def __init__(self, name: str, help: str, size: int, label: str):
        if size < 1:
            raise ValueError("vector metrics need a positive size")
        self.name = name
        self.help = help
        self.label = label
        self.values = np.zeros(size, dtype=np.float64)

    @property
    def size(self) -> int:
        return int(self.values.size)

    def _grow(self, size: int) -> None:
        if size > self.values.size:
            grown = np.zeros(size, dtype=np.float64)
            grown[: self.values.size] = self.values
            self.values = grown

    def _check(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.values.shape:
            raise ValueError(
                f"vector metric {self.name!r} covers {self.values.size} indices, "
                f"got an update of shape {values.shape}"
            )
        return values

    def reset(self) -> None:
        self.values[:] = 0.0


class VectorCounter(_VectorMetric):
    """Per-index counters in one array: a fleet's per-shard/per-star totals.

    ``add(values)`` is the per-tick hot path — one vectorised ``+=`` over
    the whole fleet.  Exported as one labelled sample per index
    (``name{label="i"}``).
    """

    kind = "counter"
    __slots__ = ()

    def add(self, values: np.ndarray) -> None:
        self.values += self._check(values)

    def inc_at(self, index: int, amount: float = 1.0) -> None:
        self.values[index] += amount

    @property
    def total(self) -> float:
        return float(self.values.sum())


class VectorGauge(_VectorMetric):
    """Per-index gauges in one array (e.g. each shard's live NaN rate)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, values: np.ndarray) -> None:
        self.values[:] = self._check(values)

    def set_at(self, index: int, value: float) -> None:
        self.values[index] = float(value)


class MetricsRegistry:
    """Process-local instrument store, resolved idempotently by name."""

    #: Real registries record; the null registry overrides this to False so
    #: hot paths can skip computing update *arguments* entirely.
    enabled = True

    def __init__(self, max_label_cardinality: int = 1024):
        self._metrics: dict[str, object] = {}
        self.max_label_cardinality = max_label_cardinality

    # -- factories ------------------------------------------------------
    def _resolve(self, name, kind, build):
        existing = self._metrics.get(_check_name(name))
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {existing.kind}, "
                    f"cannot re-register as a {kind}"
                )
            return existing
        metric = build()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()):
        if labels:
            return self._resolve(
                name, "counter",
                lambda: MetricFamily(name, help, "counter", labels, Counter,
                                     self.max_label_cardinality),
            )
        return self._resolve(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()):
        if labels:
            return self._resolve(
                name, "gauge",
                lambda: MetricFamily(name, help, "gauge", labels, Gauge,
                                     self.max_label_cardinality),
            )
        return self._resolve(name, "gauge", lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "", buckets: tuple[float, ...] = LATENCY_BUCKETS):
        return self._resolve(name, "histogram", lambda: Histogram(name, help, buckets))

    def counter_vector(self, name: str, size: int, help: str = "", label: str = "star"):
        metric = self._resolve(name, "counter", lambda: VectorCounter(name, help, size, label))
        if not isinstance(metric, VectorCounter):
            raise ValueError(f"metric {name!r} is already registered as a scalar counter")
        metric._grow(size)
        return metric

    def gauge_vector(self, name: str, size: int, help: str = "", label: str = "star"):
        metric = self._resolve(name, "gauge", lambda: VectorGauge(name, help, size, label))
        if not isinstance(metric, VectorGauge):
            raise ValueError(f"metric {name!r} is already registered as a scalar gauge")
        metric._grow(size)
        return metric

    # -- introspection --------------------------------------------------
    def collect(self) -> list:
        """Every registered metric (families included), sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def reset(self) -> None:
        """Zero every instrument (the instruments themselves survive)."""
        for metric in self._metrics.values():
            metric.reset()


# ---------------------------------------------------------------------------
# the no-op fast path
# ---------------------------------------------------------------------------
class _NullCounter:
    kind = "counter"
    name = help = ""
    label_values = ()
    value = 0.0
    total = 0.0
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def add(self, values) -> None:
        pass

    def inc_at(self, index: int, amount: float = 1.0) -> None:
        pass

    def labels(self, **label_values):
        return self

    def reset(self) -> None:
        pass


class _NullGauge:
    kind = "gauge"
    name = help = ""
    label_values = ()
    value = 0.0
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def set_at(self, index: int, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def labels(self, **label_values):
        return self

    def reset(self) -> None:
        pass


class _NullHistogram:
    kind = "histogram"
    name = help = ""
    label_values = ()
    sum = 0.0
    count = 0
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan

    def reset(self) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """Hands out no-op singleton instruments; telemetry off costs nothing.

    Every factory returns the same shared null instrument, whose methods
    take fixed (non-varargs) signatures and allocate nothing — pinned by the
    zero-allocation test in ``tests/obs``.  ``enabled`` is ``False`` so
    instrumented code can skip computing update arguments altogether.
    """

    enabled = False
    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self):
        super().__init__()

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()):
        return self._COUNTER

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()):
        return self._GAUGE

    def histogram(self, name: str, help: str = "", buckets: tuple[float, ...] = LATENCY_BUCKETS):
        return self._HISTOGRAM

    def counter_vector(self, name: str, size: int, help: str = "", label: str = "star"):
        return self._COUNTER

    def gauge_vector(self, name: str, size: int, help: str = "", label: str = "star"):
        return self._GAUGE

    def collect(self) -> list:
        return []


NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (the null registry until enabled)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as the default; ``None`` restores the null registry.

    Components capture the default at *construction* time, so enable
    telemetry before building the fleet/service/session you want observed.
    """
    global _default_registry
    _default_registry = NULL_REGISTRY if registry is None else registry
    return _default_registry


def enable_telemetry(max_label_cardinality: int = 1024) -> MetricsRegistry:
    """Install (and return) a fresh real default registry.

    Also installs a real default tracer — one switch turns the whole
    telemetry layer on.  :func:`disable_telemetry` restores the no-op
    defaults.
    """
    from . import tracing

    tracing.set_default_tracer(tracing.Tracer())
    return set_default_registry(MetricsRegistry(max_label_cardinality))


def disable_telemetry() -> None:
    """Restore the no-op default registry and tracer."""
    from . import tracing

    tracing.set_default_tracer(None)
    set_default_registry(None)


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry | None):
    """Temporarily swap the default registry (tests, scoped collection)."""
    previous = _default_registry
    set_default_registry(registry)
    try:
        yield _default_registry
    finally:
        set_default_registry(previous)
