"""Fleet telemetry: metrics, tick tracing, exporters and health snapshots.

The observability layer the rest of the serving/training stack reports
into.  Everything defaults to **off**: the default
:class:`~repro.obs.metrics.MetricsRegistry` and default
:class:`~repro.obs.tracing.Tracer` are no-op singletons until
:func:`enable_telemetry` installs real ones, and the no-op path costs a
handful of do-nothing method calls (zero allocations) per tick.  Telemetry
never perturbs results — scores, thresholds and alerts are bit-identical
with telemetry on or off.

* :mod:`~repro.obs.metrics` — labelled counters/gauges/histograms plus
  array-native per-shard/per-star vector metrics (O(1) array ops per tick
  for a whole fleet);
* :mod:`~repro.obs.tracing` — nested span timing of the tick pipeline
  (ingest → forward → thresholds → alerts) and the training loop, kept in
  a bounded in-memory ring;
* :mod:`~repro.obs.export` — Prometheus text exposition, JSONL snapshot
  dumps and the periodic flusher the streaming service drives;
* :mod:`~repro.obs.health` — the health-snapshot dataclasses behind
  ``FleetManager.health()`` / ``StreamingService.health()``;
* :mod:`~repro.obs.drift` — per-star streaming score-distribution drift
  detection against a calibration-time reference (PSI/KS with hysteresis);
* :mod:`~repro.obs.slo` — rolling-window SLO tracking with error-budget
  burn rates over the serving layer's always-on accounting;
* :mod:`~repro.obs.recorder` — the incident flight recorder: a bounded
  ring of recent frames dumped to npz on drift trips, SLO burn or alert
  storms, replayable bit-identically for post-mortems.

Typical session::

    from repro.obs import enable_telemetry, get_tracer, render_prometheus

    registry = enable_telemetry()     # before building the fleet
    fleet = FleetManager(detector, num_shards=8)
    ...serve...
    print(render_prometheus(registry))
    print(fleet.health().format())
    print(get_tracer().summary()["fleet.step"].mean_ms)
"""

from .metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    VectorCounter,
    VectorGauge,
    disable_telemetry,
    enable_telemetry,
    get_registry,
    set_default_registry,
    use_registry,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    SpanStats,
    Tracer,
    get_tracer,
    set_default_tracer,
    trace,
    use_tracer,
)
from .export import (
    MetricsFlusher,
    parse_prometheus,
    read_jsonl_snapshots,
    render_prometheus,
    snapshot,
    write_jsonl_snapshot,
)
from .health import FleetHealth, ServiceHealth, latency_percentiles
from .drift import DriftMonitor, DriftVerdict, calibrate_drift_monitor
from .slo import SLO, SLOMonitor, SLOStatus
from .recorder import FlightRecord, FlightRecorder

__all__ = [
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "VectorCounter",
    "VectorGauge",
    "disable_telemetry",
    "enable_telemetry",
    "get_registry",
    "set_default_registry",
    "use_registry",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "SpanStats",
    "Tracer",
    "get_tracer",
    "set_default_tracer",
    "trace",
    "use_tracer",
    "MetricsFlusher",
    "parse_prometheus",
    "read_jsonl_snapshots",
    "render_prometheus",
    "snapshot",
    "write_jsonl_snapshot",
    "FleetHealth",
    "ServiceHealth",
    "latency_percentiles",
    "DriftMonitor",
    "DriftVerdict",
    "calibrate_drift_monitor",
    "SLO",
    "SLOMonitor",
    "SLOStatus",
    "FlightRecord",
    "FlightRecorder",
]
