"""Rolling-window SLO tracking with error-budget burn rates.

Raw counters say what happened; an SLO says whether it is *acceptable*.
This module turns the always-on accounting the serving layer already keeps
(tick latencies, queue drops, alert counts, POT re-fit outcomes) into
service-level objectives an operator can page on:

* each :class:`SLO` is a rolling window of good/bad events with a target
  ``objective`` (e.g. "99% of ticks inside the latency budget");
* ``error budget`` is the allowed bad fraction (``1 - objective``);
  ``burn_rate`` is how fast the window is consuming it — 1.0 means burning
  exactly at budget, 4.0 means the budget for the window is gone in a
  quarter of it (the classic fast-burn page threshold);
* :class:`SLOMonitor` bundles the four serving SLOs (tick-latency p99
  budget, ingest drop rate, alert rate per 1k stars, POT refit-failure
  rate), feeds them from :meth:`~SLOMonitor.observe_tick` /
  :meth:`~SLOMonitor.record_ingest`, and exports compliance and burn as
  gauges through the captured :class:`~repro.obs.metrics.MetricsRegistry`
  — so the existing Prometheus/JSONL exporters pick them up with no new
  plumbing.

Everything is O(1) per event: each window is a fixed ring with running
totals, no percentile sorts, no allocation on the hot path.  Like the rest
of :mod:`repro.obs`, the monitor only observes — attach or detach it and
scores, thresholds and alerts are bit-identical.
"""

from __future__ import annotations

import logging

import numpy as np

from .metrics import get_registry

__all__ = ["SLO", "SLOMonitor", "SLOStatus"]

logger = logging.getLogger("repro.obs.slo")


class SLOStatus:
    """One SLO's window snapshot (plain data, operator-facing)."""

    __slots__ = ("name", "objective", "events", "bad", "compliance", "burn_rate", "breached")

    def __init__(self, name, objective, events, bad, compliance, burn_rate, breached):
        self.name = name
        self.objective = objective
        self.events = events
        self.bad = bad
        self.compliance = compliance
        self.burn_rate = burn_rate
        self.breached = breached

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "events": self.events,
            "bad": self.bad,
            "compliance": self.compliance,
            "burn_rate": self.burn_rate,
            "breached": self.breached,
        }

    def format(self) -> str:
        state = "BREACH" if self.breached else "ok"
        return (
            f"slo[{self.name}] {state} compliance={self.compliance:.4f} "
            f"(objective {self.objective:.4f}) burn={self.burn_rate:.2f}x "
            f"bad={self.bad}/{self.events}"
        )

    __str__ = format


class SLO:
    """A rolling good/bad ratio against a target objective.

    Parameters
    ----------
    name:
        Stable identifier; becomes the ``slo`` label on exported gauges.
    objective:
        Target good fraction over the window, in ``(0, 1)`` — e.g. 0.99
        means at most 1% of events may be bad before the SLO is breached.
    window:
        Events retained.  The window is the unit burn rates are quoted in:
        ``burn_rate == 1.0`` consumes exactly one window's error budget per
        window.
    """

    __slots__ = ("name", "objective", "window", "_good", "_bad", "_ring", "_head", "_filled")

    def __init__(self, name: str, objective: float, window: int = 1024):
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if window < 1:
            raise ValueError("window must be positive")
        self.name = name
        self.objective = float(objective)
        self.window = int(window)
        # Ring of per-event (good, bad) counts plus running totals: O(1)
        # record and O(1) status, regardless of window size.
        self._ring = np.zeros((self.window, 2), dtype=np.int64)
        self._head = 0
        self._filled = 0
        self._good = 0
        self._bad = 0

    def record(self, good: int = 0, bad: int = 0) -> None:
        """Add one event (or one tick's batch of events) to the window."""
        if good < 0 or bad < 0:
            raise ValueError("good and bad counts must be non-negative")
        evicted = self._ring[self._head]
        self._good -= int(evicted[0])
        self._bad -= int(evicted[1])
        self._ring[self._head, 0] = good
        self._ring[self._head, 1] = bad
        self._good += good
        self._bad += bad
        self._head = (self._head + 1) % self.window
        self._filled = min(self._filled + 1, self.window)

    @property
    def events(self) -> int:
        return self._good + self._bad

    @property
    def compliance(self) -> float:
        """Good fraction over the window (1.0 while empty — nothing failed)."""
        total = self._good + self._bad
        return 1.0 if total == 0 else self._good / total

    @property
    def burn_rate(self) -> float:
        """Error-budget consumption speed: bad fraction over allowed fraction."""
        total = self._good + self._bad
        if total == 0:
            return 0.0
        return (self._bad / total) / (1.0 - self.objective)

    @property
    def breached(self) -> bool:
        return self.compliance < self.objective

    def status(self) -> SLOStatus:
        return SLOStatus(
            name=self.name,
            objective=self.objective,
            events=self.events,
            bad=self._bad,
            compliance=self.compliance,
            burn_rate=self.burn_rate,
            breached=self.breached,
        )


class SLOMonitor:
    """The serving fleet's four SLOs, fed from always-on accounting.

    Wire it into a :class:`~repro.streaming.service.StreamingService` via
    its ``slo=`` parameter; the service then calls
    :meth:`record_ingest` on every submit/shed outcome and
    :meth:`observe_tick` on every drained step.  POT refit failures are
    reported by :meth:`record_refit_failure` (the fleet's refit counter
    provides the successes).

    Parameters
    ----------
    latency_budget_ms:
        Per-tick wall-clock budget; a tick is *good* when it finishes
        inside it.  With the default 0.99 objective this is exactly a
        "p99 ≤ budget" SLO, tracked event-by-event instead of by sorting.
    latency_objective, ingest_objective, alert_objective_per_1k,
    refit_objective:
        Targets for the four windows.  ``alert_objective_per_1k`` is the
        alert budget per 1000 star-observations (alert *volume*, not
        accuracy: a detector paging 10x its budget is drowning operators
        whether or not each alert is real).
    window:
        Rolling window length (events) shared by all four SLOs.
    burn_alert:
        Burn-rate threshold above which :meth:`burning` names the SLO —
        the hook serving uses to trigger the flight recorder.  The classic
        fast-burn page threshold of 4x is the default.
    registry:
        Telemetry sink; ``None`` captures the process default at
        construction (a no-op until :func:`repro.obs.enable_telemetry`).
    """

    TICK_LATENCY = "tick_latency"
    INGEST = "ingest"
    ALERT_RATE = "alert_rate"
    POT_REFIT = "pot_refit"

    def __init__(
        self,
        latency_budget_ms: float = 250.0,
        latency_objective: float = 0.99,
        ingest_objective: float = 0.999,
        alert_objective_per_1k: float = 5.0,
        refit_objective: float = 0.999,
        window: int = 1024,
        burn_alert: float = 4.0,
        registry=None,
    ):
        if latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        if not 0.0 < alert_objective_per_1k < 1000.0:
            raise ValueError("alert_objective_per_1k must be in (0, 1000)")
        if burn_alert <= 0:
            raise ValueError("burn_alert must be positive")
        self.latency_budget_ms = float(latency_budget_ms)
        self.burn_alert = float(burn_alert)
        self.slos: dict[str, SLO] = {
            self.TICK_LATENCY: SLO(self.TICK_LATENCY, latency_objective, window),
            self.INGEST: SLO(self.INGEST, ingest_objective, window),
            self.ALERT_RATE: SLO(
                self.ALERT_RATE, 1.0 - alert_objective_per_1k / 1000.0, window
            ),
            self.POT_REFIT: SLO(self.POT_REFIT, refit_objective, window),
        }
        self._last_refits = 0
        self._last_refit_failures = 0
        registry = get_registry() if registry is None else registry
        self._enabled = bool(registry.enabled)
        self._m_compliance = registry.gauge(
            "slo_compliance", "Rolling-window good fraction per SLO", labels=("slo",)
        )
        self._m_burn = registry.gauge(
            "slo_burn_rate", "Error-budget burn rate per SLO (1.0 = at budget)",
            labels=("slo",),
        )
        self._m_breached = registry.gauge(
            "slo_breached", "1 when the SLO's rolling window is out of objective",
            labels=("slo",),
        )

    # ------------------------------------------------------------------
    # feeding the windows
    # ------------------------------------------------------------------
    def observe_tick(
        self,
        latency_seconds: float,
        result=None,
        refits: int | None = None,
        refit_failures: int | None = None,
    ) -> None:
        """Account one drained scoring step.

        ``result`` is the tick's ``FleetStepResult`` (or any object with
        ``scores`` and ``alerts``); it feeds the alert-rate window with this
        tick's star count and alert count.  ``refits`` and
        ``refit_failures`` are the fleet's *cumulative* counters — deltas
        feed the refit SLO's good and bad sides (a failed re-fit aborts its
        tick, so the failure is accounted on the next observed one).
        """
        within = float(latency_seconds) * 1e3 <= self.latency_budget_ms
        self.slos[self.TICK_LATENCY].record(good=int(within), bad=int(not within))
        if result is not None:
            scores = getattr(result, "scores", None)
            alerts = len(getattr(result, "alerts", ()) or ())
            stars = int(np.asarray(scores).size) if scores is not None else 0
            if stars:
                self.slos[self.ALERT_RATE].record(
                    good=max(stars - alerts, 0), bad=min(alerts, stars)
                )
        if refits is not None:
            delta = int(refits) - self._last_refits
            if delta > 0:
                self.slos[self.POT_REFIT].record(good=delta)
            self._last_refits = int(refits)
        if refit_failures is not None:
            delta = int(refit_failures) - self._last_refit_failures
            if delta > 0:
                self.slos[self.POT_REFIT].record(bad=delta)
            self._last_refit_failures = int(refit_failures)
        self._export()

    def record_ingest(self, accepted: int = 0, dropped: int = 0) -> None:
        """Account submit/shed outcomes (accepted = good, dropped = bad)."""
        if accepted or dropped:
            self.slos[self.INGEST].record(good=accepted, bad=dropped)

    def record_refit_failure(self, count: int = 1) -> None:
        """Account failed adaptive-POT re-fits against the refit SLO."""
        self.slos[self.POT_REFIT].record(bad=count)

    # ------------------------------------------------------------------
    # reading the windows
    # ------------------------------------------------------------------
    def status(self) -> dict[str, SLOStatus]:
        return {name: slo.status() for name, slo in self.slos.items()}

    def burning(self) -> list[str]:
        """Names of SLOs whose burn rate exceeds ``burn_alert`` right now."""
        return [
            name
            for name, slo in self.slos.items()
            if slo.events and slo.burn_rate >= self.burn_alert
        ]

    def summary(self) -> dict:
        """JSONL-friendly snapshot of every SLO window."""
        return {name: status.to_dict() for name, status in self.status().items()}

    def format(self) -> str:
        return "\n".join(str(status) for status in self.status().values())

    __str__ = format

    def _export(self) -> None:
        if not self._enabled:
            return
        for name, slo in self.slos.items():
            self._m_compliance.labels(slo=name).set(slo.compliance)
            self._m_burn.labels(slo=name).set(slo.burn_rate)
            self._m_breached.labels(slo=name).set(1.0 if slo.breached else 0.0)
