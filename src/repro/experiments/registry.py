"""Registry mapping paper artifacts (tables / figures) to experiment runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .ablation import run_table4
from .efficiency import run_fig6
from .error_analysis import run_fig9
from .graph_analysis import run_fig8
from .overall import run_table2, run_table3
from .scalability import run_fig7
from .sensitivity import run_fig10
from .templates import run_fig5, run_table1

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    identifier: str
    paper_artifact: str
    description: str
    runner: Callable


EXPERIMENTS: dict[str, Experiment] = {
    "table1": Experiment("table1", "Table I", "Dataset statistics for the six evaluation datasets", run_table1),
    "table2": Experiment("table2", "Table II", "Overall performance on the synthetic datasets", run_table2),
    "table3": Experiment("table3", "Table III", "Overall performance on the GWAC-like real-world datasets", run_table3),
    "table4": Experiment("table4", "Table IV", "Ablation study of AERO's components", run_table4),
    "fig5": Experiment("fig5", "Fig. 5", "Examples of injected true anomalies", run_fig5),
    "fig6": Experiment("fig6", "Fig. 6", "Training and inference time of all methods", run_fig6),
    "fig7": Experiment("fig7", "Fig. 7", "Memory and inference time versus the number of stars", run_fig7),
    "fig8": Experiment("fig8", "Fig. 8", "Learned window-wise graphs versus ground-truth noise", run_fig8),
    "fig9": Experiment("fig9", "Fig. 9", "Stage-wise reconstruction-error decomposition", run_fig9),
    "fig10": Experiment("fig10", "Fig. 10", "Hyperparameter sensitivity of AERO", run_fig10),
}


def get_experiment(identifier: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"table2"`` or ``"fig8"``)."""
    if identifier not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {identifier!r}; options: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[identifier]
