"""Window-wise graph structure analysis (Fig. 8, RQ4).

The paper visualises learned window-wise adjacency matrices at several
timestamps next to the ground-truth co-occurrence graph of concurrent noise.
This runner returns exactly those matrices plus a quantitative agreement
score (the mean learned edge weight inside versus outside the ground-truth
noise clique), so the "figure" can be regenerated and checked numerically.
"""

from __future__ import annotations

import numpy as np

from ..core import AeroDetector, noise_ground_truth_graph, window_wise_adjacency
from ..data import AstroDataset
from .datasets import load_dataset
from .profiles import ExperimentProfile, get_profile

__all__ = ["learned_graphs_at", "graph_agreement", "run_fig8"]


def learned_graphs_at(
    detector: AeroDetector,
    dataset: AstroDataset,
    timestamps: list[int],
) -> list[np.ndarray]:
    """Window-wise adjacency matrices learned at the given test timestamps."""
    model = detector.model
    if model is None:
        raise RuntimeError("the detector must be fitted first")
    scaled_train = detector.scaler.transform(dataset.train)
    scaled_test = detector.scaler.transform(dataset.test)
    window = detector.config.window
    short = detector.config.short_window
    full = np.concatenate([scaled_train[-(window - 1):], scaled_test], axis=0)
    offset = full.shape[0] - scaled_test.shape[0]

    graphs = []
    for t in timestamps:
        end = t + offset
        if end >= full.shape[0] or end - window + 1 < 0:
            raise ValueError(f"timestamp {t} out of range for the test split")
        long_window = full[end - window + 1: end + 1].T[None]
        short_window = full[end - short + 1: end + 1].T[None]
        result = model(long_window, short_window)
        graphs.append(window_wise_adjacency(result.errors[0]))
    return graphs


def graph_agreement(learned: np.ndarray, ground_truth: np.ndarray) -> float:
    """Mean learned weight inside the noise clique minus outside it.

    Positive values mean the learned graph concentrates its edges on the
    stars that are actually affected by concurrent noise.
    """
    learned = np.asarray(learned, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.float64) > 0
    off_diagonal = ~np.eye(learned.shape[0], dtype=bool)
    inside = learned[ground_truth & off_diagonal]
    outside = learned[~ground_truth & off_diagonal]
    inside_mean = float(inside.mean()) if inside.size else 0.0
    outside_mean = float(outside.mean()) if outside.size else 0.0
    return inside_mean - outside_mean


def run_fig8(
    dataset_name: str = "SyntheticMiddle",
    num_snapshots: int = 3,
    profile: ExperimentProfile | None = None,
) -> dict:
    """Fig. 8: learned window-wise graphs versus the ground-truth noise graph.

    Snapshots are taken at timestamps inside test-split noise events (where
    the paper's panels a-c are drawn).  Returns the learned graphs, the
    ground-truth graph and the per-snapshot agreement scores.
    """
    profile = profile or get_profile()
    dataset = load_dataset(dataset_name, profile)
    detector = AeroDetector(profile.aero_config())
    detector.fit(dataset.train, dataset.train_timestamps)

    noise_per_timestamp = dataset.test_noise_mask.sum(axis=1)
    candidates = np.flatnonzero(noise_per_timestamp >= max(2, dataset.num_variates // 4))
    if candidates.size == 0:
        candidates = np.argsort(noise_per_timestamp)[-num_snapshots:]
    picks = np.unique(np.linspace(0, candidates.size - 1, num_snapshots).astype(int))
    snapshot_times = [int(candidates[p]) for p in picks]

    learned = learned_graphs_at(detector, dataset, snapshot_times)
    ground_truth = noise_ground_truth_graph(dataset.test_noise_mask)
    agreements = [graph_agreement(graph, ground_truth) for graph in learned]
    return {
        "dataset": dataset_name,
        "snapshot_timestamps": snapshot_times,
        "learned_graphs": learned,
        "ground_truth_graph": ground_truth,
        "agreements": agreements,
    }
