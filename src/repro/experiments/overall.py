"""Overall performance comparison (Tables II and III, RQ1).

Every method — the eleven baselines plus AERO — is trained on the unlabeled
training split of each dataset and evaluated on the test split with the shared
POT + point-adjust protocol.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import BASELINE_REGISTRY, get_baseline
from ..core import AeroDetector
from ..data import AstroDataset
from .datasets import REAL_DATASETS, SYNTHETIC_DATASETS, load_dataset
from .formatting import format_performance_table
from .profiles import ExperimentProfile, get_profile

__all__ = [
    "ALL_METHODS",
    "run_method_on_dataset",
    "run_overall_comparison",
    "run_table2",
    "run_table3",
]

#: Methods in the row order of Tables II / III.
ALL_METHODS = tuple(BASELINE_REGISTRY) + ("AERO",)


def build_method(name: str, profile: ExperimentProfile):
    """Instantiate a method (baseline or AERO) under the given profile."""
    if name == "AERO":
        return AeroDetector(profile.aero_config())
    return get_baseline(name, **profile.baseline_kwargs(name))


def run_method_on_dataset(method_name: str, dataset: AstroDataset, profile: ExperimentProfile) -> dict:
    """Train and evaluate one method on one dataset; return a result row."""
    method = build_method(method_name, profile)
    method.fit(dataset.train, dataset.train_timestamps)
    if isinstance(method, AeroDetector):
        outcome = method.evaluate(dataset.test, dataset.test_labels, dataset.test_timestamps).outcome
    else:
        outcome = method.evaluate(dataset.test, dataset.test_labels, dataset.test_timestamps)
    return {
        "method": method_name,
        "dataset": dataset.name,
        "precision": outcome.result.precision,
        "recall": outcome.result.recall,
        "f1": outcome.result.f1,
    }


def run_overall_comparison(
    dataset_names: Sequence[str],
    methods: Sequence[str] | None = None,
    profile: ExperimentProfile | None = None,
) -> list[dict]:
    """Run the full method x dataset grid and return one row per pair."""
    profile = profile or get_profile()
    methods = tuple(methods) if methods is not None else ALL_METHODS
    unknown = set(methods) - set(ALL_METHODS)
    if unknown:
        raise KeyError(f"unknown methods: {sorted(unknown)}")
    rows = []
    for dataset_name in dataset_names:
        dataset = load_dataset(dataset_name, profile)
        for method_name in methods:
            rows.append(run_method_on_dataset(method_name, dataset, profile))
    return rows


def run_table2(methods: Sequence[str] | None = None, profile: ExperimentProfile | None = None) -> tuple[list[dict], str]:
    """Table II: overall performance on the three synthetic datasets."""
    rows = run_overall_comparison(SYNTHETIC_DATASETS, methods, profile)
    return rows, format_performance_table(rows, SYNTHETIC_DATASETS)


def run_table3(methods: Sequence[str] | None = None, profile: ExperimentProfile | None = None) -> tuple[list[dict], str]:
    """Table III: overall performance on the three GWAC-like real-world datasets."""
    rows = run_overall_comparison(REAL_DATASETS, methods, profile)
    return rows, format_performance_table(rows, REAL_DATASETS)
