"""Parameter sensitivity analysis (Fig. 10, RQ5).

The paper sweeps four hyperparameters of AERO — the short window size, the
number of attention heads, the number of encoder layers and the long window
size — and reports the F1-score (plus train/test time for the short-window
sweep).  ``run_fig10`` reproduces those sweeps for a chosen dataset.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..core import AeroDetector
from .datasets import load_dataset
from .profiles import ExperimentProfile, get_profile

__all__ = ["sweep_parameter", "run_fig10", "DEFAULT_SWEEPS"]

#: Parameter grids from Fig. 10 (scaled-down defaults; the paper's grids are in comments).
DEFAULT_SWEEPS: dict[str, tuple] = {
    # paper: short window in {20, 40, 60, 80, 100}
    "short_window": (8, 12, 16),
    # paper: heads in {1, 2, 4, 8}
    "num_heads": (1, 2, 4),
    # paper: encoder layers in {1, 2, 3, 4}
    "num_encoder_layers": (1, 2),
    # paper: long window in {100, 150, 200, 250, 300}
    "window": (30, 40, 50),
}


def sweep_parameter(
    parameter: str,
    values: Sequence,
    dataset_name: str = "SyntheticMiddle",
    profile: ExperimentProfile | None = None,
) -> list[dict]:
    """Train/evaluate AERO for each value of one hyperparameter."""
    profile = profile or get_profile()
    dataset = load_dataset(dataset_name, profile)
    rows = []
    for value in values:
        overrides = {parameter: value}
        if parameter == "window":
            # Keep the short window strictly inside the long window.
            overrides["short_window"] = min(profile.aero_short_window, max(int(value) // 3, 2))
        if parameter == "num_heads":
            # d_model must stay divisible by the head count.
            base = profile.aero_d_model
            overrides["d_model"] = base if base % int(value) == 0 else int(value) * max(base // int(value), 1)
        config = profile.aero_config(**overrides)
        detector = AeroDetector(config)

        start = time.perf_counter()
        detector.fit(dataset.train, dataset.train_timestamps)
        train_seconds = time.perf_counter() - start
        start = time.perf_counter()
        report = detector.evaluate(dataset.test, dataset.test_labels, dataset.test_timestamps)
        test_seconds = time.perf_counter() - start

        epochs = max(report.history.stage1_epochs + report.history.stage2_epochs, 1)
        rows.append({
            "parameter": parameter,
            "value": value,
            "dataset": dataset_name,
            "precision": report.outcome.result.precision,
            "recall": report.outcome.result.recall,
            "f1": report.outcome.result.f1,
            "train_seconds_per_epoch": train_seconds / epochs,
            "test_seconds": test_seconds,
        })
    return rows


def run_fig10(
    dataset_name: str = "SyntheticMiddle",
    sweeps: dict[str, tuple] | None = None,
    profile: ExperimentProfile | None = None,
) -> dict[str, list[dict]]:
    """Fig. 10: all four hyperparameter sweeps."""
    sweeps = sweeps or DEFAULT_SWEEPS
    return {
        parameter: sweep_parameter(parameter, values, dataset_name, profile)
        for parameter, values in sweeps.items()
    }
