"""Plain-text rendering of result tables (the rows the paper reports)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_performance_table", "format_ablation_table", "format_series"]


def format_performance_table(rows: Sequence[dict], datasets: Sequence[str]) -> str:
    """Render Table II / Table III style output.

    ``rows`` contain ``method``, ``dataset``, ``precision``, ``recall``, ``f1``
    (fractions in [0, 1]); one output line per method with P/R/F1 columns per
    dataset, percentages as in the paper.
    """
    methods: list[str] = []
    for row in rows:
        if row["method"] not in methods:
            methods.append(row["method"])
    by_key = {(row["method"], row["dataset"]): row for row in rows}

    header = f"{'Method':<20}"
    for dataset in datasets:
        header += f"{dataset:^24}"
    sub_header = f"{'':<20}" + f"{'Prec':>8}{'Recall':>8}{'F1':>8}" * len(datasets)
    lines = [header, sub_header, "-" * len(sub_header)]
    for method in methods:
        line = f"{method:<20}"
        for dataset in datasets:
            row = by_key.get((method, dataset))
            if row is None:
                line += f"{'-':>8}{'-':>8}{'-':>8}"
            else:
                line += (
                    f"{100 * row['precision']:>8.2f}"
                    f"{100 * row['recall']:>8.2f}"
                    f"{100 * row['f1']:>8.2f}"
                )
        lines.append(line)
    return "\n".join(lines)


def format_ablation_table(rows: Sequence[dict], datasets: Sequence[str]) -> str:
    """Render Table IV (same layout as the performance table, variant rows)."""
    renamed = [dict(row, method=row.get("variant", row.get("method", "?"))) for row in rows]
    return format_performance_table(renamed, datasets)


def format_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure series as aligned columns (one line per point)."""
    lines = [f"{name}", f"{x_label:>12}{y_label:>16}", "-" * 28]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>12}{y:>16.4f}")
    return "\n".join(lines)
