"""Dataset loading shared by the experiment runners."""

from __future__ import annotations

from ..data import AstroDataset, load_astroset, load_synthetic
from .profiles import ExperimentProfile

__all__ = ["SYNTHETIC_DATASETS", "REAL_DATASETS", "ALL_DATASETS", "load_dataset"]

SYNTHETIC_DATASETS = ("SyntheticMiddle", "SyntheticHigh", "SyntheticLow")
REAL_DATASETS = ("AstrosetMiddle", "AstrosetHigh", "AstrosetLow")
ALL_DATASETS = SYNTHETIC_DATASETS + REAL_DATASETS


def load_dataset(name: str, profile: ExperimentProfile) -> AstroDataset:
    """Load any of the six evaluation datasets at the profile's scale."""
    if name in SYNTHETIC_DATASETS:
        return load_synthetic(name, scale=profile.dataset_scale)
    if name in REAL_DATASETS:
        return load_astroset(name, scale=profile.dataset_scale)
    raise KeyError(f"unknown dataset {name!r}; options: {ALL_DATASETS}")
