"""Ablation study (Table IV, RQ2): AERO and its seven variants.

The variants remove or replace individual components (temporal module,
univariate input, short window, noise module, window-wise graph) to quantify
each component's contribution; see :mod:`repro.core.variants`.
"""

from __future__ import annotations

from typing import Sequence

from ..core import ABLATION_VARIANTS, VARIANT_LABELS, build_variant
from ..data import AstroDataset
from .datasets import load_dataset
from .formatting import format_ablation_table
from .profiles import ExperimentProfile, get_profile

__all__ = ["ABLATION_DATASETS", "run_variant_on_dataset", "run_ablation", "run_table4"]

#: The three datasets used for Table IV in the paper.
ABLATION_DATASETS = ("SyntheticMiddle", "AstrosetMiddle", "AstrosetLow")


def run_variant_on_dataset(variant: str, dataset: AstroDataset, profile: ExperimentProfile) -> dict:
    """Train and evaluate one ablation variant on one dataset."""
    detector = build_variant(variant, config=profile.aero_config())
    detector.fit(dataset.train, dataset.train_timestamps)
    report = detector.evaluate(dataset.test, dataset.test_labels, dataset.test_timestamps)
    return {
        "variant": VARIANT_LABELS[variant],
        "variant_id": variant,
        "dataset": dataset.name,
        "precision": report.outcome.result.precision,
        "recall": report.outcome.result.recall,
        "f1": report.outcome.result.f1,
    }


def run_ablation(
    dataset_names: Sequence[str] | None = None,
    variants: Sequence[str] | None = None,
    profile: ExperimentProfile | None = None,
) -> list[dict]:
    """Run the variant x dataset grid of Table IV."""
    profile = profile or get_profile()
    dataset_names = tuple(dataset_names) if dataset_names is not None else ABLATION_DATASETS
    variants = tuple(variants) if variants is not None else tuple(ABLATION_VARIANTS)
    unknown = set(variants) - set(ABLATION_VARIANTS)
    if unknown:
        raise KeyError(f"unknown variants: {sorted(unknown)}")
    rows = []
    for dataset_name in dataset_names:
        dataset = load_dataset(dataset_name, profile)
        for variant in variants:
            rows.append(run_variant_on_dataset(variant, dataset, profile))
    return rows


def run_table4(
    dataset_names: Sequence[str] | None = None,
    variants: Sequence[str] | None = None,
    profile: ExperimentProfile | None = None,
) -> tuple[list[dict], str]:
    """Table IV: ablation results plus their plain-text rendering."""
    dataset_names = tuple(dataset_names) if dataset_names is not None else ABLATION_DATASETS
    rows = run_ablation(dataset_names, variants, profile)
    return rows, format_ablation_table(rows, dataset_names)
