"""Reconstruction-error decomposition (Fig. 9, RQ4).

Fig. 9 plots, for a handful of stars, the stage-1 reconstruction error
``|Y - Y_hat_1|`` against the final error ``|Y - Y_hat_1 - Y_hat_2|``:
concurrent noise produces large stage-1 errors that the noise module removes,
while true anomalies keep (or grow) their errors.  This runner reproduces
those curves and summarises them with two ratios:

* ``noise_error_reduction`` — mean stage-1 error over noise points divided by
  the mean final error over the same points (``> 1`` means noise suppressed);
* ``anomaly_error_retention`` — mean final error over anomaly points divided
  by the mean stage-1 error over the same points (``~ 1`` means preserved).
"""

from __future__ import annotations

import numpy as np

from ..core import AeroDetector
from .datasets import load_dataset
from .profiles import ExperimentProfile, get_profile

__all__ = ["stagewise_scores", "run_fig9"]


def stagewise_scores(detector: AeroDetector, test: np.ndarray, timestamps=None) -> tuple[np.ndarray, np.ndarray]:
    """Per-point scores of the temporal stage alone and of the full model."""
    model = detector.model
    if model is None:
        raise RuntimeError("the detector must be fitted first")
    # Full two-stage scores.
    final_scores = detector.score(test, timestamps)
    # Temporal-only scores: temporarily disable the noise module.
    noise_module = model.noise
    model.noise = None
    try:
        stage1_scores = detector.score(test, timestamps)
    finally:
        model.noise = noise_module
    return stage1_scores, final_scores


def run_fig9(dataset_name: str = "SyntheticMiddle", profile: ExperimentProfile | None = None) -> dict:
    """Fig. 9: stage-1 vs. final error curves and their summary ratios."""
    profile = profile or get_profile()
    dataset = load_dataset(dataset_name, profile)
    detector = AeroDetector(profile.aero_config())
    detector.fit(dataset.train, dataset.train_timestamps)
    stage1, final = stagewise_scores(detector, dataset.test, dataset.test_timestamps)

    anomaly_mask = dataset.test_labels.astype(bool)
    noise_mask = dataset.test_noise_mask.astype(bool) & ~anomaly_mask

    def _safe_mean(values: np.ndarray) -> float:
        return float(values.mean()) if values.size else 0.0

    noise_stage1 = _safe_mean(stage1[noise_mask])
    noise_final = _safe_mean(final[noise_mask])
    anomaly_stage1 = _safe_mean(stage1[anomaly_mask])
    anomaly_final = _safe_mean(final[anomaly_mask])

    # Stars to plot: the ones carrying anomalies and the ones most affected by noise.
    anomaly_stars = sorted(set(np.flatnonzero(anomaly_mask.any(axis=0)).tolist()))
    noise_stars = sorted(
        set(np.argsort(noise_mask.sum(axis=0))[-2:].tolist()) - set(anomaly_stars)
    )

    return {
        "dataset": dataset_name,
        "stage1_scores": stage1,
        "final_scores": final,
        "threshold": detector.threshold(),
        "anomaly_stars": anomaly_stars,
        "noise_stars": noise_stars,
        "noise_error_reduction": noise_stage1 / noise_final if noise_final > 0 else float("inf"),
        "anomaly_error_retention": anomaly_final / anomaly_stage1 if anomaly_stage1 > 0 else 0.0,
        "summary": {
            "noise_stage1": noise_stage1,
            "noise_final": noise_final,
            "anomaly_stage1": anomaly_stage1,
            "anomaly_final": anomaly_final,
        },
    }
