"""Injected anomaly examples (Fig. 5) and dataset statistics (Table I)."""

from __future__ import annotations

import numpy as np

from ..data import ANOMALY_TYPES, statistics_table, format_statistics_table
from .datasets import ALL_DATASETS, load_dataset
from .profiles import ExperimentProfile, get_profile

__all__ = ["run_fig5", "run_table1"]


def run_fig5(length: int = 60, amplitude: float = 2.5) -> dict[str, np.ndarray]:
    """Fig. 5: one example curve per injected true-anomaly template."""
    curves = {}
    for name, maker in ANOMALY_TYPES.items():
        if name == "eclipse":
            curves[name] = maker(length, depth=amplitude)
        else:
            curves[name] = maker(length, amplitude=amplitude)
    return curves


def run_table1(profile: ExperimentProfile | None = None) -> tuple[list[dict], str]:
    """Table I: statistics of the six evaluation datasets."""
    profile = profile or get_profile()
    datasets = [load_dataset(name, profile) for name in ALL_DATASETS]
    rows = statistics_table(datasets)
    return rows, format_statistics_table(rows)
