"""Scalability with the number of stars (Fig. 7, RQ3).

The paper sweeps the number of variates from 24 to 960 and reports GPU memory
usage and inference time.  On this CPU substrate we report

* ``memory_mb`` — peak Python memory allocated during inference, measured with
  :mod:`tracemalloc` (the analogue of the paper's GPU memory curve), and
* ``inference_seconds`` — wall-clock time to score the test split.

The expected shape is the paper's: both grow roughly linearly with the number
of stars, with graph-based methods (ESG, AERO) costlier than purely temporal
ones because they build per-window correlation structures.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Sequence

from ..data import SyntheticConfig, generate_synthetic
from .overall import build_method
from .profiles import ExperimentProfile, get_profile

__all__ = ["SCALABILITY_METHODS", "measure_scalability_point", "run_fig7"]

#: Methods shown in Fig. 7 of the paper.
SCALABILITY_METHODS = ("AERO", "AnomalyTransformer", "TranAD", "GDN", "ESG", "TimesNet", "SR")


def _scalability_dataset(num_stars: int, profile: ExperimentProfile):
    """A synthetic dataset with the requested number of stars."""
    length = max(int(400 * profile.dataset_scale / 0.08), 80)
    config = SyntheticConfig(
        name=f"Scalability{num_stars}",
        num_variates=num_stars,
        train_length=length,
        test_length=length,
        num_noise_events=4,
        num_anomaly_segments=2,
        seed=97,
    )
    return generate_synthetic(config)


def measure_scalability_point(method_name: str, num_stars: int, profile: ExperimentProfile) -> dict:
    """Measure memory and inference time of one method for one star count."""
    dataset = _scalability_dataset(num_stars, profile)
    method = build_method(method_name, profile)
    method.fit(dataset.train, dataset.train_timestamps)

    tracemalloc.start()
    start = time.perf_counter()
    method.score(dataset.test, dataset.test_timestamps)
    inference_seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "method": method_name,
        "num_stars": num_stars,
        "memory_mb": peak_bytes / (1024.0 * 1024.0),
        "inference_seconds": inference_seconds,
    }


def run_fig7(
    star_counts: Sequence[int] = (24, 48, 96),
    methods: Sequence[str] | None = None,
    profile: ExperimentProfile | None = None,
) -> list[dict]:
    """Fig. 7: memory usage and inference time versus the number of stars.

    The paper sweeps 24..960 stars; the default here uses a smaller sweep so
    the benchmark completes on CPU, and the ``full`` profile extends it.
    """
    profile = profile or get_profile()
    methods = tuple(methods) if methods is not None else SCALABILITY_METHODS
    rows = []
    for num_stars in star_counts:
        for method_name in methods:
            rows.append(measure_scalability_point(method_name, num_stars, profile))
    return rows
