"""Experiment harness regenerating every table and figure of the paper."""

from .profiles import ExperimentProfile, get_profile, PROFILES
from .datasets import SYNTHETIC_DATASETS, REAL_DATASETS, ALL_DATASETS, load_dataset
from .formatting import format_performance_table, format_ablation_table, format_series
from .overall import (
    ALL_METHODS,
    build_method,
    run_method_on_dataset,
    run_overall_comparison,
    run_table2,
    run_table3,
)
from .ablation import ABLATION_DATASETS, run_variant_on_dataset, run_ablation, run_table4
from .efficiency import measure_method_efficiency, run_fig6
from .scalability import SCALABILITY_METHODS, measure_scalability_point, run_fig7
from .graph_analysis import learned_graphs_at, graph_agreement, run_fig8
from .error_analysis import stagewise_scores, run_fig9
from .sensitivity import sweep_parameter, run_fig10, DEFAULT_SWEEPS
from .templates import run_fig5, run_table1
from .registry import Experiment, EXPERIMENTS, get_experiment

__all__ = [
    "ExperimentProfile",
    "get_profile",
    "PROFILES",
    "SYNTHETIC_DATASETS",
    "REAL_DATASETS",
    "ALL_DATASETS",
    "load_dataset",
    "format_performance_table",
    "format_ablation_table",
    "format_series",
    "ALL_METHODS",
    "build_method",
    "run_method_on_dataset",
    "run_overall_comparison",
    "run_table2",
    "run_table3",
    "ABLATION_DATASETS",
    "run_variant_on_dataset",
    "run_ablation",
    "run_table4",
    "measure_method_efficiency",
    "run_fig6",
    "SCALABILITY_METHODS",
    "measure_scalability_point",
    "run_fig7",
    "learned_graphs_at",
    "graph_agreement",
    "run_fig8",
    "stagewise_scores",
    "run_fig9",
    "sweep_parameter",
    "run_fig10",
    "DEFAULT_SWEEPS",
    "run_fig5",
    "run_table1",
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
]
