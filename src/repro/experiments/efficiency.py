"""Model efficiency (Fig. 6, RQ3): training time per epoch and inference time.

The paper reports wall-clock seconds per training epoch and total inference
time on SyntheticMiddle for every trainable method (SR has no training phase
and appears only in the inference plot).  The substrate here is CPU numpy, so
absolute numbers differ from the paper's GPU measurements; the comparison of
methods against each other is what the figure conveys.
"""

from __future__ import annotations

import time
from typing import Sequence

from .datasets import load_dataset
from .overall import ALL_METHODS, build_method
from .profiles import ExperimentProfile, get_profile

__all__ = ["measure_method_efficiency", "run_fig6"]


def measure_method_efficiency(method_name: str, dataset_name: str, profile: ExperimentProfile) -> dict:
    """Measure training time per epoch and inference time of one method."""
    dataset = load_dataset(dataset_name, profile)
    method = build_method(method_name, profile)

    start = time.perf_counter()
    method.fit(dataset.train, dataset.train_timestamps)
    train_seconds = time.perf_counter() - start

    # Per-epoch time: divide by the number of epochs actually run.
    if method_name == "AERO":
        history = method.history
        epochs = max(history.stage1_epochs + history.stage2_epochs, 1) if history else 1
    else:
        epochs = max(len(getattr(method, "training_losses_", []) or [1]), 1)
    train_per_epoch = train_seconds / epochs

    start = time.perf_counter()
    method.score(dataset.test, dataset.test_timestamps)
    inference_seconds = time.perf_counter() - start

    return {
        "method": method_name,
        "dataset": dataset_name,
        "train_seconds_total": train_seconds,
        "train_seconds_per_epoch": train_per_epoch,
        "inference_seconds": inference_seconds,
    }


def run_fig6(
    methods: Sequence[str] | None = None,
    dataset_name: str = "SyntheticMiddle",
    profile: ExperimentProfile | None = None,
) -> list[dict]:
    """Fig. 6: efficiency of all methods on SyntheticMiddle."""
    profile = profile or get_profile()
    methods = tuple(methods) if methods is not None else ALL_METHODS
    return [measure_method_efficiency(name, dataset_name, profile) for name in methods]
