"""Experiment profiles: how much compute to spend when regenerating results.

The paper's experiments train GPU models on series of 4 000-8 000 points with
dozens of variates; the pure-numpy substrate used here is orders of magnitude
slower, so every experiment runner accepts a profile that scales the dataset
length and the training budget:

* ``tiny``  — seconds per method; used by unit tests.
* ``fast``  — the default for ``pytest benchmarks/``; a few minutes end to end.
* ``full``  — paper-scale data and training budgets (hours on CPU); selected
  by setting the environment variable ``REPRO_PROFILE=full``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core import AeroConfig

__all__ = ["ExperimentProfile", "get_profile", "PROFILES"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scaling knobs shared by all experiment runners."""

    name: str
    dataset_scale: float          # multiplier on train/test lengths
    neural_epochs: int            # epochs for the neural baselines
    neural_stride: int            # training-window stride for the baselines
    aero_window: int              # AERO long window W
    aero_short_window: int        # AERO short window omega
    aero_epochs_stage1: int
    aero_epochs_stage2: int
    aero_learning_rate: float
    aero_train_stride: int
    aero_d_model: int

    def aero_config(self, **overrides) -> AeroConfig:
        """Build the AERO configuration corresponding to this profile."""
        config = AeroConfig(
            window=self.aero_window,
            short_window=self.aero_short_window,
            d_model=self.aero_d_model,
            num_heads=4 if self.aero_d_model % 4 == 0 else 2,
            train_stride=self.aero_train_stride,
            learning_rate=self.aero_learning_rate,
            max_epochs_stage1=self.aero_epochs_stage1,
            max_epochs_stage2=self.aero_epochs_stage2,
            patience=5,
            batch_size=16,
        )
        return config.scaled(**overrides) if overrides else config

    def baseline_kwargs(self, name: str) -> dict:
        """Constructor keyword arguments for a baseline under this profile."""
        if name in ("TM", "SR", "SPOT", "FluxEV"):
            return {}
        return {"epochs": self.neural_epochs, "train_stride": self.neural_stride}


PROFILES: dict[str, ExperimentProfile] = {
    "tiny": ExperimentProfile(
        name="tiny",
        dataset_scale=0.05,
        neural_epochs=2,
        neural_stride=6,
        aero_window=30,
        aero_short_window=10,
        aero_epochs_stage1=14,
        aero_epochs_stage2=8,
        aero_learning_rate=5e-3,
        aero_train_stride=4,
        aero_d_model=16,
    ),
    "fast": ExperimentProfile(
        name="fast",
        dataset_scale=0.08,
        neural_epochs=3,
        neural_stride=4,
        aero_window=40,
        aero_short_window=12,
        aero_epochs_stage1=20,
        aero_epochs_stage2=10,
        aero_learning_rate=5e-3,
        aero_train_stride=4,
        aero_d_model=16,
    ),
    "full": ExperimentProfile(
        name="full",
        dataset_scale=1.0,
        neural_epochs=10,
        neural_stride=1,
        aero_window=200,
        aero_short_window=60,
        aero_epochs_stage1=100,
        aero_epochs_stage2=100,
        aero_learning_rate=1e-3,
        aero_train_stride=1,
        aero_d_model=64,
    ),
}


def get_profile(name: str | None = None) -> ExperimentProfile:
    """Resolve a profile by name, falling back to ``REPRO_PROFILE`` or ``fast``."""
    resolved = name or os.environ.get("REPRO_PROFILE", "fast")
    if resolved not in PROFILES:
        raise KeyError(f"unknown profile {resolved!r}; options: {sorted(PROFILES)}")
    return PROFILES[resolved]
