"""GWAC-like real-world dataset simulator (the "Astrosets" substitution).

The paper's three real-world datasets (AstrosetMiddle/High/Low) are light
curves from the Ground-based Wide Angle Cameras of the National Astronomical
Observatories of China.  Those observations are not publicly distributable,
so this module simulates light curves with the same statistical structure
(documented in ``DESIGN.md``):

* many tens of stars per field, a mixture of non-variable, sinusoidal
  variable, eclipsing-binary and slowly trending stars;
* irregular observation cadence (nominal 15 s exposure with random gaps from
  weather interruptions);
* heavier and more frequent concurrent noise than the synthetic datasets —
  cloud passages and the morning-sky brightening affect *all* stars in the
  field (Table I reports every variate touched by noise);
* very few true anomaly segments (2-6 per dataset), as flagged flare /
  transient events are rare in practice;
* heteroscedastic photometric noise: fainter stars have larger scatter.

The three presets target the Table I statistics for number of variates,
train/test length, anomaly segment counts and the relative ordering of the
anomaly-to-noise ratio (High > Middle > Low in A/N).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .anomalies import flare_template, microlensing_template, nova_template, inject_anomaly
from .dataset import AstroDataset
from .noise import inject_concurrent_noise
from .signals import eclipsing_binary_star, gaussian_star, sinusoidal_star, trended_star

__all__ = ["GwacConfig", "generate_gwac", "load_astroset", "ASTROSET_PRESETS"]


@dataclass
class GwacConfig:
    """Parameters of the GWAC-like light-curve simulator."""

    name: str = "AstrosetMiddle"
    num_variates: int = 54
    train_length: int = 5540
    test_length: int = 5387
    cadence_seconds: float = 15.0
    gap_probability: float = 0.01
    gap_scale_seconds: float = 300.0
    num_noise_events: int = 8
    noise_length_range: tuple[int, int] = (40, 120)
    num_anomaly_segments: int = 2
    anomaly_length_range: tuple[int, int] = (15, 60)
    photometric_noise_range: tuple[float, float] = (0.05, 0.25)
    seed: int = 23

    def __post_init__(self) -> None:
        if self.num_variates < 2:
            raise ValueError("need at least 2 variates")
        if self.cadence_seconds <= 0:
            raise ValueError("cadence must be positive")
        if not 0.0 <= self.gap_probability < 1.0:
            raise ValueError("gap_probability must be in [0, 1)")


ASTROSET_PRESETS: dict[str, GwacConfig] = {
    "AstrosetMiddle": GwacConfig(
        name="AstrosetMiddle",
        num_variates=54,
        train_length=5540,
        test_length=5387,
        num_noise_events=10,
        num_anomaly_segments=2,
        seed=23,
    ),
    "AstrosetHigh": GwacConfig(
        name="AstrosetHigh",
        num_variates=38,
        train_length=8000,
        test_length=6117,
        num_noise_events=6,
        num_anomaly_segments=2,
        seed=29,
    ),
    "AstrosetLow": GwacConfig(
        name="AstrosetLow",
        num_variates=40,
        train_length=6255,
        test_length=2950,
        num_noise_events=16,
        num_anomaly_segments=6,
        seed=31,
    ),
}

_STAR_KINDS = ("constant", "sinusoidal", "eclipsing", "trended")
_STAR_KIND_WEIGHTS = (0.55, 0.25, 0.1, 0.1)


def _irregular_timestamps(length: int, config: GwacConfig, rng: np.random.Generator) -> np.ndarray:
    """Cumulative observation times with occasional weather gaps."""
    intervals = np.full(length, config.cadence_seconds)
    intervals += rng.normal(0.0, config.cadence_seconds * 0.05, size=length)
    gaps = rng.random(length) < config.gap_probability
    intervals[gaps] += rng.exponential(config.gap_scale_seconds, size=int(gaps.sum()))
    return np.cumsum(np.clip(intervals, 1.0, None))


def _base_light_curves(config: GwacConfig, rng: np.random.Generator, length: int) -> tuple[np.ndarray, list[str]]:
    series = np.zeros((length, config.num_variates))
    kinds: list[str] = []
    for variate in range(config.num_variates):
        kind = str(rng.choice(_STAR_KINDS, p=_STAR_KIND_WEIGHTS))
        noise_std = float(rng.uniform(*config.photometric_noise_range))
        if kind == "constant":
            curve = gaussian_star(length, rng, std=noise_std)
        elif kind == "sinusoidal":
            curve = sinusoidal_star(length, rng, amplitude=float(rng.uniform(0.5, 2.0)), noise_std=noise_std)
        elif kind == "eclipsing":
            curve = eclipsing_binary_star(length, rng, depth=float(rng.uniform(0.5, 1.5)), noise_std=noise_std)
        else:
            curve = trended_star(length, rng, noise_std=noise_std)
        series[:, variate] = curve
        kinds.append(kind)
    return series, kinds


def _inject_field_noise(
    series: np.ndarray,
    noise_mask: np.ndarray,
    config: GwacConfig,
    rng: np.random.Generator,
    num_events: int,
) -> None:
    """Inject concurrent noise that touches most or all stars in the field."""
    length = series.shape[0]
    all_variates = np.arange(series.shape[1])
    for _ in range(num_events):
        event_length = int(rng.integers(*config.noise_length_range))
        start = int(rng.integers(0, max(length - event_length, 1)))
        # Cloud passages in a wide-angle field cover most of the frame.
        fraction = float(rng.uniform(0.7, 1.0))
        subset = rng.choice(
            all_variates, size=max(2, int(fraction * len(all_variates))), replace=False
        )
        kind = str(rng.choice(["darkening", "brightening", "drift"], p=[0.6, 0.25, 0.15]))
        inject_concurrent_noise(
            series, noise_mask, rng, start=start, length=event_length,
            variates=subset, kind=kind, intensity=float(rng.uniform(0.5, 1.5)),
        )


def _inject_rare_anomalies(
    series: np.ndarray,
    labels: np.ndarray,
    config: GwacConfig,
    rng: np.random.Generator,
) -> list:
    """Inject a small number of flare / transient events into single stars."""
    injections = []
    length = series.shape[0]
    generators = (
        ("flare", lambda n, a: flare_template(n, amplitude=a)),
        ("microlensing", lambda n, a: microlensing_template(n, amplitude=a)),
        ("nova", lambda n, a: nova_template(n, amplitude=a)),
    )
    for _ in range(config.num_anomaly_segments):
        kind, maker = generators[int(rng.integers(0, len(generators)))]
        segment_length = int(rng.integers(*config.anomaly_length_range))
        variate = int(rng.integers(0, series.shape[1]))
        host_spread = max(float(series[:, variate].std()), 0.15)
        amplitude = float(rng.uniform(3.0, 6.0)) * host_spread
        template = maker(segment_length, amplitude)
        start = int(rng.integers(0, max(length - segment_length, 1)))
        injections.append(inject_anomaly(series, labels, variate, start, template, kind=kind))
    return injections


def generate_gwac(config: GwacConfig) -> AstroDataset:
    """Generate one GWAC-like dataset according to ``config``."""
    rng = np.random.default_rng(config.seed)
    total_length = config.train_length + config.test_length

    series, star_kinds = _base_light_curves(config, rng, total_length)
    noise_mask = np.zeros_like(series, dtype=np.int64)
    labels = np.zeros_like(series, dtype=np.int64)

    train_events = max(1, config.num_noise_events // 2)
    test_events = max(1, config.num_noise_events - train_events)
    _inject_field_noise(series[: config.train_length], noise_mask[: config.train_length], config, rng, train_events)
    _inject_field_noise(series[config.train_length:], noise_mask[config.train_length:], config, rng, test_events)

    test_series = series[config.train_length:]
    test_labels = labels[config.train_length:]
    injections = _inject_rare_anomalies(test_series, test_labels, config, rng)

    timestamps = _irregular_timestamps(total_length, config, rng)

    return AstroDataset(
        name=config.name,
        train=series[: config.train_length],
        test=test_series,
        test_labels=test_labels,
        test_noise_mask=noise_mask[config.train_length:],
        train_noise_mask=noise_mask[: config.train_length],
        train_timestamps=timestamps[: config.train_length],
        test_timestamps=timestamps[config.train_length:],
        metadata={
            "star_kinds": star_kinds,
            "anomaly_injections": [vars(inj) for inj in injections],
            "config": vars(config).copy(),
            "source": "GWAC-like simulator (substitution for proprietary Astrosets)",
        },
    )


def _scaled_length_range(length_range: tuple[int, int], scale: float, minimum: int) -> tuple[int, int]:
    """Scale an event-length range together with the series length.

    Without this, a preset tuned for thousands of points (e.g. noise events of
    40-120 samples) dominates a series scaled down to a few hundred points,
    pushing the Table I noise/anomaly rates far outside the paper's range.
    """
    if scale >= 1.0:
        return length_range
    low, high = length_range
    low = max(minimum, int(round(low * scale)))
    high = max(low + 1, int(round(high * scale)))
    return (low, high)


def load_astroset(name: str = "AstrosetMiddle", scale: float = 1.0, seed: int | None = None) -> AstroDataset:
    """Load one of the GWAC-like preset datasets, optionally scaled down."""
    if name not in ASTROSET_PRESETS:
        raise KeyError(f"unknown astroset {name!r}; options: {sorted(ASTROSET_PRESETS)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    preset = ASTROSET_PRESETS[name]
    config = GwacConfig(
        name=preset.name,
        num_variates=preset.num_variates if scale >= 1.0 else max(8, int(preset.num_variates * min(1.0, scale * 2))),
        train_length=max(int(preset.train_length * scale), 60),
        test_length=max(int(preset.test_length * scale), 60),
        cadence_seconds=preset.cadence_seconds,
        gap_probability=preset.gap_probability,
        gap_scale_seconds=preset.gap_scale_seconds,
        num_noise_events=max(int(round(preset.num_noise_events * max(scale, 0.3))), 2),
        noise_length_range=_scaled_length_range(preset.noise_length_range, scale, minimum=6),
        num_anomaly_segments=max(int(round(preset.num_anomaly_segments * max(scale, 0.5))), 2),
        anomaly_length_range=_scaled_length_range(preset.anomaly_length_range, scale, minimum=3),
        photometric_noise_range=preset.photometric_noise_range,
        seed=preset.seed if seed is None else seed,
    )
    return generate_gwac(config)
