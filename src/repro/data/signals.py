"""Base light-curve signals.

Section IV-A of the paper constructs synthetic datasets from two kinds of
basic signals:

* non-variable stars: Gaussian noise ``X ~ N(0, 0.2^2)``;
* variable stars: a sinusoid ``f(t, T) = 2 sin(2 pi t / T)`` with period ``T``
  sampled between 100 and 300 timestamps, plus Gaussian noise.

This module also provides a few extra signal families used by the GWAC-like
simulator (long-term trends, eclipsing-binary shapes).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_star",
    "sinusoidal_star",
    "eclipsing_binary_star",
    "trended_star",
    "sample_period",
]

DEFAULT_NOISE_STD = 0.2
PERIOD_RANGE = (100, 300)


def sample_period(rng: np.random.Generator, low: int = PERIOD_RANGE[0], high: int = PERIOD_RANGE[1]) -> float:
    """Sample a variability period uniformly from ``[low, high]`` timestamps."""
    if low <= 0 or high <= low:
        raise ValueError("period range must satisfy 0 < low < high")
    return float(rng.uniform(low, high))


def gaussian_star(
    length: int,
    rng: np.random.Generator,
    std: float = DEFAULT_NOISE_STD,
    mean: float = 0.0,
) -> np.ndarray:
    """Magnitude series of a non-variable star: i.i.d. Gaussian noise."""
    if length <= 0:
        raise ValueError("length must be positive")
    return rng.normal(mean, std, size=length)


def sinusoidal_star(
    length: int,
    rng: np.random.Generator,
    period: float | None = None,
    amplitude: float = 2.0,
    noise_std: float = DEFAULT_NOISE_STD,
    phase: float | None = None,
) -> np.ndarray:
    """Magnitude series of a variable star: ``amplitude * sin(2 pi t / period)`` plus noise."""
    if length <= 0:
        raise ValueError("length must be positive")
    period = period if period is not None else sample_period(rng)
    phase = phase if phase is not None else float(rng.uniform(0.0, 2.0 * np.pi))
    positions = np.arange(length, dtype=np.float64)
    signal = amplitude * np.sin(2.0 * np.pi * positions / period + phase)
    return signal + rng.normal(0.0, noise_std, size=length)


def eclipsing_binary_star(
    length: int,
    rng: np.random.Generator,
    period: float | None = None,
    depth: float = 1.5,
    eclipse_fraction: float = 0.1,
    noise_std: float = DEFAULT_NOISE_STD,
) -> np.ndarray:
    """Magnitude series with periodic box-shaped eclipses (brightness dips).

    Used by the GWAC-like simulator to broaden the variety of normal variable
    behaviour the model must learn.
    """
    if not 0.0 < eclipse_fraction < 0.5:
        raise ValueError("eclipse_fraction must be in (0, 0.5)")
    period = period if period is not None else sample_period(rng)
    phase_offset = rng.uniform(0.0, period)
    positions = np.arange(length, dtype=np.float64)
    phase = ((positions + phase_offset) % period) / period
    signal = np.where(phase < eclipse_fraction, -depth, 0.0)
    return signal + rng.normal(0.0, noise_std, size=length)


def trended_star(
    length: int,
    rng: np.random.Generator,
    slope: float | None = None,
    noise_std: float = DEFAULT_NOISE_STD,
) -> np.ndarray:
    """Magnitude series with a slow linear trend (instrumental drift)."""
    slope = slope if slope is not None else float(rng.uniform(-0.5, 0.5)) / max(length, 1)
    positions = np.arange(length, dtype=np.float64)
    return slope * positions + rng.normal(0.0, noise_std, size=length)
