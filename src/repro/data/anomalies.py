"""True-anomaly templates injected into light curves.

The paper injects two categories of true anomalies (Fig. 5): transient shapes
taken from the PLAsTiCC astronomical-classification challenge and stellar
flares following the empirical white-light flare model of Davenport et al.
(2014).  Because the PLAsTiCC data files are not available offline, this
module provides analytic templates with the same morphology (documented as a
substitution in ``DESIGN.md``):

* ``flare_template`` — fast polynomial rise followed by a double-exponential
  decay (the Davenport et al. parameterisation);
* ``microlensing_template`` — the symmetric Paczynski magnification curve;
* ``eclipse_template`` — a transient box-like dip (occultation event);
* ``nova_template`` — sharp outburst with slow exponential decline;
* ``supernova_template`` — slower rise / decay transient.

All templates return arrays in relative magnitude units that are *added* to
the base signal, matching how the paper performs injection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "flare_template",
    "microlensing_template",
    "eclipse_template",
    "nova_template",
    "supernova_template",
    "AnomalyInjection",
    "inject_anomaly",
    "random_anomaly",
    "render_template",
    "ANOMALY_TYPES",
]


def flare_template(length: int, amplitude: float = 2.0, rise_fraction: float = 0.15) -> np.ndarray:
    """Davenport et al. (2014) white-light flare shape.

    The flare rises as a fourth-order polynomial over ``rise_fraction`` of the
    duration and then decays as the sum of two exponentials (an "impulsive"
    and a "gradual" phase).
    """
    if length < 2:
        raise ValueError("flare length must be at least 2")
    if amplitude <= 0:
        raise ValueError("amplitude must be positive")
    rise_length = max(int(length * rise_fraction), 1)
    decay_length = length - rise_length

    # Rise phase: polynomial in normalized time t in [-1, 0].
    t_rise = np.linspace(-1.0, 0.0, rise_length)
    rise = 1.0 + 1.941 * t_rise - 0.175 * t_rise ** 2 - 2.246 * t_rise ** 3 - 1.125 * t_rise ** 4
    rise = np.clip(rise, 0.0, None)

    # Decay phase: double exponential in normalized time t in [0, 6].
    t_decay = np.linspace(0.0, 6.0, decay_length) if decay_length > 0 else np.empty(0)
    decay = 0.6890 * np.exp(-1.600 * t_decay) + 0.3030 * np.exp(-0.2783 * t_decay)

    template = np.concatenate([rise, decay])
    return amplitude * template[:length]


def microlensing_template(length: int, amplitude: float = 1.5, impact: float = 0.3) -> np.ndarray:
    """Paczynski single-lens magnification curve (symmetric brightening)."""
    if length < 2:
        raise ValueError("length must be at least 2")
    time = np.linspace(-2.0, 2.0, length)
    u = np.sqrt(impact ** 2 + time ** 2)
    magnification = (u ** 2 + 2.0) / (u * np.sqrt(u ** 2 + 4.0))
    normalized = (magnification - magnification.min()) / (magnification.max() - magnification.min())
    return amplitude * normalized


def eclipse_template(length: int, depth: float = 1.5, ingress_fraction: float = 0.2) -> np.ndarray:
    """Transient occultation: trapezoidal dip in brightness."""
    if length < 3:
        raise ValueError("length must be at least 3")
    ingress = max(int(length * ingress_fraction), 1)
    flat = max(length - 2 * ingress, 1)
    down = np.linspace(0.0, -depth, ingress)
    bottom = np.full(flat, -depth)
    up = np.linspace(-depth, 0.0, ingress)
    template = np.concatenate([down, bottom, up])
    if len(template) < length:
        template = np.concatenate([template, np.zeros(length - len(template))])
    return template[:length]


def nova_template(length: int, amplitude: float = 3.0, decay_rate: float = 4.0) -> np.ndarray:
    """Nova-like outburst: near-instant rise, slow exponential decline."""
    if length < 2:
        raise ValueError("length must be at least 2")
    time = np.linspace(0.0, 1.0, length)
    rise_length = max(length // 20, 1)
    rise = np.linspace(0.0, 1.0, rise_length)
    decay = np.exp(-decay_rate * time[: length - rise_length])
    return amplitude * np.concatenate([rise, decay])[:length]


def supernova_template(length: int, amplitude: float = 2.5, peak_fraction: float = 0.3) -> np.ndarray:
    """Supernova-like transient: smooth rise to peak, slower decline."""
    if length < 3:
        raise ValueError("length must be at least 3")
    peak = max(int(length * peak_fraction), 1)
    rise = 1.0 - np.cos(np.linspace(0.0, np.pi, peak))
    rise = rise / rise.max()
    decay = np.exp(-3.0 * np.linspace(0.0, 1.0, length - peak))
    return amplitude * np.concatenate([rise, decay])[:length]


ANOMALY_TYPES = {
    "flare": flare_template,
    "microlensing": microlensing_template,
    "eclipse": eclipse_template,
    "nova": nova_template,
    "supernova": supernova_template,
}


@dataclass
class AnomalyInjection:
    """Record of a single injected anomaly (used to build ground-truth labels)."""

    variate: int
    start: int
    length: int
    kind: str

    @property
    def end(self) -> int:
        return self.start + self.length


def render_template(kind: str, length: int, amplitude: float) -> np.ndarray:
    """Render a named anomaly template with one uniform amplitude knob.

    Dispatches through :data:`ANOMALY_TYPES` and hides the one asymmetry in
    the template signatures (an eclipse's strength is its ``depth``), so
    callers that compose events by name — the scenario builders in
    :mod:`repro.simulation` — need no per-kind special cases.
    """
    if kind not in ANOMALY_TYPES:
        raise ValueError(f"unknown anomaly kind {kind!r}; options: {sorted(ANOMALY_TYPES)}")
    if kind == "eclipse":
        return eclipse_template(length, depth=amplitude)
    return ANOMALY_TYPES[kind](length, amplitude=amplitude)


def random_anomaly(
    rng: np.random.Generator,
    length_range: tuple[int, int] = (8, 40),
    amplitude_range: tuple[float, float] = (2.5, 5.0),
    kinds: tuple[str, ...] | None = None,
) -> tuple[str, np.ndarray]:
    """Sample an anomaly type and its template."""
    kinds = kinds or tuple(ANOMALY_TYPES)
    kind = str(rng.choice(list(kinds)))
    length = int(rng.integers(length_range[0], length_range[1] + 1))
    amplitude = float(rng.uniform(*amplitude_range))
    return kind, render_template(kind, length, amplitude)


def inject_anomaly(
    series: np.ndarray,
    labels: np.ndarray,
    variate: int,
    start: int,
    template: np.ndarray,
    kind: str = "flare",
) -> AnomalyInjection:
    """Add ``template`` to ``series[start:start+len, variate]`` and mark labels.

    Both ``series`` and ``labels`` are modified in place.
    """
    length = len(template)
    end = start + length
    if start < 0 or end > series.shape[0]:
        raise ValueError(
            f"anomaly [{start}, {end}) does not fit a series of length {series.shape[0]}"
        )
    if not 0 <= variate < series.shape[1]:
        raise ValueError(f"variate {variate} out of range")
    series[start:end, variate] += template
    labels[start:end, variate] = 1
    return AnomalyInjection(variate=variate, start=start, length=length, kind=kind)
