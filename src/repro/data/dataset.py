"""Dataset containers for astronomical multivariate time series.

A dataset bundles the train/test magnitude matrices with per-point anomaly
labels and concurrent-noise masks, mirroring the format used in the paper
(Section III-A and Table I): ``N`` variates (stars) over ``CT`` timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AstroDataset", "train_test_split"]


@dataclass
class AstroDataset:
    """An astronomical observation dataset.

    Attributes
    ----------
    name:
        Human-readable dataset name (e.g. ``"SyntheticMiddle"``).
    train:
        Training magnitudes, shape ``(T_train, N)``.
    test:
        Test magnitudes, shape ``(T_test, N)``.
    test_labels:
        Binary true-anomaly labels aligned with ``test``, shape ``(T_test, N)``.
    test_noise_mask:
        Binary mask of points affected by concurrent noise in the test split.
    train_noise_mask:
        Same mask for the training split (the training data is unlabeled for
        anomalies — the paper's setting is unsupervised — but noise is present).
    train_timestamps / test_timestamps:
        Observation times in seconds; irregular cadence is allowed.
    metadata:
        Free-form extras (e.g. which variates are variable stars).
    """

    name: str
    train: np.ndarray
    test: np.ndarray
    test_labels: np.ndarray
    test_noise_mask: np.ndarray
    train_noise_mask: np.ndarray | None = None
    train_timestamps: np.ndarray | None = None
    test_timestamps: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.train = np.asarray(self.train, dtype=np.float64)
        self.test = np.asarray(self.test, dtype=np.float64)
        self.test_labels = np.asarray(self.test_labels, dtype=np.int64)
        self.test_noise_mask = np.asarray(self.test_noise_mask, dtype=np.int64)
        if self.train.ndim != 2 or self.test.ndim != 2:
            raise ValueError("train/test must be 2-D arrays of shape (time, variates)")
        if self.train.shape[1] != self.test.shape[1]:
            raise ValueError(
                f"train and test must share the variate axis: "
                f"{self.train.shape[1]} != {self.test.shape[1]}"
            )
        if self.test_labels.shape != self.test.shape:
            raise ValueError("test_labels must have the same shape as test")
        if self.test_noise_mask.shape != self.test.shape:
            raise ValueError("test_noise_mask must have the same shape as test")
        if self.train_noise_mask is not None:
            self.train_noise_mask = np.asarray(self.train_noise_mask, dtype=np.int64)
            if self.train_noise_mask.shape != self.train.shape:
                raise ValueError("train_noise_mask must have the same shape as train")
        if self.train_timestamps is None:
            self.train_timestamps = np.arange(self.train.shape[0], dtype=np.float64)
        if self.test_timestamps is None:
            self.test_timestamps = np.arange(self.test.shape[0], dtype=np.float64)
        self.train_timestamps = np.asarray(self.train_timestamps, dtype=np.float64)
        self.test_timestamps = np.asarray(self.test_timestamps, dtype=np.float64)
        if len(self.train_timestamps) != self.train.shape[0]:
            raise ValueError("train_timestamps length must match train")
        if len(self.test_timestamps) != self.test.shape[0]:
            raise ValueError("test_timestamps length must match test")

    # ------------------------------------------------------------------
    @property
    def num_variates(self) -> int:
        """Number of stars ``N``."""
        return self.train.shape[1]

    @property
    def train_length(self) -> int:
        return self.train.shape[0]

    @property
    def test_length(self) -> int:
        return self.test.shape[0]

    @property
    def anomaly_rate(self) -> float:
        """Fraction of anomalous points in the test split (Table I "Anomaly %")."""
        return float(self.test_labels.mean())

    @property
    def noise_rate(self) -> float:
        """Fraction of points affected by concurrent noise (Table I "Noise %")."""
        return float(self.test_noise_mask.mean())

    @property
    def anomaly_to_noise_ratio(self) -> float:
        """The A/N ratio from Table I (true anomalies over potential candidates)."""
        noise = self.noise_rate
        if noise == 0.0:
            return float("inf") if self.anomaly_rate > 0 else 0.0
        return self.anomaly_rate / noise

    def anomaly_segments(self) -> list[tuple[int, int, int]]:
        """Return ``(variate, start, end)`` for each contiguous anomaly segment."""
        segments: list[tuple[int, int, int]] = []
        for variate in range(self.num_variates):
            labels = self.test_labels[:, variate]
            start = None
            for t, flag in enumerate(labels):
                if flag and start is None:
                    start = t
                elif not flag and start is not None:
                    segments.append((variate, start, t))
                    start = None
            if start is not None:
                segments.append((variate, start, len(labels)))
        return segments

    def noise_affected_variates(self) -> int:
        """Number of variates touched by concurrent noise (Table I "#Noise variates")."""
        return int((self.test_noise_mask.sum(axis=0) > 0).sum())

    def summary(self) -> dict:
        """Table I row for this dataset."""
        return {
            "dataset": self.name,
            "train": self.train_length,
            "test": self.test_length,
            "variates": self.num_variates,
            "anomaly_pct": 100.0 * self.anomaly_rate,
            "noise_pct": 100.0 * self.noise_rate,
            "a_n_ratio": self.anomaly_to_noise_ratio,
            "anomaly_segments": len(self.anomaly_segments()),
            "noise_variates": self.noise_affected_variates(),
        }


def train_test_split(
    series: np.ndarray,
    labels: np.ndarray,
    noise_mask: np.ndarray,
    train_fraction: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a full series into an unlabeled train part and a labeled test part.

    Returns ``(train, test, test_labels, test_noise_mask)``.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    split = int(len(series) * train_fraction)
    return (
        series[:split],
        series[split:],
        labels[split:],
        noise_mask[split:],
    )
