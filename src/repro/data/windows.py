"""Sliding-window utilities (Section III-A, Fig. 3).

The raw series ``T`` of shape ``(CT, N)`` is partitioned into overlapping
instances ``X_t = {x_{t-W+1}, ..., x_t}`` with a window of length ``W`` and
stride 1.  AERO additionally uses a *short* window ``Y_t`` of length ``omega``
covering the last part of each instance (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["sliding_windows", "WindowDataset", "WindowBatch"]


def sliding_windows(series: np.ndarray, window: int, stride: int = 1, copy: bool = True) -> np.ndarray:
    """Return all windows of ``window`` consecutive rows of ``series``.

    Output shape is ``(num_windows, window, N)`` for a 2-D input or
    ``(num_windows, window)`` for a 1-D input.  The windows are materialised
    through a strided view rather than a Python-level loop; pass
    ``copy=False`` to receive the read-only zero-copy view directly (the
    streaming subsystem's :class:`repro.streaming.RingBuffer` relies on the
    same trick for O(1) window extraction).
    """
    series = np.asarray(series)
    if window <= 0:
        raise ValueError("window must be positive")
    if stride <= 0:
        raise ValueError("stride must be positive")
    length = series.shape[0]
    if length < window:
        raise ValueError(f"series of length {length} is shorter than the window {window}")
    view = np.lib.stride_tricks.sliding_window_view(series, window, axis=0)
    if series.ndim > 1:
        # sliding_window_view puts the window axis last: (num, N, W) -> (num, W, N).
        view = np.moveaxis(view, -1, 1)
    view = view[::stride]
    return view.copy() if copy else view


@dataclass
class WindowBatch:
    """One training batch: long windows, short windows and their time stamps.

    Shapes follow the paper's notation with the variate axis first:

    * ``long``:  ``(batch, N, W)``
    * ``short``: ``(batch, N, omega)``
    * ``long_times`` / ``short_times``: ``(batch, W)`` / ``(batch, omega)``
    * ``end_indices``: index in the original series of the last timestamp of
      each window (used to map scores back onto the series).
    """

    long: np.ndarray
    short: np.ndarray
    long_times: np.ndarray
    short_times: np.ndarray
    end_indices: np.ndarray


class WindowDataset:
    """Iterates (long window, short window) instances over a series.

    Parameters
    ----------
    series:
        Input array of shape ``(T, N)``.
    window:
        Long window length ``W`` (paper default 200).
    short_window:
        Short window length ``omega`` (paper default 60); must not exceed ``W``.
    timestamps:
        Optional observation times of shape ``(T,)``; defaults to 0..T-1.
    stride:
        Step between consecutive window ends.
    """

    def __init__(
        self,
        series: np.ndarray,
        window: int,
        short_window: int,
        timestamps: np.ndarray | None = None,
        stride: int = 1,
    ):
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2:
            raise ValueError("series must be 2-D (time, variates)")
        if short_window > window:
            raise ValueError(f"short window ({short_window}) cannot exceed window ({window})")
        if short_window <= 0:
            raise ValueError("short window must be positive")
        if series.shape[0] < window:
            raise ValueError(
                f"series length {series.shape[0]} is shorter than the window {window}"
            )
        self.series = series
        self.window = window
        self.short_window = short_window
        self.stride = stride
        self.timestamps = (
            np.arange(series.shape[0], dtype=np.float64)
            if timestamps is None
            else np.asarray(timestamps, dtype=np.float64)
        )
        if len(self.timestamps) != series.shape[0]:
            raise ValueError("timestamps length must match the series")
        self.end_indices = np.arange(window - 1, series.shape[0], stride)

    def __len__(self) -> int:
        return len(self.end_indices)

    @property
    def num_variates(self) -> int:
        return self.series.shape[1]

    def instance(self, index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Return ``(long, short, long_times, short_times, end_index)`` for one window.

        ``long`` has shape ``(N, W)`` and ``short`` has shape ``(N, omega)``.
        """
        end = int(self.end_indices[index])
        start = end - self.window + 1
        short_start = end - self.short_window + 1
        long_window = self.series[start:end + 1].T
        short = self.series[short_start:end + 1].T
        return (
            long_window,
            short,
            self.timestamps[start:end + 1],
            self.timestamps[short_start:end + 1],
            end,
        )

    def subset(self, indices: np.ndarray) -> "WindowDataset":
        """A view over a subset of this dataset's windows (shared series).

        ``indices`` selects window positions (0-based, into the current
        window list).  The returned dataset shares the underlying series and
        timestamps — no rows are copied — and iterates only the selected
        windows.  Used by :class:`repro.training.TrainingSession` to carve a
        validation holdout out of the training windows.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("indices must be 1-D")
        if len(indices) and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError(
                f"window indices must be in [0, {len(self)}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        other = object.__new__(WindowDataset)
        other.series = self.series
        other.window = self.window
        other.short_window = self.short_window
        other.stride = self.stride
        other.timestamps = self.timestamps
        other.end_indices = self.end_indices[indices]
        return other

    def split(self, holdout_fraction: float) -> tuple["WindowDataset", "WindowDataset"]:
        """Time-ordered ``(train, holdout)`` split of the window list.

        The *last* ``ceil(holdout_fraction * len(self))`` windows form the
        holdout — a chronological split, the only sound validation protocol
        for overlapping sliding windows (a shuffled split would leak almost
        every holdout timestamp into training).  Both splits share the
        underlying series.  ``holdout_fraction`` must leave at least one
        training window.
        """
        if not 0.0 <= holdout_fraction < 1.0:
            raise ValueError(f"holdout_fraction must be in [0, 1), got {holdout_fraction}")
        total = len(self)
        holdout = int(np.ceil(holdout_fraction * total)) if holdout_fraction else 0
        if total - holdout < 1:
            raise ValueError(
                f"holdout_fraction={holdout_fraction} leaves no training windows "
                f"(dataset has {total})"
            )
        cut = total - holdout
        return self.subset(np.arange(cut)), self.subset(np.arange(cut, total))

    def batches(self, batch_size: int, shuffle: bool = False, rng: np.random.Generator | None = None) -> Iterator[WindowBatch]:
        """Yield :class:`WindowBatch` objects of up to ``batch_size`` windows."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if shuffle:
            rng = rng or np.random.default_rng(0)
            order = rng.permutation(order)
        for chunk_start in range(0, len(order), batch_size):
            chunk = order[chunk_start:chunk_start + batch_size]
            longs, shorts, long_times, short_times, ends = [], [], [], [], []
            for index in chunk:
                long_window, short, lt, st, end = self.instance(int(index))
                longs.append(long_window)
                shorts.append(short)
                long_times.append(lt)
                short_times.append(st)
                ends.append(end)
            yield WindowBatch(
                long=np.stack(longs),
                short=np.stack(shorts),
                long_times=np.stack(long_times),
                short_times=np.stack(short_times),
                end_indices=np.asarray(ends),
            )
