"""Synthetic dataset generators (Section IV-A, Table I).

Three datasets are produced, differing only in the anomaly-to-noise ratio
(A/N):

* ``SyntheticMiddle`` — baseline anomaly count and noise amount;
* ``SyntheticHigh``   — doubled number of anomalous segments (higher A/N);
* ``SyntheticLow``    — doubled amount of concurrent noise (lower A/N).

The construction follows the paper: basic signals are either Gaussian
(non-variable stars) or sinusoidal with period sampled in [100, 300]
(variable stars); concurrent noise of three kinds (drift, darkening,
brightening) is injected into a random subset of stars at random times;
true anomalies (flares and transient templates) are injected into the test
portion of individual stars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .anomalies import random_anomaly, inject_anomaly
from .dataset import AstroDataset
from .noise import inject_concurrent_noise, NOISE_TYPES
from .signals import gaussian_star, sinusoidal_star

__all__ = ["SyntheticConfig", "generate_synthetic", "load_synthetic", "SYNTHETIC_PRESETS"]


@dataclass
class SyntheticConfig:
    """Parameters controlling synthetic dataset generation."""

    name: str = "SyntheticMiddle"
    num_variates: int = 24
    train_length: int = 4000
    test_length: int = 4000
    variable_star_fraction: float = 0.5
    # concurrent noise
    num_noise_events: int = 6
    noise_length_range: tuple[int, int] = (20, 60)
    noise_variate_fraction: float = 0.7
    noise_kinds: tuple[str, ...] = ("drift", "darkening", "brightening")
    # true anomalies (test split only)
    num_anomaly_segments: int = 5
    anomaly_length_range: tuple[int, int] = (8, 40)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_variates < 2:
            raise ValueError("need at least 2 variates")
        if self.train_length < 10 or self.test_length < 10:
            raise ValueError("train/test length too short")
        if not 0.0 <= self.variable_star_fraction <= 1.0:
            raise ValueError("variable_star_fraction must be in [0, 1]")
        if not 0.0 < self.noise_variate_fraction <= 1.0:
            raise ValueError("noise_variate_fraction must be in (0, 1]")
        unknown = set(self.noise_kinds) - set(NOISE_TYPES)
        if unknown:
            raise ValueError(f"unknown noise kinds: {sorted(unknown)}")


#: Preset configurations matching the three datasets in Table I.  The
#: ``scale`` argument of :func:`load_synthetic` shrinks lengths for fast tests.
SYNTHETIC_PRESETS: dict[str, SyntheticConfig] = {
    "SyntheticMiddle": SyntheticConfig(
        name="SyntheticMiddle",
        num_anomaly_segments=5,
        num_noise_events=6,
        seed=7,
    ),
    "SyntheticHigh": SyntheticConfig(
        name="SyntheticHigh",
        num_anomaly_segments=10,
        num_noise_events=6,
        seed=11,
    ),
    "SyntheticLow": SyntheticConfig(
        name="SyntheticLow",
        num_anomaly_segments=5,
        num_noise_events=12,
        seed=13,
    ),
}


def _base_signals(config: SyntheticConfig, rng: np.random.Generator, length: int) -> tuple[np.ndarray, np.ndarray]:
    """Generate the base multivariate series and the variable-star indicator."""
    series = np.zeros((length, config.num_variates))
    is_variable = rng.random(config.num_variates) < config.variable_star_fraction
    for variate in range(config.num_variates):
        if is_variable[variate]:
            series[:, variate] = sinusoidal_star(length, rng)
        else:
            series[:, variate] = gaussian_star(length, rng)
    return series, is_variable


def _inject_noise_events(
    series: np.ndarray,
    noise_mask: np.ndarray,
    config: SyntheticConfig,
    rng: np.random.Generator,
    num_events: int,
    noise_variates: np.ndarray,
) -> list:
    events = []
    length = series.shape[0]
    for _ in range(num_events):
        event_length = int(rng.integers(*config.noise_length_range))
        start = int(rng.integers(0, max(length - event_length, 1)))
        subset_size = max(2, int(rng.integers(len(noise_variates) // 2, len(noise_variates) + 1)))
        affected = rng.choice(noise_variates, size=min(subset_size, len(noise_variates)), replace=False)
        kind = str(rng.choice(list(config.noise_kinds)))
        events.append(
            inject_concurrent_noise(
                series, noise_mask, rng, start=start, length=event_length,
                variates=affected, kind=kind,
            )
        )
    return events


def _inject_anomalies(
    series: np.ndarray,
    labels: np.ndarray,
    config: SyntheticConfig,
    rng: np.random.Generator,
) -> list:
    injections = []
    length = series.shape[0]
    for _ in range(config.num_anomaly_segments):
        variate = int(rng.integers(0, config.num_variates))
        # A detectable celestial event must stand out from the host star's own
        # variability, so the template amplitude scales with the star's spread
        # (flares on quiet stars are smaller in absolute magnitude than events
        # that are noticeable on large-amplitude variables).
        host_spread = max(float(series[:, variate].std()), 0.2)
        amplitude_range = (3.0 * host_spread, 6.0 * host_spread)
        kind, template = random_anomaly(
            rng, length_range=config.anomaly_length_range, amplitude_range=amplitude_range
        )
        start = int(rng.integers(0, max(length - len(template), 1)))
        injections.append(inject_anomaly(series, labels, variate, start, template, kind=kind))
    return injections


def generate_synthetic(config: SyntheticConfig) -> AstroDataset:
    """Generate a synthetic dataset according to ``config``."""
    rng = np.random.default_rng(config.seed)
    total_length = config.train_length + config.test_length

    series, is_variable = _base_signals(config, rng, total_length)
    noise_mask = np.zeros_like(series, dtype=np.int64)
    labels = np.zeros_like(series, dtype=np.int64)

    # Concurrent noise affects a fixed subset of stars (Table I: 17/24) but
    # each event touches a random subset of that group at a random time.
    num_noise_variates = max(2, int(round(config.noise_variate_fraction * config.num_variates)))
    noise_variates = rng.choice(config.num_variates, size=num_noise_variates, replace=False)

    # Noise occurs in both train and test: split the events proportionally.
    train_events = max(1, config.num_noise_events // 2)
    test_events = config.num_noise_events - train_events
    _inject_noise_events(
        series[: config.train_length], noise_mask[: config.train_length],
        config, rng, train_events, noise_variates,
    )
    _inject_noise_events(
        series[config.train_length:], noise_mask[config.train_length:],
        config, rng, test_events, noise_variates,
    )

    # True anomalies are only evaluated on the test split.
    test_series = series[config.train_length:]
    test_labels = labels[config.train_length:]
    injections = _inject_anomalies(test_series, test_labels, config, rng)

    return AstroDataset(
        name=config.name,
        train=series[: config.train_length],
        test=test_series,
        test_labels=test_labels,
        test_noise_mask=noise_mask[config.train_length:],
        train_noise_mask=noise_mask[: config.train_length],
        metadata={
            "is_variable_star": is_variable.tolist(),
            "noise_variates": sorted(int(v) for v in noise_variates),
            "anomaly_injections": [vars(inj) for inj in injections],
            "config": vars(config).copy(),
        },
    )


def load_synthetic(name: str = "SyntheticMiddle", scale: float = 1.0, seed: int | None = None) -> AstroDataset:
    """Load one of the preset synthetic datasets.

    Parameters
    ----------
    name:
        One of ``SyntheticMiddle``, ``SyntheticHigh``, ``SyntheticLow``.
    scale:
        Multiplier on the train/test lengths (and proportionally on the number
        of injected events); useful for fast unit tests and benchmarks.
    seed:
        Optional override of the preset seed.
    """
    if name not in SYNTHETIC_PRESETS:
        raise KeyError(f"unknown synthetic dataset {name!r}; options: {sorted(SYNTHETIC_PRESETS)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    preset = SYNTHETIC_PRESETS[name]
    config = SyntheticConfig(
        name=preset.name,
        num_variates=preset.num_variates,
        train_length=max(int(preset.train_length * scale), 50),
        test_length=max(int(preset.test_length * scale), 50),
        variable_star_fraction=preset.variable_star_fraction,
        num_noise_events=max(int(round(preset.num_noise_events * max(scale, 0.25))), 2),
        noise_length_range=preset.noise_length_range,
        noise_variate_fraction=preset.noise_variate_fraction,
        noise_kinds=preset.noise_kinds,
        num_anomaly_segments=max(int(round(preset.num_anomaly_segments * max(scale, 0.4))), 2),
        anomaly_length_range=preset.anomaly_length_range,
        seed=preset.seed if seed is None else seed,
    )
    return generate_synthetic(config)
