"""Preprocessing utilities: per-variate scaling and missing-value handling."""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler", "StandardScaler", "fill_missing"]


class MinMaxScaler:
    """Scale each variate to [0, 1] using statistics of the training split.

    AERO's decoder ends with a sigmoid (Eq. 9), so inputs are normalized to
    the unit interval before training, exactly as reconstruction targets.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0), eps: float = 1e-8):
        low, high = feature_range
        if high <= low:
            raise ValueError("feature_range must be increasing")
        self.feature_range = feature_range
        self.eps = eps
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "MinMaxScaler":
        series = np.asarray(series, dtype=np.float64)
        self.data_min_ = series.min(axis=0)
        self.data_max_ = series.max(axis=0)
        return self

    def transform(self, series: np.ndarray) -> np.ndarray:
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        series = np.asarray(series, dtype=np.float64)
        low, high = self.feature_range
        span = np.maximum(self.data_max_ - self.data_min_, self.eps)
        unit = (series - self.data_min_) / span
        return low + unit * (high - low)

    def fit_transform(self, series: np.ndarray) -> np.ndarray:
        return self.fit(series).transform(series)

    def inverse_transform(self, series: np.ndarray) -> np.ndarray:
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        low, high = self.feature_range
        span = np.maximum(self.data_max_ - self.data_min_, self.eps)
        unit = (np.asarray(series, dtype=np.float64) - low) / (high - low)
        return unit * span + self.data_min_


class StandardScaler:
    """Zero-mean unit-variance scaling per variate."""

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "StandardScaler":
        series = np.asarray(series, dtype=np.float64)
        self.mean_ = series.mean(axis=0)
        self.std_ = np.maximum(series.std(axis=0), self.eps)
        return self

    def transform(self, series: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (np.asarray(series, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, series: np.ndarray) -> np.ndarray:
        return self.fit(series).transform(series)

    def inverse_transform(self, series: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        return np.asarray(series, dtype=np.float64) * self.std_ + self.mean_


def fill_missing(series: np.ndarray, method: str = "interpolate") -> np.ndarray:
    """Replace NaNs in a (time, variates) array.

    ``interpolate`` linearly interpolates inside gaps and extends the nearest
    valid value at the edges; ``zero`` replaces NaNs with zeros; ``mean``
    replaces NaNs with the per-variate mean.
    """
    series = np.asarray(series, dtype=np.float64).copy()
    if series.ndim == 1:
        series = series[:, None]
        squeeze = True
    else:
        squeeze = False

    if method not in {"interpolate", "zero", "mean"}:
        raise ValueError(f"unknown fill method: {method!r}")

    for variate in range(series.shape[1]):
        column = series[:, variate]
        missing = np.isnan(column)
        if not missing.any():
            continue
        if missing.all():
            column[:] = 0.0
            continue
        if method == "zero":
            column[missing] = 0.0
        elif method == "mean":
            column[missing] = column[~missing].mean()
        else:
            valid_idx = np.flatnonzero(~missing)
            column[missing] = np.interp(np.flatnonzero(missing), valid_idx, column[valid_idx])
        series[:, variate] = column

    return series[:, 0] if squeeze else series
