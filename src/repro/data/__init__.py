"""Datasets, generators and preprocessing for astronomical time series."""

from .dataset import AstroDataset, train_test_split
from .signals import (
    gaussian_star,
    sinusoidal_star,
    eclipsing_binary_star,
    trended_star,
    sample_period,
)
from .anomalies import (
    flare_template,
    microlensing_template,
    eclipse_template,
    nova_template,
    supernova_template,
    inject_anomaly,
    random_anomaly,
    render_template,
    AnomalyInjection,
    ANOMALY_TYPES,
)
from .noise import (
    drift_noise,
    darkening_noise,
    brightening_noise,
    inject_concurrent_noise,
    NoiseEvent,
    NOISE_TYPES,
)
from .synthetic import SyntheticConfig, generate_synthetic, load_synthetic, SYNTHETIC_PRESETS
from .gwac import GwacConfig, generate_gwac, load_astroset, ASTROSET_PRESETS
from .windows import sliding_windows, WindowDataset, WindowBatch
from .preprocessing import MinMaxScaler, StandardScaler, fill_missing
from .statistics import dataset_statistics, statistics_table, format_statistics_table

__all__ = [
    "AstroDataset",
    "train_test_split",
    "gaussian_star",
    "sinusoidal_star",
    "eclipsing_binary_star",
    "trended_star",
    "sample_period",
    "flare_template",
    "microlensing_template",
    "eclipse_template",
    "nova_template",
    "supernova_template",
    "inject_anomaly",
    "random_anomaly",
    "render_template",
    "AnomalyInjection",
    "ANOMALY_TYPES",
    "drift_noise",
    "darkening_noise",
    "brightening_noise",
    "inject_concurrent_noise",
    "NoiseEvent",
    "NOISE_TYPES",
    "SyntheticConfig",
    "generate_synthetic",
    "load_synthetic",
    "SYNTHETIC_PRESETS",
    "GwacConfig",
    "generate_gwac",
    "load_astroset",
    "ASTROSET_PRESETS",
    "sliding_windows",
    "WindowDataset",
    "WindowBatch",
    "MinMaxScaler",
    "StandardScaler",
    "fill_missing",
    "dataset_statistics",
    "statistics_table",
    "format_statistics_table",
]
