"""Dataset statistics (Table I) and helpers for summarising collections of datasets."""

from __future__ import annotations

from typing import Iterable, Sequence

from .dataset import AstroDataset

__all__ = ["dataset_statistics", "statistics_table", "format_statistics_table"]

_COLUMNS = (
    "dataset",
    "train",
    "test",
    "variates",
    "anomaly_pct",
    "noise_pct",
    "a_n_ratio",
    "anomaly_segments",
    "noise_variates",
)


def dataset_statistics(dataset: AstroDataset) -> dict:
    """Compute the Table I row for one dataset."""
    return dataset.summary()


def statistics_table(datasets: Iterable[AstroDataset]) -> list[dict]:
    """Compute Table I for a collection of datasets."""
    return [dataset_statistics(ds) for ds in datasets]


def format_statistics_table(rows: Sequence[dict]) -> str:
    """Render Table I as an aligned plain-text table."""
    header = (
        f"{'Dataset':<18}{'#train':>8}{'#test':>8}{'#var':>6}"
        f"{'Anomaly%':>10}{'Noise%':>9}{'A/N':>8}{'#Seg':>6}{'#NoiseVar':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<18}{row['train']:>8}{row['test']:>8}{row['variates']:>6}"
            f"{row['anomaly_pct']:>10.3f}{row['noise_pct']:>9.3f}{row['a_n_ratio']:>8.3f}"
            f"{row['anomaly_segments']:>6}{row['noise_variates']:>11}"
        )
    return "\n".join(lines)
