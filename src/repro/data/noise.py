"""Concurrent-noise injectors.

Concurrent noise is the defining nuisance of astronomical observations in the
paper: environmental interference (cloud cover, extreme weather, sunrise)
causes a random subset of stars to fluctuate *simultaneously* for a period of
time.  Section IV-A injects three types:

* data drift — the mean level of the affected stars shifts up or down;
* darkening followed by recovery — cloud occlusion, simulated with half a
  period of a trigonometric function;
* brightening — sunrise, simulated with an exponential ramp.

Each injector operates on a subset of variates over a shared time span,
modifies the series in place and records the affected region in a noise mask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "drift_noise",
    "darkening_noise",
    "brightening_noise",
    "NoiseEvent",
    "inject_concurrent_noise",
    "NOISE_TYPES",
]


def drift_noise(length: int, magnitude: float = 1.0, direction: int = 1) -> np.ndarray:
    """Constant mean shift affecting every point in the window."""
    if length <= 0:
        raise ValueError("length must be positive")
    if direction not in (-1, 1):
        raise ValueError("direction must be +1 or -1")
    return np.full(length, direction * magnitude, dtype=np.float64)


def darkening_noise(length: int, depth: float = 1.5) -> np.ndarray:
    """Cloud-occlusion shape: half a period of a sinusoid (dip and recovery)."""
    if length <= 0:
        raise ValueError("length must be positive")
    phase = np.linspace(0.0, np.pi, length)
    return -depth * np.sin(phase)


def brightening_noise(length: int, scale: float = 1.5, rate: float = 3.0) -> np.ndarray:
    """Sunrise shape: exponential increase of the sky background."""
    if length <= 0:
        raise ValueError("length must be positive")
    time = np.linspace(0.0, 1.0, length)
    ramp = np.expm1(rate * time) / np.expm1(rate)
    return scale * ramp


NOISE_TYPES = {
    "drift": drift_noise,
    "darkening": darkening_noise,
    "brightening": brightening_noise,
}


@dataclass
class NoiseEvent:
    """Record of one concurrent-noise occurrence."""

    start: int
    length: int
    variates: tuple[int, ...]
    kind: str

    @property
    def end(self) -> int:
        return self.start + self.length


def inject_concurrent_noise(
    series: np.ndarray,
    noise_mask: np.ndarray,
    rng: np.random.Generator,
    start: int,
    length: int,
    variates: np.ndarray | list[int],
    kind: str = "darkening",
    intensity: float | None = None,
    per_variate_jitter: float = 0.2,
) -> NoiseEvent:
    """Inject one concurrent-noise event into ``series`` (in place).

    The same base shape is added to every affected variate, scaled by a small
    random per-variate factor so the correlated fluctuation is not perfectly
    identical across stars (as with a real cloud of varying optical depth).
    """
    if kind not in NOISE_TYPES:
        raise ValueError(f"unknown noise kind: {kind!r}; expected one of {sorted(NOISE_TYPES)}")
    end = start + length
    if start < 0 or end > series.shape[0]:
        raise ValueError(
            f"noise window [{start}, {end}) does not fit a series of length {series.shape[0]}"
        )
    variates = np.asarray(list(variates), dtype=np.int64)
    if variates.size == 0:
        raise ValueError("at least one variate must be affected")
    if variates.min() < 0 or variates.max() >= series.shape[1]:
        raise ValueError("variate index out of range")

    intensity = intensity if intensity is not None else float(rng.uniform(0.4, 1.5))
    if kind == "drift":
        direction = int(rng.choice([-1, 1]))
        base = drift_noise(length, magnitude=intensity, direction=direction)
    elif kind == "darkening":
        base = darkening_noise(length, depth=intensity)
    else:
        base = brightening_noise(length, scale=intensity)

    for variate in variates:
        scale = 1.0 + rng.uniform(-per_variate_jitter, per_variate_jitter)
        series[start:end, variate] += scale * base
        noise_mask[start:end, variate] = 1

    return NoiseEvent(start=start, length=length, variates=tuple(int(v) for v in variates), kind=kind)
