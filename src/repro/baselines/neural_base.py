"""Shared infrastructure for the neural-network baselines.

All deep baselines (Donut, OmniAnomaly, AnomalyTransformer, TranAD, GDN, ESG,
TimesNet) follow the same outer loop: standardise the series, slide a window
over it, train a model on the windows with Adam, and at inference assign each
timestamp the score produced by the window that ends there.  This class
factors out that loop so each baseline only defines its model, its loss and
its per-window scores.
"""

from __future__ import annotations

import numpy as np

from ..data.preprocessing import StandardScaler
from ..nn import Adam, clip_grad_norm, no_grad
from .base import BaseDetector

__all__ = ["WindowedNeuralDetector"]


class WindowedNeuralDetector(BaseDetector):
    """Base class handling windowing, training and scoring for neural baselines."""

    name = "neural"

    def __init__(
        self,
        window: int = 32,
        train_stride: int = 2,
        epochs: int = 5,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        grad_clip: float = 5.0,
        seed: int = 0,
        pot_level: float = 0.99,
        pot_q: float = 1e-3,
    ):
        super().__init__(pot_level, pot_q)
        if window < 2:
            raise ValueError("window must be at least 2")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        self.window = window
        self.train_stride = max(train_stride, 1)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.grad_clip = grad_clip
        self.seed = seed
        self.scaler: StandardScaler | None = None
        self._train_tail: np.ndarray | None = None
        self._model_built = False
        self.training_losses_: list[float] = []

    # ------------------------------------------------------------------
    # hooks implemented by each baseline
    # ------------------------------------------------------------------
    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        """Construct the model; called once at the beginning of ``fit``."""
        raise NotImplementedError

    def _parameters(self):
        """Return the trainable parameters of the model."""
        raise NotImplementedError

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        """Training loss (a Tensor) for a batch of windows ``(B, window, N)``."""
        raise NotImplementedError

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        """Anomaly scores ``(B, N)`` for the *last* timestamp of each window."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _windows(self, series: np.ndarray, stride: int) -> tuple[np.ndarray, np.ndarray]:
        """All windows of the series with the given stride, plus their end indices."""
        length = series.shape[0]
        ends = np.arange(self.window - 1, length, stride)
        windows = np.stack([series[end - self.window + 1: end + 1] for end in ends])
        return windows, ends

    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "WindowedNeuralDetector":
        train = self._validate_series(train)
        rng = np.random.default_rng(self.seed)
        self.window = min(self.window, train.shape[0])
        self.scaler = StandardScaler().fit(train)
        scaled = self.scaler.transform(train)

        self._build(train.shape[1], rng)
        self._model_built = True
        optimizer = Adam(self._parameters(), lr=self.learning_rate)

        windows, _ = self._windows(scaled, self.train_stride)
        self.training_losses_ = []
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            epoch_losses = []
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start:start + self.batch_size]]
                loss = self._loss(batch, rng)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self._parameters(), self.grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            self.training_losses_.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)

        # Calibrate before storing the context tail so that scoring the
        # training series itself does not prepend (duplicate) its own tail.
        self._train_tail = None
        self._calibrate(train, timestamps)
        self._train_tail = scaled[-(self.window - 1):] if self.window > 1 else scaled[:0]
        return self

    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        series = self._validate_series(series)
        if not self._model_built or self.scaler is None:
            raise RuntimeError(f"{self.name} must be fitted before scoring")
        scaled = self.scaler.transform(series)
        num_points = scaled.shape[0]

        context = self._train_tail if self._train_tail is not None else scaled[:0]
        full = np.concatenate([context, scaled], axis=0) if len(context) else scaled
        offset = full.shape[0] - num_points

        scores = np.zeros_like(scaled)
        covered = np.zeros(num_points, dtype=bool)
        if full.shape[0] < self.window:
            return scores
        with no_grad():
            ends = np.arange(self.window - 1, full.shape[0])
            for start in range(0, len(ends), self.batch_size):
                chunk = ends[start:start + self.batch_size]
                windows = np.stack([full[e - self.window + 1: e + 1] for e in chunk])
                batch_scores = self._window_scores(windows)
                for row, end in enumerate(chunk):
                    position = int(end) - offset
                    if 0 <= position < num_points:
                        scores[position] = batch_scores[row]
                        covered[position] = True
        if covered.any():
            first = int(np.argmax(covered))
            scores[:first] = scores[first]
        return scores
