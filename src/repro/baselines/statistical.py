"""Statistical (training-free or lightly calibrated) univariate baselines.

* :class:`TemplateMatching` — the supervised celestial-event discovery method
  of SciDetector (Duan et al., ICDE 2019): pre-defined event templates are
  slid over each light curve and the normalised cross-correlation is the
  anomaly score.
* :class:`SpectralResidual` — SR (Ren et al., KDD 2019): saliency detection
  in the frequency domain; training-free.
* :class:`Spot` — SPOT (Siffer et al., KDD 2017): extreme-value scores per
  variate (the EVT thresholding itself is shared by the evaluation protocol).
* :class:`FluxEV` — FluxEV (Li et al., WSDM 2021): two-step fluctuation
  extraction followed by exponentially weighted smoothing, which turns
  pattern deviations (not only extreme values) into large scores.
"""

from __future__ import annotations

import numpy as np

from ..data.anomalies import flare_template, microlensing_template, nova_template
from .base import BaseDetector

__all__ = ["TemplateMatching", "SpectralResidual", "Spot", "FluxEV"]


class TemplateMatching(BaseDetector):
    """Matched filtering against a bank of pre-defined transient templates."""

    name = "TM"

    def __init__(self, template_length: int = 24, pot_level: float = 0.99, pot_q: float = 1e-3):
        super().__init__(pot_level, pot_q)
        if template_length < 4:
            raise ValueError("template_length must be at least 4")
        self.template_length = template_length
        self.templates = self._build_templates(template_length)
        self._train_mean: np.ndarray | None = None
        self._train_std: np.ndarray | None = None

    @staticmethod
    def _build_templates(length: int) -> list[np.ndarray]:
        templates = [
            flare_template(length, amplitude=1.0),
            microlensing_template(length, amplitude=1.0),
            nova_template(length, amplitude=1.0),
        ]
        return [(t - t.mean()) / (np.linalg.norm(t - t.mean()) + 1e-12) for t in templates]

    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "TemplateMatching":
        train = self._validate_series(train)
        self._train_mean = train.mean(axis=0)
        self._train_std = np.maximum(train.std(axis=0), 1e-8)
        self._calibrate(train, timestamps)
        return self

    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        series = self._validate_series(series)
        if self._train_mean is None:
            raise RuntimeError("TemplateMatching must be fitted before scoring")
        normalized = (series - self._train_mean) / self._train_std
        length, num_variates = normalized.shape
        scores = np.zeros_like(normalized)
        window = min(self.template_length, length)
        templates = self._build_templates(window) if window != self.template_length else self.templates
        for variate in range(num_variates):
            column = normalized[:, variate]
            best = np.zeros(length)
            for template in templates:
                correlation = np.correlate(column, template, mode="full")[window - 1: window - 1 + length]
                best = np.maximum(best, np.abs(correlation))
            scores[:, variate] = best
        return scores


class SpectralResidual(BaseDetector):
    """Spectral-residual saliency scores (SR), applied per variate."""

    name = "SR"

    def __init__(
        self,
        smoothing_window: int = 3,
        score_window: int = 21,
        pot_level: float = 0.99,
        pot_q: float = 1e-3,
    ):
        super().__init__(pot_level, pot_q)
        if smoothing_window < 1 or score_window < 1:
            raise ValueError("window sizes must be positive")
        self.smoothing_window = smoothing_window
        self.score_window = score_window

    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "SpectralResidual":
        train = self._validate_series(train)
        # SR is training-free; only POT calibration uses the training split.
        self._calibrate(train, timestamps)
        return self

    def _saliency(self, column: np.ndarray) -> np.ndarray:
        spectrum = np.fft.fft(column)
        amplitude = np.abs(spectrum)
        amplitude = np.maximum(amplitude, 1e-12)
        log_amplitude = np.log(amplitude)
        kernel = np.ones(self.smoothing_window) / self.smoothing_window
        smoothed = np.convolve(log_amplitude, kernel, mode="same")
        spectral_residual = log_amplitude - smoothed
        saliency = np.abs(np.fft.ifft(np.exp(spectral_residual + 1j * np.angle(spectrum))))
        return saliency

    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        series = self._validate_series(series)
        scores = np.zeros_like(series)
        for variate in range(series.shape[1]):
            saliency = self._saliency(series[:, variate])
            window = min(self.score_window, len(saliency))
            kernel = np.ones(window) / window
            local_average = np.convolve(saliency, kernel, mode="same")
            scores[:, variate] = (saliency - local_average) / np.maximum(local_average, 1e-8)
        return np.maximum(scores, 0.0)


class Spot(BaseDetector):
    """SPOT-style extreme-value scores: absolute deviation from the running level."""

    name = "SPOT"

    def __init__(self, pot_level: float = 0.99, pot_q: float = 1e-3):
        super().__init__(pot_level, pot_q)
        self._train_median: np.ndarray | None = None
        self._train_mad: np.ndarray | None = None

    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "Spot":
        train = self._validate_series(train)
        self._train_median = np.median(train, axis=0)
        mad = np.median(np.abs(train - self._train_median), axis=0)
        self._train_mad = np.maximum(mad, 1e-8)
        self._calibrate(train, timestamps)
        return self

    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        series = self._validate_series(series)
        if self._train_median is None:
            raise RuntimeError("SPOT must be fitted before scoring")
        return np.abs(series - self._train_median) / self._train_mad


class FluxEV(BaseDetector):
    """FluxEV: fluctuation extraction + EWMA smoothing before EVT thresholding."""

    name = "FluxEV"

    def __init__(
        self,
        local_window: int = 10,
        period: int | None = None,
        smoothing: float = 0.3,
        pot_level: float = 0.99,
        pot_q: float = 1e-3,
    ):
        super().__init__(pot_level, pot_q)
        if local_window < 2:
            raise ValueError("local_window must be at least 2")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.local_window = local_window
        self.period = period
        self.smoothing = smoothing

    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "FluxEV":
        train = self._validate_series(train)
        self._calibrate(train, timestamps)
        return self

    def _fluctuation(self, column: np.ndarray) -> np.ndarray:
        """First-step smoothing: remove the locally predictable component."""
        length = len(column)
        window = min(self.local_window, length)
        padded = np.concatenate([np.full(window, column[0]), column])
        local_mean = np.array([padded[i:i + window].mean() for i in range(length)])
        residual = column - local_mean
        # Second step: EWMA of the squared residuals captures the magnitude of
        # recent fluctuation; deviations of the residual beyond that level are
        # the anomaly evidence.
        ewma = np.zeros(length)
        running = 0.0
        for index in range(length):
            running = self.smoothing * residual[index] ** 2 + (1.0 - self.smoothing) * running
            ewma[index] = running
        spread = np.sqrt(np.maximum(ewma, 1e-12))
        return np.abs(residual) / np.maximum(np.median(spread), 1e-8)

    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        series = self._validate_series(series)
        scores = np.zeros_like(series)
        for variate in range(series.shape[1]):
            scores[:, variate] = self._fluctuation(series[:, variate])
        return scores
