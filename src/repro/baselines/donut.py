"""Donut (Xu et al., WWW 2018): univariate VAE reconstruction.

Each variate is treated independently (univariate method).  A window of the
light curve is encoded into a diagonal-Gaussian latent, decoded back, and the
anomaly score is the reconstruction error at the last timestamp.  The model
is shared across variates, mirroring how AERO shares its temporal module.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Sequential, Tanh, Tensor, kl_divergence_normal, mse_loss
from .neural_base import WindowedNeuralDetector

__all__ = ["Donut", "VariationalAutoencoder"]


class VariationalAutoencoder(Module):
    """A small MLP VAE over fixed-length windows."""

    def __init__(self, window: int, hidden: int = 32, latent: int = 8, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.window = window
        self.latent = latent
        self.encoder = Sequential(Linear(window, hidden, rng=rng), Tanh())
        self.mean_head = Linear(hidden, latent, rng=rng)
        self.log_var_head = Linear(hidden, latent, rng=rng)
        self.decoder = Sequential(Linear(latent, hidden, rng=rng), Tanh(), Linear(hidden, window, rng=rng))

    def encode(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder(x)
        return self.mean_head(hidden), self.log_var_head(hidden)

    def reparameterize(self, mean: Tensor, log_var: Tensor, rng: np.random.Generator) -> Tensor:
        noise = Tensor(rng.standard_normal(mean.shape))
        return mean + (log_var * 0.5).exp() * noise

    def decode(self, latent: Tensor) -> Tensor:
        return self.decoder(latent)

    def forward(self, x: Tensor, rng: np.random.Generator) -> tuple[Tensor, Tensor, Tensor]:
        mean, log_var = self.encode(x)
        latent = self.reparameterize(mean, log_var, rng)
        return self.decode(latent), mean, log_var


class Donut(WindowedNeuralDetector):
    """Univariate VAE anomaly detector applied to each star independently."""

    name = "Donut"

    def __init__(
        self,
        window: int = 32,
        hidden: int = 32,
        latent: int = 8,
        kl_weight: float = 0.1,
        missing_injection_rate: float = 0.05,
        **kwargs,
    ):
        super().__init__(window=window, **kwargs)
        self.hidden = hidden
        self.latent = latent
        self.kl_weight = kl_weight
        self.missing_injection_rate = missing_injection_rate
        self.vae: VariationalAutoencoder | None = None

    # ------------------------------------------------------------------
    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        self.vae = VariationalAutoencoder(self.window, self.hidden, self.latent, rng=rng)

    def _parameters(self):
        return self.vae.parameters()

    def _fold(self, windows: np.ndarray) -> np.ndarray:
        """(B, window, N) -> (B * N, window): each variate is its own sample."""
        batch, window, variates = windows.shape
        return windows.transpose(0, 2, 1).reshape(batch * variates, window)

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        folded = self._fold(windows)
        # Missing-data injection (Donut's M-ELBO trick): randomly zero some
        # inputs so the decoder cannot simply copy them.
        mask = rng.random(folded.shape) < self.missing_injection_rate
        corrupted = folded.copy()
        corrupted[mask] = 0.0
        reconstruction, mean, log_var = self.vae(Tensor(corrupted), rng)
        return mse_loss(reconstruction, Tensor(folded)) + self.kl_weight * kl_divergence_normal(mean, log_var)

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        batch, _, variates = windows.shape
        folded = self._fold(windows)
        mean, _ = self.vae.encode(Tensor(folded))
        reconstruction = self.vae.decode(mean).data
        errors = np.abs(folded - reconstruction)[:, -1]
        return errors.reshape(batch, variates)
