"""ESG (Ye et al., KDD 2022): evolving graph structure learning for forecasting.

ESG learns a *dynamic* graph: node states evolve over time through a recurrent
update driven by the observations, and the graph at each step is derived from
the current node states.  Forecast errors provide the anomaly scores (the
paper adapts ESG to anomaly detection through single-step prediction errors,
Section IV-B).

This implementation keeps the essential structure at a small scale:

* a GRU cell updates per-node state vectors from each observation;
* the evolving adjacency is the (non-negative) cosine similarity of the node
  states at the end of the window;
* a GCN over the evolving graph plus a linear readout forecasts the next
  value of every node.
"""

from __future__ import annotations

import numpy as np

from ..nn import GCNLayer, GRUCell, Linear, Module, Parameter, Tensor, init, mse_loss, normalize_adjacency
from .neural_base import WindowedNeuralDetector

__all__ = ["ESG"]


class _EsgModel(Module):
    """Evolving-graph forecaster."""

    def __init__(self, num_variates: int, state_dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_variates = num_variates
        self.state_dim = state_dim
        self.initial_state = Parameter(init.normal((num_variates, state_dim), rng, std=0.1))
        self.state_update = GRUCell(1, state_dim, rng=rng)
        self.gcn = GCNLayer(state_dim, state_dim, activation="relu", rng=rng)
        self.readout = Linear(2 * state_dim, 1, rng=rng)
        self.last_adjacency: np.ndarray | None = None

    def _evolve_states(self, window: np.ndarray) -> Tensor:
        """Run the recurrent state update over one window ``(length, N)``."""
        states = self.initial_state
        for t in range(window.shape[0]):
            observations = Tensor(window[t][:, None])
            states = self.state_update(observations, states)
        return states

    def evolving_adjacency(self, states: Tensor) -> np.ndarray:
        values = states.data
        norms = np.maximum(np.linalg.norm(values, axis=1, keepdims=True), 1e-8)
        normalized = values / norms
        similarity = normalized @ normalized.T
        return np.clip(similarity, 0.0, 1.0)

    def forward(self, window: np.ndarray) -> Tensor:
        """Forecast the next value of each node from one window ``(length, N)``."""
        states = self._evolve_states(window)
        adjacency = self.evolving_adjacency(states)
        self.last_adjacency = adjacency
        normalized = normalize_adjacency(adjacency, add_self_loops=True)
        propagated = self.gcn(states, normalized)
        combined = Tensor.concat([states, propagated], axis=-1)
        return self.readout(combined).squeeze(-1)


class ESG(WindowedNeuralDetector):
    """Evolving graph structure learning baseline (forecast-error scores)."""

    name = "ESG"

    def __init__(self, window: int = 16, state_dim: int = 8, **kwargs):
        super().__init__(window=window, **kwargs)
        self.state_dim = state_dim
        self.model: _EsgModel | None = None

    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        self.model = _EsgModel(num_variates, self.state_dim, rng)

    def _parameters(self):
        return self.model.parameters()

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        predictions = []
        targets = []
        for window in windows:
            predictions.append(self.model(window[:-1]))
            targets.append(window[-1])
        prediction = Tensor.stack(predictions, axis=0)
        return mse_loss(prediction, Tensor(np.stack(targets)))

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        scores = np.zeros((windows.shape[0], windows.shape[2]))
        for index, window in enumerate(windows):
            prediction = self.model(window[:-1]).data
            scores[index] = np.abs(window[-1] - prediction)
        return scores
