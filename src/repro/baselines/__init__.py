"""The eleven comparison methods of the paper's evaluation (Section IV-B).

Univariate methods: Template Matching, SR, SPOT, FluxEV, Donut.
Multivariate methods: OmniAnomaly, AnomalyTransformer, TranAD, GDN, ESG, TimesNet.

``get_baseline(name)`` constructs a baseline by its table name, and
``BASELINE_REGISTRY`` maps names to classes.  All baselines share the
``fit`` / ``score`` / ``evaluate`` protocol of :class:`BaseDetector`, with the
same POT + point-adjust evaluation applied by the experiment harness.
"""

from __future__ import annotations

from .base import BaseDetector
from .neural_base import WindowedNeuralDetector
from .statistical import TemplateMatching, SpectralResidual, Spot, FluxEV
from .donut import Donut, VariationalAutoencoder
from .omni_anomaly import OmniAnomaly
from .anomaly_transformer import AnomalyTransformer
from .tranad import TranAD
from .gdn import GDN
from .esg import ESG
from .timesnet import TimesNet, dominant_periods

__all__ = [
    "BaseDetector",
    "WindowedNeuralDetector",
    "TemplateMatching",
    "SpectralResidual",
    "Spot",
    "FluxEV",
    "Donut",
    "VariationalAutoencoder",
    "OmniAnomaly",
    "AnomalyTransformer",
    "TranAD",
    "GDN",
    "ESG",
    "TimesNet",
    "dominant_periods",
    "BASELINE_REGISTRY",
    "UNIVARIATE_BASELINES",
    "MULTIVARIATE_BASELINES",
    "get_baseline",
]

#: Table name -> detector class, in the order of Tables II and III.
BASELINE_REGISTRY: dict[str, type[BaseDetector]] = {
    "TM": TemplateMatching,
    "SR": SpectralResidual,
    "SPOT": Spot,
    "FluxEV": FluxEV,
    "Donut": Donut,
    "OmniAnomaly": OmniAnomaly,
    "AnomalyTransformer": AnomalyTransformer,
    "TranAD": TranAD,
    "GDN": GDN,
    "ESG": ESG,
    "TimesNet": TimesNet,
}

UNIVARIATE_BASELINES = ("TM", "SR", "SPOT", "FluxEV", "Donut")
MULTIVARIATE_BASELINES = ("OmniAnomaly", "AnomalyTransformer", "TranAD", "GDN", "ESG", "TimesNet")


def get_baseline(name: str, **kwargs) -> BaseDetector:
    """Instantiate a baseline by its table name (e.g. ``"SR"`` or ``"GDN"``)."""
    if name not in BASELINE_REGISTRY:
        raise KeyError(f"unknown baseline {name!r}; options: {sorted(BASELINE_REGISTRY)}")
    return BASELINE_REGISTRY[name](**kwargs)
