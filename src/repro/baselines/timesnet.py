"""TimesNet (Wu et al., ICLR 2023): temporal 2-D variation modelling.

TimesNet detects the dominant periods of the window with the FFT, folds the
1-D series into a 2-D tensor of shape (period, cycles), applies 2-D
convolutions to capture intra- and inter-period variation, unfolds the result
and aggregates over periods weighted by their spectral amplitude.  The anomaly
score is the per-variate reconstruction error at the last timestamp.
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv2d, Linear, Module, Tensor, mse_loss
from .neural_base import WindowedNeuralDetector

__all__ = ["TimesNet", "dominant_periods"]


def dominant_periods(window: np.ndarray, top_k: int = 2) -> list[int]:
    """Return the ``top_k`` dominant periods of a (length, variates) window.

    Periods are estimated from the amplitude spectrum averaged over variates,
    exactly as in the TimesBlock of the original paper.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.ndim == 1:
        window = window[:, None]
    length = window.shape[0]
    spectrum = np.abs(np.fft.rfft(window, axis=0)).mean(axis=1)
    spectrum[0] = 0.0  # ignore the DC component
    if len(spectrum) <= 1:
        return [max(length, 1)]
    order = np.argsort(spectrum)[::-1]
    periods = []
    for frequency in order[:top_k]:
        if frequency == 0:
            continue
        period = max(int(round(length / frequency)), 2)
        periods.append(min(period, length))
    return periods or [length]


class _TimesBlock(Module):
    """One TimesBlock: fold by period, 2-D convolution, unfold, aggregate."""

    def __init__(self, d_model: int, rng: np.random.Generator):
        super().__init__()
        self.conv = Conv2d(d_model, d_model, kernel_size=3, rng=rng)

    def forward(self, hidden: Tensor, periods: list[int]) -> Tensor:
        batch, length, channels = hidden.shape
        outputs = []
        for period in periods:
            period = max(min(period, length), 1)
            cycles = int(np.ceil(length / period))
            padded_length = cycles * period
            if padded_length > length:
                padding = Tensor(np.zeros((batch, padded_length - length, channels)))
                padded = Tensor.concat([hidden, padding], axis=1)
            else:
                padded = hidden
            folded = padded.reshape(batch, cycles, period, channels).transpose(0, 3, 1, 2)
            convolved = self.conv(folded)
            unfolded = convolved.transpose(0, 2, 3, 1).reshape(batch, padded_length, channels)
            outputs.append(unfolded[:, :length, :])
        aggregated = outputs[0]
        for extra in outputs[1:]:
            aggregated = aggregated + extra
        return aggregated * (1.0 / len(outputs)) + hidden


class _TimesNetModel(Module):
    """Embedding, a TimesBlock and a reconstruction head."""

    def __init__(self, num_variates: int, d_model: int, rng: np.random.Generator):
        super().__init__()
        self.input_projection = Linear(num_variates, d_model, rng=rng)
        self.block = _TimesBlock(d_model, rng)
        self.output_projection = Linear(d_model, num_variates, rng=rng)

    def forward(self, windows: Tensor, periods: list[int]) -> Tensor:
        hidden = self.input_projection(windows)
        hidden = self.block(hidden, periods)
        return self.output_projection(hidden)


class TimesNet(WindowedNeuralDetector):
    """FFT-period folding + 2-D convolution reconstruction baseline."""

    name = "TimesNet"

    def __init__(self, window: int = 32, d_model: int = 8, top_k_periods: int = 2, mask_rate: float = 0.2, **kwargs):
        super().__init__(window=window, **kwargs)
        self.d_model = d_model
        self.top_k_periods = top_k_periods
        self.mask_rate = mask_rate
        self.model: _TimesNetModel | None = None

    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        self.model = _TimesNetModel(num_variates, self.d_model, rng)

    def _parameters(self):
        return self.model.parameters()

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        periods = dominant_periods(windows.mean(axis=0), self.top_k_periods)
        # Random masking prevents the block from collapsing to an identity map.
        mask = rng.random(windows.shape) < self.mask_rate
        corrupted = windows.copy()
        corrupted[mask] = 0.0
        reconstruction = self.model(Tensor(corrupted), periods)
        return mse_loss(reconstruction, Tensor(windows))

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        periods = dominant_periods(windows.mean(axis=0), self.top_k_periods)
        reconstruction = self.model(Tensor(windows), periods).data
        return np.abs(windows - reconstruction)[:, -1, :]
