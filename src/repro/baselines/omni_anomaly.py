"""OmniAnomaly (Su et al., KDD 2019): stochastic recurrent VAE for multivariate series.

The model runs a GRU over the multivariate window, maps the final hidden state
to a Gaussian latent, and decodes the whole window jointly.  Anomaly scores
are the per-variate reconstruction errors at the last timestamp (the paper's
reconstruction-probability criterion reduces to this under a fixed-variance
Gaussian likelihood).
"""

from __future__ import annotations

import numpy as np

from ..nn import GRU, Linear, Module, Sequential, Tanh, Tensor, kl_divergence_normal, mse_loss
from .neural_base import WindowedNeuralDetector

__all__ = ["OmniAnomaly"]


class _RecurrentVae(Module):
    """GRU encoder + MLP decoder over multivariate windows."""

    def __init__(self, num_variates: int, window: int, hidden: int, latent: int, rng: np.random.Generator):
        super().__init__()
        self.window = window
        self.num_variates = num_variates
        self.encoder_gru = GRU(num_variates, hidden, rng=rng)
        self.mean_head = Linear(hidden, latent, rng=rng)
        self.log_var_head = Linear(hidden, latent, rng=rng)
        self.decoder = Sequential(
            Linear(latent, hidden, rng=rng),
            Tanh(),
            Linear(hidden, window * num_variates, rng=rng),
        )

    def encode(self, windows: Tensor) -> tuple[Tensor, Tensor]:
        _, final_hidden = self.encoder_gru(windows)
        return self.mean_head(final_hidden), self.log_var_head(final_hidden)

    def decode(self, latent: Tensor, batch: int) -> Tensor:
        flat = self.decoder(latent)
        return flat.reshape(batch, self.window, self.num_variates)


class OmniAnomaly(WindowedNeuralDetector):
    """Multivariate GRU-VAE anomaly detector."""

    name = "OmniAnomaly"

    def __init__(self, window: int = 32, hidden: int = 32, latent: int = 8, kl_weight: float = 0.1, **kwargs):
        super().__init__(window=window, **kwargs)
        self.hidden = hidden
        self.latent = latent
        self.kl_weight = kl_weight
        self.vae: _RecurrentVae | None = None

    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        self.vae = _RecurrentVae(num_variates, self.window, self.hidden, self.latent, rng)

    def _parameters(self):
        return self.vae.parameters()

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        batch = windows.shape[0]
        inputs = Tensor(windows)
        mean, log_var = self.vae.encode(inputs)
        noise = Tensor(rng.standard_normal(mean.shape))
        latent = mean + (log_var * 0.5).exp() * noise
        reconstruction = self.vae.decode(latent, batch)
        return mse_loss(reconstruction, inputs) + self.kl_weight * kl_divergence_normal(mean, log_var)

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        batch = windows.shape[0]
        mean, _ = self.vae.encode(Tensor(windows))
        reconstruction = self.vae.decode(mean, batch).data
        return np.abs(windows - reconstruction)[:, -1, :]
