"""TranAD (Tuli et al., VLDB 2022): self-conditioned adversarial Transformer.

TranAD runs two reconstruction phases.  Phase 1 reconstructs the window from
the input with a zero "focus score"; phase 2 conditions the encoder on the
phase-1 error (the focus score), which amplifies regions the model failed to
reconstruct.  Two decoders are trained adversarially; following the original
implementation the anomaly score is the average of both phases' errors.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerDecoderLayer, TransformerEncoderLayer, mse_loss
from .neural_base import WindowedNeuralDetector

__all__ = ["TranAD"]


class _TranADModel(Module):
    """Encoder shared by two decoders; input is [window ; focus score]."""

    def __init__(self, num_variates: int, d_model: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        self.input_projection = Linear(2 * num_variates, d_model, rng=rng)
        self.encoder = TransformerEncoderLayer(d_model, num_heads, rng=rng)
        self.decoder1 = TransformerDecoderLayer(d_model, num_heads, rng=rng)
        self.decoder2 = TransformerDecoderLayer(d_model, num_heads, rng=rng)
        self.output1 = Linear(d_model, num_variates, rng=rng)
        self.output2 = Linear(d_model, num_variates, rng=rng)

    def forward(self, windows: Tensor, focus: Tensor) -> tuple[Tensor, Tensor]:
        conditioned = Tensor.concat([windows, focus], axis=-1)
        hidden = self.input_projection(conditioned)
        memory = self.encoder(hidden)
        decoded1 = self.decoder1(hidden, memory)
        decoded2 = self.decoder2(hidden, memory)
        # The original uses a sigmoid because its inputs are min-max scaled to
        # [0, 1]; here the shared pipeline standardises instead, so the output
        # heads are linear.
        return self.output1(decoded1), self.output2(decoded2)


class TranAD(WindowedNeuralDetector):
    """Adversarial self-conditioning Transformer for multivariate series."""

    name = "TranAD"

    def __init__(self, window: int = 32, d_model: int = 16, num_heads: int = 2, **kwargs):
        super().__init__(window=window, **kwargs)
        self.d_model = d_model
        self.num_heads = num_heads
        self.model: _TranADModel | None = None

    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        self.model = _TranADModel(num_variates, self.d_model, self.num_heads, rng)

    def _parameters(self):
        return self.model.parameters()

    def _two_phase(self, windows: np.ndarray) -> tuple[Tensor, Tensor, Tensor]:
        """Run both phases; returns (phase-1 output, phase-2 outputs)."""
        inputs = Tensor(windows)
        zero_focus = Tensor(np.zeros_like(windows))
        phase1_out1, _ = self.model(inputs, zero_focus)
        focus = (inputs - phase1_out1.detach()) * (inputs - phase1_out1.detach())
        phase2_out1, phase2_out2 = self.model(inputs, focus)
        return phase1_out1, phase2_out1, phase2_out2

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        inputs = Tensor(windows)
        phase1, phase2_d1, phase2_d2 = self._two_phase(windows)
        # Simplified adversarial objective: decoder 1 minimises both phases'
        # errors; decoder 2 focuses on the conditioned (harder) phase.
        loss1 = mse_loss(phase1, inputs)
        loss2 = mse_loss(phase2_d1, inputs)
        loss3 = mse_loss(phase2_d2, inputs)
        return loss1 + 0.5 * (loss2 + loss3)

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        phase1, phase2_d1, _ = self._two_phase(windows)
        error1 = np.abs(windows - phase1.data)
        error2 = np.abs(windows - phase2_d1.data)
        combined = 0.5 * error1 + 0.5 * error2
        return combined[:, -1, :]
