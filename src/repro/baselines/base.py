"""Common interface for all baseline detectors.

Every baseline follows the protocol used in the paper's evaluation
(Section IV-B): the method produces an anomaly score per point and per
variate, and the *same* POT + point-adjust procedure is applied to all
methods so the comparison is fair.  Concretely a baseline implements

* ``fit(train, timestamps=None)`` — unsupervised training / calibration on
  the unlabeled training split;
* ``score(series, timestamps=None)`` — per-point anomaly scores with the
  same shape as the input.

``BaseDetector`` provides the shared ``detect`` / ``evaluate`` logic on top.
"""

from __future__ import annotations

import numpy as np

from ..evaluation import DetectionOutcome, evaluate_scores, pot_threshold

__all__ = ["BaseDetector"]


class BaseDetector:
    """Abstract base class for anomaly detectors with the fit/score protocol."""

    #: Human-readable method name used in result tables.
    name: str = "base"

    def __init__(self, pot_level: float = 0.99, pot_q: float = 1e-3):
        self.pot_level = pot_level
        self.pot_q = pot_q
        self.train_scores_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "BaseDetector":
        raise NotImplementedError

    def score(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_series(series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2:
            raise ValueError("series must be 2-D (time, variates)")
        return series

    def _calibrate(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> None:
        """Store training scores for POT calibration (call at the end of ``fit``)."""
        self.train_scores_ = self.score(train, timestamps)

    def threshold(self) -> float:
        if self.train_scores_ is None:
            raise RuntimeError(f"{self.name} must be fitted before thresholding")
        return pot_threshold(self.train_scores_, level=self.pot_level, q=self.pot_q)

    def detect(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        """Binary anomaly labels for every point of ``series``."""
        scores = self.score(series, timestamps)
        return (scores >= self.threshold()).astype(np.int64)

    def evaluate(
        self,
        test: np.ndarray,
        test_labels: np.ndarray,
        timestamps: np.ndarray | None = None,
        point_adjust: bool = True,
    ) -> DetectionOutcome:
        """Apply the shared POT + point-adjust protocol and return metrics."""
        if self.train_scores_ is None:
            raise RuntimeError(f"{self.name} must be fitted before evaluation")
        test_scores = self.score(test, timestamps)
        return evaluate_scores(
            self.train_scores_,
            test_scores,
            test_labels,
            level=self.pot_level,
            q=self.pot_q,
            point_adjust=point_adjust,
        )
