"""AnomalyTransformer (Xu et al., ICLR 2022): association-discrepancy scoring.

A Transformer encoder reconstructs the multivariate window.  In parallel, the
method compares two attention distributions for every position:

* the *series association* — the encoder's learned self-attention row;
* the *prior association* — a Gaussian kernel over relative distances with a
  learnable bandwidth, encoding the expectation that normal points attend to
  their close neighbourhood.

The association discrepancy (symmetrised KL between the two) is small for
anomalies (their attention collapses onto adjacent positions), so the final
score multiplies the reconstruction error by ``softmax(-discrepancy)``,
exactly as in the original paper.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor, TransformerEncoderLayer, mse_loss
from .neural_base import WindowedNeuralDetector

__all__ = ["AnomalyTransformer"]


def _gaussian_prior(window: int, sigma: float) -> np.ndarray:
    """Row-normalised Gaussian kernel over relative distances."""
    positions = np.arange(window)
    distances = np.abs(positions[:, None] - positions[None, :]).astype(np.float64)
    kernel = np.exp(-(distances ** 2) / (2.0 * max(sigma, 1e-3) ** 2))
    return kernel / kernel.sum(axis=1, keepdims=True)


class _AnomalyTransformerModel(Module):
    """Single-layer Transformer encoder with a learnable prior bandwidth."""

    def __init__(self, num_variates: int, d_model: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        self.input_projection = Linear(num_variates, d_model, rng=rng)
        self.encoder = TransformerEncoderLayer(d_model, num_heads, rng=rng)
        self.output_projection = Linear(d_model, num_variates, rng=rng)
        self.prior_sigma = Parameter(np.array([3.0]))

    def forward(self, windows: Tensor) -> Tensor:
        hidden = self.encoder(self.input_projection(windows))
        return self.output_projection(hidden)

    def series_association(self) -> np.ndarray:
        """Mean attention over heads from the last forward pass: (B, L, L)."""
        attention = self.encoder.self_attention.last_attention
        return attention.mean(axis=1)


class AnomalyTransformer(WindowedNeuralDetector):
    """Transformer with association-discrepancy anomaly scores."""

    name = "AnomalyTransformer"

    def __init__(self, window: int = 32, d_model: int = 16, num_heads: int = 2, discrepancy_weight: float = 0.1, **kwargs):
        super().__init__(window=window, **kwargs)
        self.d_model = d_model
        self.num_heads = num_heads
        self.discrepancy_weight = discrepancy_weight
        self.model: _AnomalyTransformerModel | None = None

    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        self.model = _AnomalyTransformerModel(num_variates, self.d_model, self.num_heads, rng)

    def _parameters(self):
        return self.model.parameters()

    # ------------------------------------------------------------------
    def _discrepancy(self) -> np.ndarray:
        """Per-position association discrepancy of the last forward pass: (B, L)."""
        series = self.model.series_association()
        window = series.shape[-1]
        prior = _gaussian_prior(window, float(self.model.prior_sigma.data[0]))
        series = np.maximum(series, 1e-12)
        prior = np.maximum(prior[None, :, :], 1e-12)
        forward_kl = (prior * np.log(prior / series)).sum(axis=-1)
        reverse_kl = (series * np.log(series / prior)).sum(axis=-1)
        return 0.5 * (forward_kl + reverse_kl)

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        inputs = Tensor(windows)
        reconstruction = self.model(inputs)
        loss = mse_loss(reconstruction, inputs)
        # Minimax simplification: encourage large association discrepancy on
        # the (mostly normal) training data by penalising its negative mean.
        discrepancy = self._discrepancy().mean()
        return loss + Tensor(self.discrepancy_weight * (-discrepancy))

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        inputs = Tensor(windows)
        reconstruction = self.model(inputs).data
        errors = np.abs(windows - reconstruction)
        discrepancy = self._discrepancy()
        # softmax(-discrepancy) over the window, evaluated at the last position.
        shifted = -discrepancy - (-discrepancy).max(axis=1, keepdims=True)
        weights = np.exp(shifted)
        weights = weights / weights.sum(axis=1, keepdims=True)
        last_weight = weights[:, -1:]
        return errors[:, -1, :] * last_weight * discrepancy.shape[1]
