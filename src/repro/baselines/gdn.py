"""GDN (Deng & Hooi, AAAI 2021): graph deviation network with a static learned graph.

Every variate (star) gets a learnable embedding; the static graph connects
each node to its top-k most similar nodes in embedding space.  A graph
attention layer aggregates the neighbours' recent windows and a readout layer
forecasts the next value of every node; the anomaly score is the normalised
absolute forecast error.
"""

from __future__ import annotations

import numpy as np

from ..nn import GraphAttentionLayer, Linear, Module, Parameter, Tensor, init, mse_loss
from .neural_base import WindowedNeuralDetector

__all__ = ["GDN"]


class _GdnModel(Module):
    """Embedding-based static graph + graph attention + per-node forecaster."""

    def __init__(
        self,
        num_variates: int,
        window: int,
        embedding_dim: int,
        hidden: int,
        top_k: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_variates = num_variates
        self.top_k = min(top_k, num_variates - 1)
        self.node_embeddings = Parameter(init.normal((num_variates, embedding_dim), rng, std=0.5))
        self.feature_projection = Linear(window - 1, hidden, rng=rng)
        self.graph_attention = GraphAttentionLayer(hidden, hidden, rng=rng)
        self.readout = Linear(hidden + embedding_dim, 1, rng=rng)

    def learned_adjacency(self) -> np.ndarray:
        """Static top-k graph from embedding cosine similarity."""
        embeddings = self.node_embeddings.data
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        normalized = embeddings / np.maximum(norms, 1e-8)
        similarity = normalized @ normalized.T
        np.fill_diagonal(similarity, -np.inf)
        adjacency = np.zeros_like(similarity)
        for node in range(similarity.shape[0]):
            neighbours = np.argsort(similarity[node])[-self.top_k:]
            adjacency[node, neighbours] = 1.0
        return adjacency

    def forward(self, history: Tensor) -> Tensor:
        """Forecast the next value of each node.

        ``history`` has shape ``(batch, num_variates, window - 1)``; the output
        has shape ``(batch, num_variates)``.
        """
        adjacency = self.learned_adjacency()
        batch = history.shape[0]
        predictions = []
        for index in range(batch):
            node_features = self.feature_projection(history[index])
            attended = self.graph_attention(node_features, adjacency)
            combined = Tensor.concat([attended, self.node_embeddings], axis=-1)
            predictions.append(self.readout(combined).squeeze(-1))
        return Tensor.stack(predictions, axis=0)


class GDN(WindowedNeuralDetector):
    """Graph deviation network baseline (static learned graph)."""

    name = "GDN"

    def __init__(self, window: int = 16, embedding_dim: int = 8, hidden: int = 16, top_k: int = 5, **kwargs):
        super().__init__(window=window, **kwargs)
        self.embedding_dim = embedding_dim
        self.hidden = hidden
        self.top_k = top_k
        self.model: _GdnModel | None = None
        self._error_median: np.ndarray | None = None
        self._error_iqr: np.ndarray | None = None

    def _build(self, num_variates: int, rng: np.random.Generator) -> None:
        self.model = _GdnModel(num_variates, self.window, self.embedding_dim, self.hidden, self.top_k, rng)

    def _parameters(self):
        return self.model.parameters()

    def _loss(self, windows: np.ndarray, rng: np.random.Generator):
        history = Tensor(windows[:, :-1, :].transpose(0, 2, 1))
        target = Tensor(windows[:, -1, :])
        prediction = self.model(history)
        return mse_loss(prediction, target)

    def _window_scores(self, windows: np.ndarray) -> np.ndarray:
        history = Tensor(windows[:, :-1, :].transpose(0, 2, 1))
        prediction = self.model(history).data
        errors = np.abs(windows[:, -1, :] - prediction)
        if self._error_median is not None:
            errors = (errors - self._error_median) / self._error_iqr
            errors = np.maximum(errors, 0.0)
        return errors

    def fit(self, train: np.ndarray, timestamps: np.ndarray | None = None) -> "GDN":
        # Two-pass fit: train the forecaster, then calibrate GDN's per-node
        # robust normalisation (median / IQR of training errors) before the
        # shared POT calibration runs.
        self._error_median = None
        self._error_iqr = None
        super().fit(train, timestamps)
        raw_scores = self.train_scores_
        median = np.median(raw_scores, axis=0)
        upper = np.quantile(raw_scores, 0.75, axis=0)
        lower = np.quantile(raw_scores, 0.25, axis=0)
        self._error_median = median
        self._error_iqr = np.maximum(upper - lower, 1e-3)
        tail = self._train_tail
        self._train_tail = None
        self.train_scores_ = self.score(train, timestamps)
        self._train_tail = tail
        return self
