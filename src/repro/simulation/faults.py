"""Deterministic fault injectors for simulated survey nights.

A real GWAC night is never the clean aligned matrix the serving stack is
benchmarked on: clouds blank out observations, whole stars drop out of the
field and rejoin, camera readout jitters the cadence, the transport layer
duplicates or reorders frames, and slow instrumental drift bends baselines.
Each injector here applies one of those faults to a scenario under
construction — **in place**, driven only by the caller's
:class:`numpy.random.Generator` so a seeded scenario is bit-reproducible —
and returns :class:`FaultEvent` records for the scenario's bookkeeping.

Frame-level faults (duplication, reordering) operate on the *arrival
schedule* — the list of exposure indices in delivery order — rather than on
the exposure values: the same physical exposure may arrive twice or late,
which is a property of the transport, not of the sky.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultEvent",
    "inject_nan_gaps",
    "inject_dropout",
    "apply_baseline_drift",
    "jitter_timestamps",
    "duplicate_arrivals",
    "reorder_arrivals",
]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for ground-truth bookkeeping.

    ``star`` is the flat star index across the fleet, or ``-1`` for faults
    that affect whole frames (duplication, reordering) rather than one star.
    ``start``/``end`` are exposure indices (``end`` exclusive); for frame
    faults ``start`` is the affected exposure and ``end == start + 1``.
    """

    kind: str
    star: int
    start: int
    end: int


def _flat_star(shard: int, variate: int, num_variates: int) -> int:
    return shard * num_variates + variate


def inject_nan_gaps(
    exposures: np.ndarray,
    rng: np.random.Generator,
    fraction: float,
    burst_length_range: tuple[int, int] = (1, 4),
) -> list[FaultEvent]:
    """Blank out short per-star bursts until ``fraction`` of points are NaN.

    Gaps are drawn as (star, start, burst-length) triples — clouds and
    readout glitches blank a star for a few consecutive exposures, not as
    i.i.d. single points.  Already-missing points (e.g. an earlier dropout)
    count toward the target fraction, so injectors compose without
    overshooting.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    low, high = burst_length_range
    if low < 1 or high < low:
        raise ValueError("burst_length_range must satisfy 1 <= low <= high")
    length, num_shards, num_variates = exposures.shape
    target = int(round(fraction * exposures.size))
    events: list[FaultEvent] = []
    while np.isnan(exposures).sum() < target:
        shard = int(rng.integers(num_shards))
        variate = int(rng.integers(num_variates))
        burst = int(rng.integers(low, high + 1))
        start = int(rng.integers(0, max(length - burst, 1)))
        exposures[start : start + burst, shard, variate] = np.nan
        events.append(
            FaultEvent(
                kind="nan_gap",
                star=_flat_star(shard, variate, num_variates),
                start=start,
                end=start + burst,
            )
        )
    return events


def inject_dropout(
    exposures: np.ndarray,
    rng: np.random.Generator,
    length_range: tuple[int, int],
    star: int | None = None,
) -> FaultEvent:
    """Drop one star out of the survey for a contiguous stretch, then rejoin.

    Models a star leaving the camera field (tracking drift, a bad column):
    every observation in the window is missing, and on rejoin the stream
    resumes mid-night — the serving stack must re-arm without a restart.
    """
    length, num_shards, num_variates = exposures.shape
    low, high = length_range
    if not 1 <= low <= high < length:
        raise ValueError("dropout length_range must fit inside the night")
    if star is None:
        star = int(rng.integers(num_shards * num_variates))
    span = int(rng.integers(low, high + 1))
    start = int(rng.integers(0, length - span))
    exposures[start : start + span, star // num_variates, star % num_variates] = np.nan
    return FaultEvent(kind="dropout", star=star, start=start, end=start + span)


def apply_baseline_drift(
    exposures: np.ndarray,
    rng: np.random.Generator,
    stars: np.ndarray,
    amplitude: float,
) -> list[FaultEvent]:
    """Bend the chosen stars' baselines by a slow half-sine over the night.

    Instrumental drift (focus breathing, airmass) is smooth and spans hours;
    a detector serving a fixed calibration must ride it out without paging.
    Each star draws its own magnitude in ``[amplitude/2, amplitude]`` and a
    random sign.
    """
    length, _, num_variates = exposures.shape
    ramp = np.sin(np.linspace(0.0, np.pi, length))
    events: list[FaultEvent] = []
    for star in np.asarray(stars, dtype=np.int64):
        strength = float(rng.uniform(amplitude / 2.0, amplitude)) * (
            1.0 if rng.random() < 0.5 else -1.0
        )
        exposures[:, star // num_variates, star % num_variates] += strength * ramp
        events.append(FaultEvent(kind="drift", star=int(star), start=0, end=length))
    return events


def jitter_timestamps(
    timestamps: np.ndarray,
    rng: np.random.Generator,
    jitter: float,
    cadence: float,
) -> np.ndarray:
    """Perturb a regular cadence by per-exposure uniform jitter.

    ``jitter`` is capped just below half the cadence so the jittered
    timeline stays strictly increasing — readout never reorders time itself
    (delivery reordering is :func:`reorder_arrivals`' job).
    """
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    bound = min(jitter, 0.49 * cadence)
    return timestamps + rng.uniform(-bound, bound, size=timestamps.shape)


def duplicate_arrivals(
    arrival: list[int], rng: np.random.Generator, count: int
) -> list[FaultEvent]:
    """Deliver ``count`` randomly chosen exposures twice (back to back)."""
    events: list[FaultEvent] = []
    for _ in range(count):
        position = int(rng.integers(len(arrival)))
        seq = arrival[position]
        arrival.insert(position + 1, seq)
        events.append(FaultEvent(kind="duplicate", star=-1, start=seq, end=seq + 1))
    return events


def reorder_arrivals(
    arrival: list[int], rng: np.random.Generator, count: int
) -> list[FaultEvent]:
    """Swap ``count`` random adjacent arrival pairs (late frame delivery)."""
    events: list[FaultEvent] = []
    if len(arrival) < 2:
        return events
    for _ in range(count):
        position = int(rng.integers(len(arrival) - 1))
        arrival[position], arrival[position + 1] = arrival[position + 1], arrival[position]
        events.append(
            FaultEvent(kind="reorder", star=-1, start=arrival[position + 1], end=arrival[position + 1] + 1)
        )
    return events
