"""Tick-by-tick scenario replay through the serving stack, scored end to end.

Numerical-equivalence suites prove the serving stack computes the *same
numbers* as the batch path; this module proves it does its *job*: fed a
realistic survey night (missing observations, dropouts, duplicate and
out-of-order frames), the fleet's fired :class:`~repro.streaming.Alert`\\ s
must actually cover the injected celestial events.

:class:`ReplayHarness` drives any ``step(rows, timestamp)`` scorer — a
:class:`~repro.streaming.FleetManager`, or a
:class:`~repro.streaming.StreamingService`-shaped wrapper exposing the same
method — over a :class:`~repro.simulation.scenario.Scenario`'s arrival
schedule, optionally de-duplicating repeated frames (what a real ingest
gate does), and returns

* a :class:`ReplayReport` with **event-level** precision/recall, the
  per-event detection-latency distribution and the false-alert budget on
  quiet stars, and
* a :class:`~repro.simulation.trace.ReplayTrace` of every tick's scores,
  thresholds, labels and alerts — the artifact the golden-trace regression
  pinning diffs against.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_registry
from ..obs.tracing import trace as trace_span
from .scenario import Scenario, ScenarioEvent
from .trace import ReplayTrace

__all__ = [
    "ReplayHarness",
    "ReplayReport",
    "EventOutcome",
    "score_replay",
    "replay_flight_record",
]

logger = logging.getLogger("repro.simulation.replay")


@dataclass
class EventOutcome:
    """Ground truth for one injected event vs. the alerts that covered it."""

    event: ScenarioEvent
    detected: bool
    latency: int | None            # first qualifying alert seq - event start
    first_alert_seq: int | None


@dataclass
class ReplayReport:
    """Event-level scorecard of one replay run."""

    num_events: int
    num_detected: int
    recall: float
    precision: float               # fraction of alerts inside some event window
    latencies: np.ndarray          # (num_detected,) ticks from onset to alert
    num_alerts: int
    false_alerts: int
    quiet_star_false_alerts: int
    duplicates_dropped: int
    outcomes: list[EventOutcome] = field(default_factory=list)
    recall_by_kind: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if self.latencies.size else float("nan")

    @property
    def max_latency(self) -> float:
        return float(self.latencies.max()) if self.latencies.size else float("nan")

    def format(self) -> str:
        kinds = ", ".join(
            f"{kind} {hit}/{total}" for kind, (hit, total) in sorted(self.recall_by_kind.items())
        )
        return (
            f"events {self.num_detected}/{self.num_events} detected "
            f"(recall {self.recall:.2f}, precision {self.precision:.2f}) [{kinds}] "
            f"latency mean {self.mean_latency:.1f} / max {self.max_latency:.0f} ticks; "
            f"{self.num_alerts} alerts, {self.false_alerts} false "
            f"({self.quiet_star_false_alerts} on quiet stars), "
            f"{self.duplicates_dropped} duplicate frames dropped"
        )


def score_replay(
    scenario: Scenario,
    alert_seqs: np.ndarray,
    alert_stars: np.ndarray,
    grace: int,
    duplicates_dropped: int = 0,
) -> ReplayReport:
    """Score fired alerts against the scenario's ground-truth intervals.

    An alert covers an event when it is for the event's star and lands in
    ``[start, end + grace)`` — the grace window absorbs debounce delay and
    template tails.  Alerts covering no event are false; recall, precision
    and per-event latency follow the usual event-level definitions.
    """
    if grace < 0:
        raise ValueError("grace must be non-negative")
    alert_seqs = np.asarray(alert_seqs, dtype=np.int64)
    alert_stars = np.asarray(alert_stars, dtype=np.int64)
    covered = np.zeros(alert_seqs.shape, dtype=bool)

    outcomes: list[EventOutcome] = []
    by_kind: dict[str, list[bool]] = {}
    latencies: list[int] = []
    for event in scenario.events:
        hits = (
            (alert_stars == event.star)
            & (alert_seqs >= event.start)
            & (alert_seqs < event.end + grace)
        )
        covered |= hits
        detected = bool(hits.any())
        first = int(alert_seqs[hits].min()) if detected else None
        latency = first - event.start if detected else None
        if detected:
            latencies.append(latency)
        outcomes.append(
            EventOutcome(event=event, detected=detected, latency=latency, first_alert_seq=first)
        )
        by_kind.setdefault(event.kind, []).append(detected)

    quiet = set(int(star) for star in scenario.quiet_stars)
    false_mask = ~covered
    num_detected = sum(outcome.detected for outcome in outcomes)
    num_events = len(scenario.events)
    num_alerts = int(alert_seqs.size)
    return ReplayReport(
        num_events=num_events,
        num_detected=num_detected,
        recall=num_detected / num_events if num_events else 1.0,
        precision=float(covered.mean()) if num_alerts else 1.0,
        latencies=np.asarray(latencies, dtype=np.int64),
        num_alerts=num_alerts,
        false_alerts=int(false_mask.sum()),
        quiet_star_false_alerts=int(
            sum(1 for star in alert_stars[false_mask] if int(star) in quiet)
        ),
        duplicates_dropped=duplicates_dropped,
        outcomes=outcomes,
        recall_by_kind={kind: (sum(flags), len(flags)) for kind, flags in by_kind.items()},
    )


def replay_flight_record(fleet, record, rtol: float = 0.0, atol: float = 0.0):
    """Re-run a flight-recorder dump through a fresh fleet and diff the traces.

    ``record`` is a :class:`repro.obs.FlightRecord` (the incident black
    box); ``fleet`` is a *fresh* scorer built the way the incident fleet
    was — same detector, shard count, threshold calibration and
    construction flags.  Each captured frame's **raw rows** and timestamp
    (NaN decodes back to ``None``, so auto-advance ticks stay
    auto-advance) are stepped through ``fleet`` and collected into a
    :class:`~repro.simulation.trace.ReplayTrace` carrying the record's
    frame identities.

    Returns ``(trace, mismatches)`` where ``mismatches`` is
    ``record.to_trace().diff(trace)`` — empty means the post-mortem run
    reproduced the incident bit-for-bit (at the given tolerances).  That
    guarantee holds when the record covers the incident fleet's whole
    history (ring never wrapped); a wrapped ring replays from seed context
    instead of the incident's warm state, so expect leading-tick
    mismatches and treat the result as triage evidence.
    """
    if not hasattr(fleet, "step"):
        raise TypeError("fleet must expose step(rows, timestamp)")
    seqs: list[int] = []
    steps: list[int] = []
    scores: list[np.ndarray] = []
    thresholds: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    alert_rows: list[tuple[int, int, int, float, float]] = []
    shape = record.scores.shape[1:]
    for tick in range(record.num_ticks):
        timestamp = record.timestamps[tick]
        with trace_span("replay.flight_frame"):
            result = fleet.step(
                record.rows[tick],
                None if np.isnan(timestamp) else float(timestamp),
            )
        seq = int(record.seqs[tick])
        seqs.append(seq)
        steps.append(result.step)
        scores.append(np.asarray(result.scores, dtype=np.float64).copy())
        per_star = result.thresholds
        if per_star is None:
            per_star = np.full(shape, result.threshold)
        thresholds.append(np.asarray(per_star, dtype=np.float64).copy())
        labels.append(np.asarray(result.labels, dtype=np.int64).copy())
        for alert in result.alerts:
            alert_rows.append(
                (seq, result.step, alert.star, alert.score, alert.threshold)
            )
    trace = ReplayTrace(
        seqs=np.asarray(seqs, dtype=np.int64),
        steps=np.asarray(steps, dtype=np.int64),
        timestamps=record.timestamps.copy(),
        scores=np.stack(scores) if scores else np.empty((0, *shape)),
        thresholds=np.stack(thresholds) if thresholds else np.empty((0, *shape)),
        labels=np.stack(labels) if labels else np.empty((0, *shape), dtype=np.int64),
        alert_seqs=np.asarray([row[0] for row in alert_rows], dtype=np.int64),
        alert_steps=np.asarray([row[1] for row in alert_rows], dtype=np.int64),
        alert_stars=np.asarray([row[2] for row in alert_rows], dtype=np.int64),
        alert_scores=np.asarray([row[3] for row in alert_rows], dtype=np.float64),
        alert_thresholds=np.asarray([row[4] for row in alert_rows], dtype=np.float64),
    )
    mismatches = record.to_trace().diff(trace, rtol=rtol, atol=atol)
    return trace, mismatches


class ReplayHarness:
    """Drive a fleet scorer through a scenario's arrival schedule and score it.

    Parameters
    ----------
    fleet:
        Anything with ``step(rows, timestamp) -> FleetStepResult`` — normally
        a :class:`~repro.streaming.FleetManager` serving a detector fitted on
        ``scenario.train``.
    scenario:
        The survey night to replay.
    dedupe:
        Drop frames whose exposure index was already processed (the ingest
        gate of a real pipeline).  Disable to stress the stack with raw
        duplicate deliveries.
    grace:
        Scoring slack in ticks after an event's last in-event exposure
        within which an alert still counts as detecting it (debounce delay,
        decaying template tails).
    """

    def __init__(self, fleet, scenario: Scenario, dedupe: bool = True, grace: int = 12):
        if not hasattr(fleet, "step"):
            raise TypeError("fleet must expose step(rows, timestamp)")
        self.fleet = fleet
        self.scenario = scenario
        self.dedupe = dedupe
        self.grace = grace

    def run(self) -> tuple[ReplayReport, ReplayTrace]:
        """Replay the whole night; returns the scorecard and the full trace."""
        # Resolved per run: a replay is one bounded pass, not a hot loop.
        metrics = get_registry()
        m_frames = metrics.counter(
            "replay_frames_total", "Scenario frames fed through replay harnesses"
        )
        m_duplicates = metrics.counter(
            "replay_duplicates_dropped_total", "Duplicate frames dropped by the ingest gate"
        )
        scenario = self.scenario
        shape = (scenario.config.num_shards, scenario.config.num_variates)

        seqs: list[int] = []
        steps: list[int] = []
        times: list[float] = []
        scores: list[np.ndarray] = []
        thresholds: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        alert_rows: list[tuple[int, int, int, float, float]] = []
        duplicates_dropped = 0
        seen: set[int] = set()

        for frame in scenario.frames():
            if self.dedupe and frame.seq in seen:
                duplicates_dropped += 1
                m_duplicates.inc()
                continue
            seen.add(frame.seq)
            m_frames.inc()
            with trace_span("replay.frame"):
                result = self.fleet.step(frame.rows, frame.timestamp)
            if result.scores.shape != shape:
                raise ValueError(
                    f"fleet emits {result.scores.shape} scores, scenario is {shape}"
                )
            seqs.append(frame.seq)
            steps.append(result.step)
            times.append(frame.timestamp)
            scores.append(np.asarray(result.scores, dtype=np.float64).copy())
            per_star = result.thresholds
            if per_star is None:
                per_star = np.full(shape, result.threshold)
            thresholds.append(np.asarray(per_star, dtype=np.float64).copy())
            labels.append(np.asarray(result.labels, dtype=np.int64).copy())
            for alert in result.alerts:
                alert_rows.append(
                    (frame.seq, result.step, alert.star, alert.score, alert.threshold)
                )

        trace = ReplayTrace(
            seqs=np.asarray(seqs, dtype=np.int64),
            steps=np.asarray(steps, dtype=np.int64),
            timestamps=np.asarray(times, dtype=np.float64),
            scores=np.stack(scores) if scores else np.empty((0, *shape)),
            thresholds=np.stack(thresholds) if thresholds else np.empty((0, *shape)),
            labels=np.stack(labels) if labels else np.empty((0, *shape), dtype=np.int64),
            alert_seqs=np.asarray([row[0] for row in alert_rows], dtype=np.int64),
            alert_steps=np.asarray([row[1] for row in alert_rows], dtype=np.int64),
            alert_stars=np.asarray([row[2] for row in alert_rows], dtype=np.int64),
            alert_scores=np.asarray([row[3] for row in alert_rows], dtype=np.float64),
            alert_thresholds=np.asarray([row[4] for row in alert_rows], dtype=np.float64),
        )
        if duplicates_dropped:
            logger.warning(
                "replay_duplicates scenario_seed=%s dropped=%d",
                getattr(scenario.config, "seed", None), duplicates_dropped,
            )
        report = score_replay(
            scenario,
            trace.alert_seqs,
            trace.alert_stars,
            grace=self.grace,
            duplicates_dropped=duplicates_dropped,
        )
        return report, trace
