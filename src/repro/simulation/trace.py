"""Golden-trace record/replay: npz-serialised per-tick serving state.

A replay's full observable behaviour — per-tick scores, per-star
thresholds, labels and every fired alert — fits in a handful of flat
arrays.  :class:`ReplayTrace` captures them, round-trips through one
compressed ``.npz`` artifact, and diffs against another trace.

The workflow is regression *pinning*: commit the trace of a known-good
replay next to the test suite; every future run regenerates the trace from
the same seeded scenario and diffs it against the committed golden copy.
Any behavioural drift — a refactor that changes scores, a threshold update
that fires different alerts — shows up as a named, tick-indexed mismatch
instead of a silently shifted metric.  Exact (bit-for-bit) comparison is
the default and is what in-process determinism tests use; cross-platform CI
pins pass a small tolerance for the score fields, where BLAS differences
may legitimately wiggle the last bits, while alerts and labels stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from ..nn.serialization import load_arrays, save_arrays

__all__ = ["ReplayTrace", "TraceMismatch"]

_EXACT_INT_FIELDS = ("seqs", "steps", "labels", "alert_seqs", "alert_steps", "alert_stars")
_FLOAT_FIELDS = ("timestamps", "scores", "thresholds", "alert_scores", "alert_thresholds")


@dataclass(frozen=True)
class TraceMismatch:
    """One field-level difference between two traces."""

    field: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.field}: {self.detail}"


@dataclass
class ReplayTrace:
    """Per-tick serving state of one replay (see module docstring).

    ``seqs`` are scenario exposure indices in processed order; ``steps`` are
    the fleet's own step counters (they diverge from ``seqs`` exactly when
    frames arrived out of order or were de-duplicated — preserving that
    mapping in the trace is what lets alert ticks be compared across runs).
    """

    seqs: np.ndarray              # (P,) int64
    steps: np.ndarray             # (P,) int64
    timestamps: np.ndarray        # (P,) float64
    scores: np.ndarray            # (P, S, N) float64, NaN = missing/warm-up
    thresholds: np.ndarray        # (P, S, N) float64
    labels: np.ndarray            # (P, S, N) int64
    alert_seqs: np.ndarray        # (A,) int64
    alert_steps: np.ndarray       # (A,) int64
    alert_stars: np.ndarray       # (A,) int64
    alert_scores: np.ndarray      # (A,) float64
    alert_thresholds: np.ndarray  # (A,) float64

    @property
    def num_ticks(self) -> int:
        return int(self.seqs.size)

    @property
    def num_alerts(self) -> int:
        return int(self.alert_seqs.size)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the trace as one compressed npz artifact."""
        return save_arrays(path, {f.name: getattr(self, f.name) for f in fields(self)})

    @classmethod
    def load(cls, path: str | Path) -> "ReplayTrace":
        """Load a trace saved by :meth:`save`; validates the key set."""
        arrays = load_arrays(path)
        names = {f.name for f in fields(cls)}
        missing = names - set(arrays)
        extra = set(arrays) - names
        if missing or extra:
            raise ValueError(
                f"trace {path} has wrong keys: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        return cls(**{name: arrays[name] for name in names})

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def diff(
        self, other: "ReplayTrace", rtol: float = 0.0, atol: float = 0.0, max_report: int = 5
    ) -> list[TraceMismatch]:
        """All field-level differences vs. ``other`` (empty list = match).

        Integer fields (alert identities, labels, tick ordering) are always
        compared exactly; float fields use ``rtol``/``atol`` (defaults:
        exact, NaNs compare equal so warm-up and gap ticks pin too).
        """
        mismatches: list[TraceMismatch] = []
        for name in (*_EXACT_INT_FIELDS, *_FLOAT_FIELDS):
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine.shape != theirs.shape:
                mismatches.append(
                    TraceMismatch(name, f"shape {mine.shape} vs {theirs.shape}")
                )
                continue
            if name in _EXACT_INT_FIELDS:
                equal = mine == theirs
            else:
                equal = np.isclose(mine, theirs, rtol=rtol, atol=atol, equal_nan=True)
            if not equal.all():
                bad = np.argwhere(~equal)
                where = ", ".join(str(tuple(int(i) for i in idx)) for idx in bad[:max_report])
                suffix = "" if len(bad) <= max_report else f" (+{len(bad) - max_report} more)"
                mismatches.append(
                    TraceMismatch(name, f"{len(bad)} differing entries at {where}{suffix}")
                )
        return mismatches

    def matches(self, other: "ReplayTrace", rtol: float = 0.0, atol: float = 0.0) -> bool:
        return not self.diff(other, rtol=rtol, atol=atol)

    def assert_matches(
        self, other: "ReplayTrace", rtol: float = 0.0, atol: float = 0.0
    ) -> None:
        """Raise ``AssertionError`` naming every mismatched field."""
        mismatches = self.diff(other, rtol=rtol, atol=atol)
        if mismatches:
            details = "\n  ".join(str(m) for m in mismatches)
            raise AssertionError(f"replay trace diverges from golden trace:\n  {details}")
