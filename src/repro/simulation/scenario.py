"""Seeded survey-night scenario builders with per-star ground truth.

A *scenario* is everything a serving-stack validation run needs, generated
deterministically from one seed:

* a **training archive** for the reference field (the detector is fitted on
  it, exactly the train-once / serve-many deployment shape);
* a **night** of fleet exposures ``(T, num_shards, N)`` — per-shard fresh
  noise realizations of the *same* per-variate star profiles, so one model
  legitimately serves every shard;
* **injected celestial events** (flares, microlensing, eclipses, … from
  :mod:`repro.data.anomalies`) with exact per-star ground-truth intervals;
* **injected faults** (NaN gaps, star dropout/rejoin, cadence jitter,
  baseline drift, duplicated and out-of-order frames) from
  :mod:`repro.simulation.faults`;
* the **arrival schedule**: the frame sequence as the serving stack will
  actually receive it, duplicates and reorderings included.

Determinism contract: ``build_scenario(config)`` consumes a single
``default_rng(config.seed)`` stream in a fixed order, so the same config is
bit-identical across runs and machines — the property the golden-trace
regression pinning in :mod:`repro.simulation.trace` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.anomalies import ANOMALY_TYPES, render_template
from ..data.signals import DEFAULT_NOISE_STD, sample_period
from .faults import (
    FaultEvent,
    apply_baseline_drift,
    duplicate_arrivals,
    inject_dropout,
    inject_nan_gaps,
    jitter_timestamps,
    reorder_arrivals,
)

__all__ = [
    "StarProfile",
    "ScenarioEvent",
    "Frame",
    "ScenarioConfig",
    "Scenario",
    "sample_star_profiles",
    "render_star_profiles",
    "build_scenario",
]


@dataclass(frozen=True)
class StarProfile:
    """Time-invariant description of one star's quiescent behaviour.

    The reference field's variate ``v`` and every shard's variate ``v``
    share one profile: the fleet serves many fields whose stars behave like
    the training field's, each with its own noise realization.  Sinusoidal
    profiles are rendered against *absolute* exposure indices, so the night
    continues the training archive's phase seamlessly.
    """

    kind: str                      # "gaussian" | "sinusoidal"
    amplitude: float = 2.0
    period: float = 200.0
    phase: float = 0.0
    noise_std: float = DEFAULT_NOISE_STD
    mean: float = 0.0

    @property
    def spread(self) -> float:
        """Rough standard deviation of the quiescent signal (for amplitude scaling)."""
        if self.kind == "sinusoidal":
            return float(np.hypot(self.amplitude / np.sqrt(2.0), self.noise_std))
        return self.noise_std


def sample_star_profiles(
    rng: np.random.Generator,
    num_variates: int,
    variable_star_fraction: float = 0.5,
) -> list[StarProfile]:
    """Draw one profile per variate (the paper's variable/non-variable mix)."""
    if num_variates < 1:
        raise ValueError("need at least one variate")
    if not 0.0 <= variable_star_fraction <= 1.0:
        raise ValueError("variable_star_fraction must be in [0, 1]")
    profiles: list[StarProfile] = []
    for _ in range(num_variates):
        if rng.random() < variable_star_fraction:
            profiles.append(
                StarProfile(
                    kind="sinusoidal",
                    period=sample_period(rng),
                    phase=float(rng.uniform(0.0, 2.0 * np.pi)),
                )
            )
        else:
            profiles.append(StarProfile(kind="gaussian"))
    return profiles


def render_star_profiles(
    profiles: list[StarProfile],
    start: int,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Render ``(length, N)`` magnitudes for exposures ``start .. start+length``."""
    if length < 1:
        raise ValueError("length must be positive")
    ticks = np.arange(start, start + length, dtype=np.float64)
    series = np.empty((length, len(profiles)))
    for variate, profile in enumerate(profiles):
        noise = rng.normal(0.0, profile.noise_std, size=length)
        if profile.kind == "sinusoidal":
            series[:, variate] = (
                profile.amplitude * np.sin(2.0 * np.pi * ticks / profile.period + profile.phase)
                + profile.mean
                + noise
            )
        elif profile.kind == "gaussian":
            series[:, variate] = profile.mean + noise
        else:
            raise ValueError(f"unknown star profile kind {profile.kind!r}")
    return series


@dataclass(frozen=True)
class ScenarioEvent:
    """One injected celestial event with its ground-truth interval."""

    star: int          # flat star index: shard * N + variate
    shard: int
    variate: int
    kind: str          # anomaly template name ("flare", "eclipse", ...)
    start: int         # exposure index, inclusive
    end: int           # exposure index, exclusive
    amplitude: float

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Frame:
    """One delivered exposure: the true index, its timestamp, the fleet rows."""

    seq: int
    timestamp: float
    rows: np.ndarray   # (num_shards, N), possibly containing NaN gaps


@dataclass
class ScenarioConfig:
    """Knobs of a simulated survey night (all faults individually disableable)."""

    name: str = "survey-night"
    num_shards: int = 2
    num_variates: int = 4
    train_length: int = 600
    calibration_length: int = 300
    night_length: int = 300
    variable_star_fraction: float = 0.5
    cadence_seconds: float = 15.0
    # celestial events
    num_events: int = 6
    event_kinds: tuple[str, ...] = ("flare", "microlensing", "eclipse")
    event_length_range: tuple[int, int] = (16, 36)
    event_amplitude_spreads: tuple[float, float] = (6.0, 10.0)
    event_amplitude_cap: float = 4.0
    event_separation: int = 40
    num_quiet_stars: int = 2
    # faults
    nan_fraction: float = 0.05
    nan_burst_length_range: tuple[int, int] = (1, 4)
    num_dropouts: int = 1
    dropout_length_range: tuple[int, int] = (20, 40)
    cadence_jitter_seconds: float = 2.0
    num_duplicate_frames: int = 2
    num_reordered_frames: int = 2
    num_drift_stars: int = 1
    drift_amplitude: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1 or self.num_variates < 1:
            raise ValueError("num_shards and num_variates must be positive")
        if self.train_length < 50 or self.night_length < 50:
            raise ValueError("train/night length too short for a meaningful scenario")
        if self.calibration_length < 0:
            raise ValueError("calibration_length must be non-negative")
        if self.num_events < 0:
            raise ValueError("num_events must be non-negative")
        unknown = set(self.event_kinds) - set(ANOMALY_TYPES)
        if unknown:
            raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        low, high = self.event_length_range
        if not 2 <= low <= high < self.night_length:
            raise ValueError("event_length_range must fit inside the night")
        num_stars = self.num_shards * self.num_variates
        if self.num_quiet_stars + self.num_drift_stars >= num_stars and self.num_events > 0:
            raise ValueError("quiet + drift stars leave no star to host events")
        if self.num_dropouts > num_stars:
            raise ValueError("cannot drop out more stars than the fleet serves")


@dataclass
class Scenario:
    """A fully materialised survey night (see module docstring)."""

    config: ScenarioConfig
    profiles: list[StarProfile]
    train: np.ndarray                 # (train_length, N) reference archive
    train_timestamps: np.ndarray      # (train_length,)
    calibration: np.ndarray           # (calibration_length, N) quiet held-out stretch
    calibration_timestamps: np.ndarray
    exposures: np.ndarray             # (T, num_shards, N), NaN = missing
    timestamps: np.ndarray            # (T,) jittered cadence
    events: list[ScenarioEvent]
    faults: list[FaultEvent] = field(default_factory=list)
    arrival: list[int] = field(default_factory=list)  # frame seqs in delivery order

    @property
    def num_stars(self) -> int:
        return self.config.num_shards * self.config.num_variates

    @property
    def length(self) -> int:
        return int(self.exposures.shape[0])

    @property
    def quiet_stars(self) -> np.ndarray:
        """Stars with no event, no drift and no dropout (sorted flat indices).

        Quiet stars anchor the false-alert budget: nothing astrophysical or
        instrumental happened to them beyond short cloud gaps, so any alert
        they raise is a pure false positive.  Dropout stars are excluded —
        their rejoin transient is a *re-arm* question, not a quiet-sky one.
        """
        noisy = {event.star for event in self.events}
        noisy.update(
            fault.star for fault in self.faults if fault.kind in ("drift", "dropout")
        )
        return np.asarray(
            sorted(set(range(self.num_stars)) - noisy), dtype=np.int64
        )

    def frames(self) -> list[Frame]:
        """The night as the serving stack receives it, faults included."""
        return [
            Frame(seq=seq, timestamp=float(self.timestamps[seq]), rows=self.exposures[seq])
            for seq in self.arrival
        ]

    def ground_truth(self) -> np.ndarray:
        """Boolean ``(T, num_stars)`` mask of in-event points (flat star axis)."""
        mask = np.zeros((self.length, self.num_stars), dtype=bool)
        for event in self.events:
            mask[event.start : event.end, event.star] = True
        return mask

    def events_for_star(self, star: int) -> list[ScenarioEvent]:
        return [event for event in self.events if event.star == star]

    def missing_fraction(self) -> float:
        return float(np.isnan(self.exposures).mean())

    def describe(self) -> str:
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        parts = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return (
            f"{self.config.name}: {self.num_stars} stars "
            f"({self.config.num_shards} shards x {self.config.num_variates}), "
            f"{self.length} exposures, events [{parts}], "
            f"{self.missing_fraction():.1%} missing, "
            f"{len(self.arrival) - self.length} duplicate frames, "
            f"{len(self.quiet_stars)} quiet stars"
        )


def _place_events(
    config: ScenarioConfig,
    rng: np.random.Generator,
    exposures: np.ndarray,
    profiles: list[StarProfile],
    host_stars: np.ndarray,
) -> list[ScenarioEvent]:
    """Inject ``num_events`` templates, cycling through ``event_kinds``.

    Cycling (rather than sampling) guarantees every requested kind appears,
    so a scenario asking for flare/microlensing/eclipse coverage gets all
    three even with few events.  Same-star events keep
    ``config.event_separation`` exposures apart — a reconstruction window's
    tail and an alert cooldown both blur attribution across closer events —
    with bounded placement retries that raise if the night is too crowded.

    Amplitudes scale with the host star's quiescent spread (a detectable
    celestial event stands out from its *own* star's variability) but are
    capped at ``event_amplitude_cap`` magnitudes: a physically absurd spike
    saturates the scaler and bleeds through the graph module into every
    other star of the shard, which stops testing detection and starts
    testing numerics.
    """
    night = exposures.shape[0]
    num_variates = config.num_variates
    occupied: dict[int, list[tuple[int, int]]] = {}
    events: list[ScenarioEvent] = []
    for index in range(config.num_events):
        kind = config.event_kinds[index % len(config.event_kinds)]
        margin = config.event_separation
        for _ in range(64):
            star = int(rng.choice(host_stars))
            length = int(rng.integers(*config.event_length_range))
            start = int(rng.integers(0, night - length))
            span = (start - margin, start + length + margin)
            if all(span[1] <= s or e <= span[0] for s, e in occupied.get(star, [])):
                break
        else:
            raise RuntimeError(
                "could not place all events without overlap; "
                "reduce num_events or lengthen the night"
            )
        spread = profiles[star % num_variates].spread
        amplitude = min(
            float(rng.uniform(*config.event_amplitude_spreads)) * max(spread, 0.25),
            config.event_amplitude_cap,
        )
        template = render_template(kind, length, amplitude)
        exposures[start : start + length, star // num_variates, star % num_variates] += template
        occupied.setdefault(star, []).append(span)
        events.append(
            ScenarioEvent(
                star=star,
                shard=star // num_variates,
                variate=star % num_variates,
                kind=kind,
                start=start,
                end=start + length,
                amplitude=amplitude,
            )
        )
    return events


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Materialise a scenario from its config — pure function of ``config.seed``."""
    rng = np.random.default_rng(config.seed)
    num_stars = config.num_shards * config.num_variates

    # 1. The star field, its training archive, and a quiet held-out stretch.
    #    The calibration stretch is a *fresh* realization of the same stars
    #    with no events or faults: a model partially memorizes its training
    #    noise, so a POT threshold calibrated on train scores sits too low
    #    for live data — serving-side thresholds should be calibrated on
    #    scores the model has never seen (the SPOT deployment shape).
    profiles = sample_star_profiles(rng, config.num_variates, config.variable_star_fraction)
    train = render_star_profiles(profiles, 0, config.train_length, rng)
    calibration = (
        render_star_profiles(profiles, config.train_length, config.calibration_length, rng)
        if config.calibration_length
        else np.empty((0, config.num_variates))
    )
    night_start = config.train_length + config.calibration_length

    # 2. Per-shard continuations of the same profiles: fresh noise, same sky.
    night = np.empty((config.night_length, config.num_shards, config.num_variates))
    for shard in range(config.num_shards):
        night[:, shard, :] = render_star_profiles(
            profiles, night_start, config.night_length, rng
        )

    # 3. Star roles: quiet stars host nothing, drift stars drift, the rest host events.
    roles = rng.permutation(num_stars)
    quiet = roles[: config.num_quiet_stars]
    drift_stars = roles[config.num_quiet_stars : config.num_quiet_stars + config.num_drift_stars]
    hosts = roles[config.num_quiet_stars + config.num_drift_stars :]
    if config.num_events > 0 and hosts.size == 0:
        raise RuntimeError("no host stars left for events")

    events = _place_events(config, rng, night, profiles, hosts)
    faults: list[FaultEvent] = []
    if drift_stars.size:
        faults += apply_baseline_drift(night, rng, drift_stars, config.drift_amplitude)

    # 4. Missing data: dropouts first (they contribute to the NaN budget),
    #    then short gap bursts up to the target fraction.  Quiet stars are
    #    deliberately not protected — a quiet star with gaps must stay quiet.
    for _ in range(config.num_dropouts):
        faults.append(inject_dropout(night, rng, config.dropout_length_range))
    if config.nan_fraction > 0:
        faults += inject_nan_gaps(
            night, rng, config.nan_fraction, config.nan_burst_length_range
        )

    # 5. The exposure timeline: regular cadence continuing the archive, jittered.
    cadence = config.cadence_seconds
    train_timestamps = np.arange(config.train_length, dtype=np.float64) * cadence
    # The calibration stretch must mimic *serving* conditions, cadence
    # jitter included: the time embedding reacts to jittered exposure times,
    # so a threshold calibrated on a regular cadence sits measurably too low
    # for a jittered night.
    calibration_timestamps = jitter_timestamps(
        (config.train_length + np.arange(config.calibration_length, dtype=np.float64))
        * cadence,
        rng,
        config.cadence_jitter_seconds,
        cadence,
    )
    base = (night_start + np.arange(config.night_length, dtype=np.float64)) * cadence
    timestamps = jitter_timestamps(base, rng, config.cadence_jitter_seconds, cadence)

    # 6. The arrival schedule: in-order delivery, then transport faults.
    arrival = list(range(config.night_length))
    faults += duplicate_arrivals(arrival, rng, config.num_duplicate_frames)
    faults += reorder_arrivals(arrival, rng, config.num_reordered_frames)

    return Scenario(
        config=config,
        profiles=profiles,
        train=train,
        train_timestamps=train_timestamps,
        calibration=calibration,
        calibration_timestamps=calibration_timestamps,
        exposures=night,
        timestamps=timestamps,
        events=events,
        faults=faults,
        arrival=arrival,
    )
