"""Scenario simulation & replay validation for the serving stack.

Every other test layer in this repository checks *numbers* — streaming ==
batch, compiled == autograd, vectorised POT == scalar POT.  This package
checks the *product*: that a fleet serving a realistic survey night — NaN
gaps, star dropouts, cadence jitter, duplicated and out-of-order frames,
baseline drift — actually raises alerts on the celestial events hidden in
it, and on nothing else.

* :mod:`~repro.simulation.scenario` — seeded, bit-reproducible survey-night
  builders composing the anomaly templates of :mod:`repro.data.anomalies`
  with fault injectors, emitting exact per-star ground-truth intervals;
* :mod:`~repro.simulation.faults` — the individual fault injectors;
* :mod:`~repro.simulation.replay` — :class:`ReplayHarness`, which drives a
  fleet tick by tick over a scenario's arrival schedule and scores the
  fired alerts (event-level precision/recall, detection-latency
  distribution, quiet-star false-alert budget), plus
  :func:`replay_flight_record`, which re-runs a
  :class:`repro.obs.FlightRecord` incident dump through a fresh fleet and
  diffs it tick-for-tick against what the incident actually produced;
* :mod:`~repro.simulation.trace` — :class:`ReplayTrace` golden-trace
  record/replay: per-tick scores/thresholds/alerts serialised to npz and
  diffed against a committed known-good trace for regression pinning.
"""

from .faults import (
    FaultEvent,
    apply_baseline_drift,
    duplicate_arrivals,
    inject_dropout,
    inject_nan_gaps,
    jitter_timestamps,
    reorder_arrivals,
)
from .scenario import (
    Frame,
    Scenario,
    ScenarioConfig,
    ScenarioEvent,
    StarProfile,
    build_scenario,
    render_star_profiles,
    sample_star_profiles,
)
from .replay import (
    EventOutcome,
    ReplayHarness,
    ReplayReport,
    replay_flight_record,
    score_replay,
)
from .trace import ReplayTrace, TraceMismatch

__all__ = [
    "FaultEvent",
    "apply_baseline_drift",
    "duplicate_arrivals",
    "inject_dropout",
    "inject_nan_gaps",
    "jitter_timestamps",
    "reorder_arrivals",
    "Frame",
    "Scenario",
    "ScenarioConfig",
    "ScenarioEvent",
    "StarProfile",
    "build_scenario",
    "render_star_profiles",
    "sample_star_profiles",
    "EventOutcome",
    "ReplayHarness",
    "ReplayReport",
    "replay_flight_record",
    "score_replay",
    "ReplayTrace",
    "TraceMismatch",
]
