"""Incremental POT thresholding for streaming anomaly scores.

The batch :func:`repro.evaluation.pot_threshold` re-sorts the full score
history and re-fits the GPD on every call.  :class:`IncrementalPOT` instead
maintains the exceedance set online:

* the initial threshold ``t`` is frozen at calibration time (as in SPOT);
* each new score above ``t`` is appended to the excess set;
* the GPD tail is re-fitted only every ``refit_interval`` new excesses — the
  expensive grid search is amortised away from the per-step hot path;
* between re-fits the final threshold ``z_q`` is still updated cheaply,
  because it depends on the running observation count ``n`` through the
  closed form of :func:`repro.evaluation.gpd_tail_threshold`.

The excess set is kept in a geometrically grown numpy array (amortised O(1)
appends) and can be bounded with ``max_excesses`` to cap memory on unbounded
streams (oldest excesses are discarded, a standard sliding-calibration
choice for multi-night monitoring).
"""

from __future__ import annotations

import numpy as np

from ..evaluation.pot import GPDFit, fit_gpd, gpd_tail_threshold

__all__ = ["IncrementalPOT"]


class IncrementalPOT:
    """Streaming peaks-over-threshold with periodic GPD tail re-fits.

    Parameters
    ----------
    q:
        Target tail probability (paper: 1e-3).
    level:
        Initial-threshold quantile of the calibration scores (paper: 0.99).
    refit_interval:
        Number of *new excesses* between GPD re-fits; 1 recovers SPOT's
        fit-on-every-excess behaviour.
    max_excesses:
        Optional cap on the retained excess set (oldest dropped first).
    """

    def __init__(
        self,
        q: float = 1e-3,
        level: float = 0.99,
        refit_interval: int = 32,
        max_excesses: int | None = None,
    ):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        if refit_interval < 1:
            raise ValueError("refit_interval must be at least 1")
        if max_excesses is not None and max_excesses < 8:
            raise ValueError("max_excesses must be at least 8")
        self.q = q
        self.level = level
        self.refit_interval = refit_interval
        self.max_excesses = max_excesses

        self.initial_threshold: float | None = None
        self.threshold: float | None = None
        self._fit: GPDFit | None = None
        self._excesses = np.zeros(64, dtype=np.float64)
        self._num_excesses = 0
        self._excesses_since_refit = 0
        self._num_observations = 0
        self.num_refits = 0

    # ------------------------------------------------------------------
    @property
    def num_observations(self) -> int:
        return self._num_observations

    @property
    def num_excesses(self) -> int:
        return self._num_excesses

    def _push_excess(self, excess: float) -> None:
        if self._num_excesses == len(self._excesses):
            self._excesses = np.concatenate([self._excesses, np.zeros_like(self._excesses)])
        self._excesses[self._num_excesses] = excess
        self._num_excesses += 1
        if self.max_excesses is not None and self._num_excesses > self.max_excesses:
            keep = self.max_excesses
            # Discarding an excess must also discard the observations that
            # accompanied it, otherwise the n/N_t ratio compares mismatched
            # populations and the threshold decays to the clamp floor on
            # long stationary streams.
            self._num_observations = max(
                int(round(self._num_observations * keep / self._num_excesses)), keep
            )
            self._excesses[:keep] = self._excesses[self._num_excesses - keep : self._num_excesses]
            self._num_excesses = keep

    def _refit(self) -> None:
        excesses = self._excesses[: self._num_excesses]
        if excesses.size == 0:
            self._fit = None
        else:
            self._fit = fit_gpd(excesses)
            self.num_refits += 1
        self._excesses_since_refit = 0
        self._recompute_threshold()

    def _recompute_threshold(self) -> None:
        if self._fit is None:
            self.threshold = self.initial_threshold
            return
        # The fit's excess count may lag the live set between re-fits; the
        # ratio n/N_t must use matching counts, so refresh it here.
        fit = GPDFit(self._fit.shape, self._fit.scale, self._num_excesses)
        self.threshold = gpd_tail_threshold(
            self.initial_threshold, fit, self.q, self._num_observations
        )

    # ------------------------------------------------------------------
    def fit(self, scores: np.ndarray) -> "IncrementalPOT":
        """Calibrate on an initial batch of scores (e.g. the train scores)."""
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if scores.size < 10:
            raise ValueError("IncrementalPOT needs at least 10 calibration scores")
        self._num_observations = int(scores.size)
        self.initial_threshold = float(np.quantile(scores, self.level))
        excesses = scores[scores > self.initial_threshold] - self.initial_threshold
        self._num_excesses = 0
        for excess in excesses:
            self._push_excess(float(excess))
        self._refit()
        return self

    def update(self, score: float) -> bool:
        """Ingest one score; returns ``True`` if it exceeds the threshold.

        Scores above the final threshold are treated as anomalies and (as in
        SPOT) *not* added to the tail model; scores between the initial and
        final thresholds enrich the excess set.

        A non-finite score means *no observation* (a masked survey gap, not a
        measurement): the update is a no-op — the observation count, excess
        set and threshold are all left untouched — and no alarm is raised.
        Counting gaps as observations would silently inflate ``n`` and decay
        the threshold on streams with missing data.
        """
        if self.threshold is None or self.initial_threshold is None:
            raise RuntimeError("IncrementalPOT must be fitted before update")
        if not np.isfinite(score):
            return False
        self._num_observations += 1
        if score > self.threshold:
            # The observation count just grew; refresh the closed form before
            # the early return, otherwise the threshold keeps using a stale n
            # until the next benign score arrives.
            self._recompute_threshold()
            return True
        if score > self.initial_threshold:
            self._push_excess(score - self.initial_threshold)
            self._excesses_since_refit += 1
            if self._excesses_since_refit >= self.refit_interval:
                self._refit()
                return False
        # Cheap closed-form update: n grew, the GPD parameters did not.
        self._recompute_threshold()
        return False

    def update_many(self, scores: np.ndarray) -> np.ndarray:
        """Sequential scalar semantics over many scores; returns the alarms.

        This feeds every score through **one** pot, one Python call each —
        it is the slow path.  For one-score-per-star fleet ticks use
        :class:`~repro.streaming.vector_pot.VectorizedIncrementalPOT`.
        """
        return np.asarray(
            [self.update(float(s)) for s in np.asarray(scores, dtype=np.float64).ravel()],
            dtype=np.int64,
        )
