"""Sharded multi-star fleet serving: one vectorised model call per tick.

A GWAC night produces one new sample per star per exposure for ~10^5 stars.
Stepping a :class:`~repro.streaming.online_detector.StreamingDetector` per
star group would pay one model call per shard per tick; the fleet manager
instead stacks every shard's current window along the batch axis and scores
the whole fleet with **one** forward pass.  Window-wise graph learning makes
this exact: each batch element (one shard's window) is processed
independently, so scores are identical to stepping the shards one by one.

Shards share a single fitted :class:`repro.core.AeroDetector` — the model is
trained on one reference field and serves every shard, the standard
train-once / serve-many deployment shape.  Each shard keeps its own ring
buffer; all shards share the exposure timeline.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..obs.health import FleetHealth, latency_percentiles
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from .alerts import Alert, AlertPolicy
from .online_detector import (
    check_swap_compatible,
    impute_missing_row,
    rescale_buffer_rows,
    resolve_backend_engine,
    resolve_swap_source,
)
from .timeline import seed_stream_state
from .vector_pot import VectorizedIncrementalPOT, calibrate_adaptive_pot

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from ..core.detector import AeroDetector

__all__ = ["FleetManager", "FleetStepResult"]

logger = logging.getLogger("repro.streaming.fleet")

#: Recent step latencies retained for health() percentiles (always on; a
#: deque append per tick is noise next to the model forward).
_LATENCY_RING = 1024


@dataclass
class FleetStepResult:
    """Fleet-wide outputs for one exposure tick."""

    step: int
    scores: np.ndarray                 # (num_shards, N); NaN during warm-up
    labels: np.ndarray                 # (num_shards, N) int64
    threshold: float                   # frozen global POT calibration (legacy scalar)
    thresholds: np.ndarray | None = None  # (num_shards, N) thresholds that labelled this tick
    alerts: list[Alert] = field(default_factory=list)
    ready: bool = True


class FleetManager:
    """Micro-batched scoring of many independent star groups ("shards").

    Parameters
    ----------
    detector:
        A fitted batch detector whose model serves every shard.
    num_shards:
        Number of star groups; total stars served is ``num_shards * N``.
    seed_context:
        Seed every shard's buffer with the detector's training-tail context
        so scoring starts on the first tick (default).  Disable to model
        cold-started shards that warm up over the first ``W`` exposures.
    alert_policy:
        Optional :class:`AlertPolicy`; defaults to a debounce-2 / cooldown-30
        policy.  Pass ``None`` explicitly via ``alerts=False``-style usage is
        not supported — use a permissive policy instead.
    backend:
        ``"autograd"``, ``"compiled"``, ``"incremental"``, ``None`` (inherit
        the detector's default) or a pre-built
        :class:`repro.runtime.CompiledDetector`.
        On the compiled backend every tick is served through the fused
        multi-star ``score_stack`` path: the ``(num_shards, W, N)`` stack of
        ring-buffer windows is scored in one tape-free plan call.
        ``"incremental"`` compiles the detector and serves ticks through a
        cross-tick :class:`repro.runtime.IncrementalState`: each exposure
        appends one row per shard into the state's ring arenas and only the
        newest timestep's work is recomputed (scores stay bit-identical to
        the compiled backend in float64).  The state rebuilds transparently
        from the ring buffers whenever its history is discarded (fresh
        start, hot swap), and model shapes the incremental plan cannot
        serve exactly fall back to the full compiled forward per tick.
    threshold_mode:
        ``"global"`` (default) labels every star against the detector's one
        frozen POT scalar — the historical behaviour, correct only while
        every star's residual distribution matches the calibration mix.
        ``"per_star"`` maintains a :class:`VectorizedIncrementalPOT`: each
        star carries its own initial threshold, excess set and staggered
        GPD re-fit cadence (calibrated per variate of the reference field,
        tiled across shards), advanced by one array-native update per tick.
        Labels then use each star's own adaptive threshold (strict ``>``,
        the SPOT convention) and ``FleetStepResult.thresholds`` /
        ``Alert.threshold`` record the per-star values that fired.
    pot_refit_interval:
        Per-star GPD re-fit cadence of the adaptive thresholds (ignored in
        global mode).
    pot_max_excesses:
        Optional per-star excess-set bound (sliding calibration for
        multi-night streams; ignored in global mode).
    rearm_min_gap:
        Re-arm guard for stars rejoining after a run of missing
        observations.  A gap of at least this many consecutive missing ticks
        (a star dropping out of the field, not a one-exposure cloud blip)
        leaves the star's window dominated by imputed rows; on rejoin its
        scores stay masked (NaN — no labels, no POT updates, no alert
        streaks) for as many ticks as the gap lasted, capped at ``W - 1``,
        until real rows refill the window.  Set ``0`` to disable.
    threshold:
        Serving-side override of the frozen global threshold (global mode
        only).  The detector's default calibration comes from its *training*
        scores, which the model has partially memorized; production serving
        recalibrates on scores from a held-out quiet stretch (e.g.
        ``pot_threshold(detector.score(calibration), q)`` over a
        :class:`repro.simulation.Scenario`'s calibration split).
    registry, tracer:
        Telemetry sinks (see :mod:`repro.obs`); ``None`` captures the
        process defaults at construction, which are no-ops until
        :func:`repro.obs.enable_telemetry` runs.  Telemetry never perturbs
        scores, thresholds or alerts, and :meth:`health` works (from the
        always-on cheap internal accounting) either way.
    drift_monitor:
        Optional fitted :class:`repro.obs.DriftMonitor` covering exactly
        this fleet's stars (e.g. from
        :func:`repro.obs.calibrate_drift_monitor` over the calibration
        scores).  Each tick's masked score vector feeds one vectorised
        ``update``; stars that newly trip trigger the flight recorder (when
        attached).  The monitor only observes — scores, thresholds and
        alerts are bit-identical with or without it.
    recorder:
        Optional :class:`repro.obs.FlightRecorder`.  Every tick's raw rows
        and outputs are buffered in its bounded ring; drift trips (and the
        recorder's own alert-storm watchdog) freeze the ring into a
        replayable :class:`repro.obs.FlightRecord`.  Passive like the drift
        monitor.
    """

    def __init__(
        self,
        detector: "AeroDetector",
        num_shards: int,
        seed_context: bool = True,
        alert_policy: AlertPolicy | None = None,
        backend=None,
        threshold_mode: str = "global",
        pot_refit_interval: int = 32,
        pot_max_excesses: int | None = None,
        rearm_min_gap: int = 3,
        threshold: float | None = None,
        registry=None,
        tracer=None,
        drift_monitor=None,
        recorder=None,
    ):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if threshold_mode not in ("global", "per_star"):
            raise ValueError(
                f"threshold_mode must be 'global' or 'per_star', got {threshold_mode!r}"
            )
        if threshold is not None and threshold_mode != "global":
            # Accepting the override while per-star labels come from the
            # adaptive POT would silently leave the user's calibration out of
            # force; restore per-star calibrations via load_threshold_state.
            raise ValueError("threshold overrides apply to threshold_mode='global' only")
        model = detector._require_fitted()
        if model.noise is not None and model.noise.graph_mode == "dynamic":
            # The dynamic-graph ablation smooths adjacency state sequentially
            # across batch elements, so stacking unrelated shards on the
            # batch axis would chain state between shards and make scores
            # depend on shard order.  Serve dynamic-mode detectors with one
            # StreamingDetector per shard instead.
            raise ValueError("FleetManager does not support graph_mode='dynamic' detectors")
        self.detector = detector
        self.config = detector.config
        self.num_shards = num_shards
        self.num_variates = model.num_variates
        self._scaler = detector.scaler
        self.threshold = detector.threshold() if threshold is None else float(threshold)
        self.threshold_mode = threshold_mode
        self.adaptive_pot: VectorizedIncrementalPOT | None = None
        if threshold_mode == "per_star":
            self.adaptive_pot = calibrate_adaptive_pot(
                detector,
                num_stars=num_shards * model.num_variates,
                refit_interval=pot_refit_interval,
                max_excesses=pot_max_excesses,
            )
        if drift_monitor is not None and drift_monitor.num_stars != num_shards * model.num_variates:
            raise ValueError(
                f"drift monitor covers {drift_monitor.num_stars} stars, "
                f"fleet serves {num_shards * model.num_variates}"
            )
        self.drift_monitor = drift_monitor
        self.recorder = recorder
        if rearm_min_gap < 0:
            raise ValueError("rearm_min_gap must be non-negative")
        self.rearm_min_gap = rearm_min_gap
        self._gap_streak = np.zeros((num_shards, model.num_variates), dtype=np.int64)
        self._suppress = np.zeros((num_shards, model.num_variates), dtype=np.int64)
        self.alert_policy = alert_policy or AlertPolicy()
        # "incremental" rides on the compiled engine: resolve it as
        # "compiled" and layer the cross-tick state on top.
        self._incremental = backend == "incremental"
        self._engine = resolve_backend_engine(
            detector, "compiled" if self._incremental else backend
        )
        self._inc_state = None
        self._inc_retired = {"ticks": 0, "incremental_ticks": 0, "rebuilds": 0, "fallback_ticks": 0}
        if self._incremental:
            self.backend = "incremental"
        else:
            self.backend = "autograd" if self._engine is None else "compiled"

        window = self.config.window
        # Shards share one exposure timeline, stitched to the training tail
        # (or to row indices) under the same mode-locking rules as a single
        # stream.
        self._buffers, self._timeline = seed_stream_state(detector, num_shards, seed_context)
        self._step = 0
        # Reusable micro-batch staging arrays: one slot per shard, filled by
        # copying each shard's zero-copy window view.  The autograd path
        # stages variate-major ``(S, N, W)`` windows; the compiled path keeps
        # the ring buffers' time-major layout and hands the ``(S, W, N)``
        # stack to the fused ``score_stack`` plan call.
        if self._engine is None:
            self._batch_long = np.empty((num_shards, self.num_variates, window))
        else:
            self._batch_stack = np.empty((num_shards, window, self.num_variates))
        self._batch_times = np.empty((num_shards, window))

        # Always-on cheap accounting backing health() — one small array op
        # and a deque append per tick, independent of the telemetry switch.
        self.model_version: str | None = None
        self._missing_total = np.zeros(num_shards, dtype=np.int64)
        self._dropouts = 0
        self._rejoins = 0
        self._latencies: deque = deque(maxlen=_LATENCY_RING)
        self._tracer = get_tracer() if tracer is None else tracer
        self._registry = get_registry() if registry is None else registry
        self._telemetry = bool(self._registry.enabled)
        self._m_ticks = self._registry.counter(
            "fleet_ticks_total", "Exposure ticks ingested across all fleets"
        )
        self._m_step_seconds = self._registry.histogram(
            "fleet_step_seconds", "Wall-clock latency of one fleet tick"
        )
        self._m_missing = self._registry.counter_vector(
            "fleet_missing_observations_total",
            num_shards,
            "Missing (non-finite) observations per shard",
            label="shard",
        )
        self._m_masked = self._registry.counter_vector(
            "fleet_masked_scores_total",
            num_shards,
            "Scores masked per shard (missing observations plus re-arm guards)",
            label="shard",
        )
        self._m_gap_rate = self._registry.gauge_vector(
            "fleet_shard_gap_rate",
            num_shards,
            "Cumulative fraction of missing observations per shard",
            label="shard",
        )
        self._m_rearming = self._registry.gauge(
            "fleet_rearming_stars", "Stars whose scores are currently re-arm masked"
        )
        self._m_dropouts = self._registry.counter(
            "fleet_star_dropouts_total", "Stars that crossed the dropout gap"
        )
        self._m_rejoins = self._registry.counter(
            "fleet_star_rejoins_total", "Dropped-out stars that rejoined the stream"
        )
        self._m_swaps = self._registry.counter(
            "fleet_hot_swaps_total", "Serving models hot-swapped into running fleets"
        )
        self._m_inc_ticks = self._registry.counter(
            "fleet_incremental_ticks_total",
            "Fleet ticks served from live incremental state (cache hits)",
        )
        self._m_inc_rebuilds = self._registry.counter(
            "fleet_incremental_rebuilds_total",
            "Incremental states rebuilt from the shard ring buffers",
        )
        self._m_inc_fallbacks = self._registry.counter(
            "fleet_incremental_fallbacks_total",
            "Incremental ticks served by the full-forward fallback",
        )

    # ------------------------------------------------------------------
    @property
    def num_stars(self) -> int:
        """Total stars served by the fleet."""
        return self.num_shards * self.num_variates

    @property
    def steps_ingested(self) -> int:
        return self._step

    @property
    def threshold_refits(self) -> int:
        """Fleet-wide adaptive GPD re-fit count (0 in global mode)."""
        return 0 if self.adaptive_pot is None else self.adaptive_pot.total_refits

    @property
    def threshold_refit_failures(self) -> int:
        """Fleet-wide adaptive GPD re-fit *failures* (0 in global mode)."""
        return 0 if self.adaptive_pot is None else self.adaptive_pot.refit_failures

    # ------------------------------------------------------------------
    def threshold_state(self) -> dict | None:
        """The per-star threshold calibration as flat arrays, or ``None``.

        The dict round-trips through :meth:`load_threshold_state` (and
        through ``ModelRegistry.publish(..., calibration=...)`` /
        ``deploy``), so a freshly started or newly deployed fleet restores
        per-star thresholds without re-calibrating.
        """
        return None if self.adaptive_pot is None else self.adaptive_pot.state_dict()

    def load_threshold_state(self, state: dict) -> None:
        """Restore per-star thresholds captured by :meth:`threshold_state`.

        Switches the fleet to ``threshold_mode="per_star"`` if it was
        serving the global scalar.  The state must describe exactly this
        fleet's ``num_stars``.
        """
        pot = VectorizedIncrementalPOT.from_state_dict(state)
        if pot.num_stars != self.num_stars:
            raise ValueError(
                f"threshold state covers {pot.num_stars} stars, fleet serves {self.num_stars}"
            )
        self.adaptive_pot = pot
        self.threshold_mode = "per_star"

    # ------------------------------------------------------------------
    def drift_state(self) -> dict | None:
        """The drift monitor's reference sketch as flat arrays, or ``None``.

        The dict round-trips through :meth:`load_drift_state` (and through
        ``ModelRegistry.publish(..., drift_reference=...)`` / ``deploy``),
        so a newly deployed fleet monitors against the same calibration
        snapshot the published model was referenced to.
        """
        return None if self.drift_monitor is None else self.drift_monitor.state_dict()

    def load_drift_state(self, state: dict) -> None:
        """Attach a drift monitor rebuilt from :meth:`drift_state` output.

        The reference must describe exactly this fleet's ``num_stars``.
        Live sketches start fresh (they re-warm within the monitor's
        ``min_observations`` ticks); only the calibration-time reference is
        carried over — which is the point: drift is measured against the
        published model's calibration, not against whatever the previous
        process had lately seen.
        """
        from ..obs.drift import DriftMonitor

        monitor = DriftMonitor.from_state_dict(state)
        if monitor.num_stars != self.num_stars:
            raise ValueError(
                f"drift state covers {monitor.num_stars} stars, fleet serves {self.num_stars}"
            )
        self.drift_monitor = monitor

    # ------------------------------------------------------------------
    def swap_model(self, source, threshold: float | None = None) -> None:
        """Hot-swap the fleet's serving model without dropping buffered state.

        ``source`` is a fitted :class:`~repro.core.AeroDetector`, a
        :class:`~repro.runtime.CompiledDetector`, or a path to a saved
        detector artifact — e.g. a freshly retrained model published through
        a :class:`repro.training.ModelRegistry`.  The new model must serve
        the same variates and window geometry (dynamic-graph detectors stay
        rejected, as at construction).  Every shard's ring buffer is
        re-expressed under the new model's scaler in place, so the next
        :meth:`step` serves the new model's scores with the full window
        history intact; the shared timeline and alert-policy state carry
        over unchanged.  In ``threshold_mode="per_star"`` the adaptive
        threshold state (excess sets, observation counts, re-fit cadence)
        also carries across the swap and keeps adapting.

        The frozen global ``threshold`` switches to the new model's
        train-score calibration — a construction-time serving-side override
        is deliberately *not* carried over, because it was calibrated
        against the old model's score scale.  Pass ``threshold=`` here with
        a value recalibrated on the new model's scores (e.g. over a held-out
        quiet stretch) to keep serving an override across the swap.
        """
        target = resolve_swap_source(
            source,
            prefer_compiled=self._engine is not None,
            dtype=None if self._engine is None else self._engine.dtype,
        )
        check_swap_compatible(target, self.num_variates, self.config)
        if target.graph_mode == "dynamic":
            raise ValueError("FleetManager does not support graph_mode='dynamic' detectors")
        rescale_buffer_rows(self._buffers, self._scaler, target.scaler)

        self.detector = target.detector
        self.config = target.config
        self._scaler = target.scaler
        self._engine = target.engine
        self.backend = "autograd" if self._engine is None else "compiled"
        if self._incremental:
            # prefer_compiled guarantees a compiled engine above; the old
            # state's cached history was built under the old model and
            # scaler, so it is discarded (its accounting folds into the
            # running totals) and rebuilt on the next tick.
            self.backend = "incremental"
            self._retire_inc_state()
        self.threshold = target.threshold if threshold is None else float(threshold)
        # The staging array of the other backend kind may not exist yet.
        window = self.config.window
        if self._engine is None and not hasattr(self, "_batch_long"):
            self._batch_long = np.empty((self.num_shards, self.num_variates, window))
        if self._engine is not None and not hasattr(self, "_batch_stack"):
            self._batch_stack = np.empty((self.num_shards, window, self.num_variates))
        # A raw-source swap leaves the registry-version label unknown;
        # ModelRegistry.deploy re-stamps it after calling us.
        self.model_version = None
        self._m_swaps.inc()
        logger.warning(
            "hot_swap step=%d backend=%s threshold=%.6g", self._step, self.backend, self.threshold
        )

    # ------------------------------------------------------------------
    def health(self) -> FleetHealth:
        """Live serving-state snapshot (works with telemetry off).

        Aggregates the fleet's always-on internal accounting — steps, gap
        rates, dropout/rejoin counts, re-arm masks in force, adaptive POT
        re-fit counts, alert totals and recent step-latency percentiles —
        into a :class:`repro.obs.FleetHealth`.
        """
        observed = self._step * self.num_variates
        gap_rates = (
            (self._missing_total / observed) if observed else np.zeros(self.num_shards)
        )
        missing_rate = float(self._missing_total.sum()) / (observed * self.num_shards) if observed else 0.0
        p50, p99 = latency_percentiles(self._latencies)
        return FleetHealth(
            steps_ingested=self._step,
            num_shards=self.num_shards,
            num_stars=self.num_stars,
            backend=self.backend,
            threshold_mode=self.threshold_mode,
            model_version=self.model_version,
            warmed_up=bool(self._buffers[0].is_full),
            alerts_fired=self.alert_policy.alerts_fired,
            threshold_refits=self.threshold_refits,
            rearm_suppressed_stars=int(np.count_nonzero(self._suppress > 0)),
            dropouts=self._dropouts,
            rejoins=self._rejoins,
            missing_rate=missing_rate,
            shard_gap_rates=[float(rate) for rate in gap_rates],
            p50_step_ms=p50,
            p99_step_ms=p99,
            drift_tripped_stars=(
                0 if self.drift_monitor is None else self.drift_monitor.tripped_stars
            ),
        )

    # ------------------------------------------------------------------
    def step(self, rows: np.ndarray, timestamp: float | None = None) -> FleetStepResult:
        """Ingest one exposure: ``rows`` has shape ``(num_shards, N)``.

        All shards advance by one sample and the whole fleet is scored with a
        single vectorised model call of batch size ``num_shards``.

        Non-finite entries in ``rows`` mark *missing observations* (cloud
        gaps, dropped stars, dead pixels).  A missing star's ring-buffer slot
        is imputed with its last buffered value — one NaN must not poison the
        next ``W`` windows — but the star's emitted score is NaN for this
        tick: it is excluded from labelling, from the adaptive POT update and
        from alert streaks (which :class:`AlertPolicy` neither advances nor
        resets on NaN).
        """
        started = time.perf_counter()
        with self._tracer.span("fleet.step"):
            result = self._step_inner(rows, timestamp)
        elapsed = time.perf_counter() - started
        self._latencies.append(elapsed)
        self._m_ticks.inc()
        self._m_step_seconds.observe(elapsed)
        # Model-quality observability rides after the scoring path: the
        # recorder buffers the frame first so a drift trip's dump includes
        # the tick that tripped it.  Both only read `result` — attaching
        # them leaves scores, thresholds and alerts bit-identical.
        if self.recorder is not None:
            self.recorder.record(rows, timestamp, result)
        if self.drift_monitor is not None:
            with self._tracer.span("fleet.drift"):
                newly_tripped = self.drift_monitor.update(result.scores)
            if newly_tripped and self.recorder is not None:
                self.recorder.trigger("drift_trip")
        return result

    def _step_inner(self, rows: np.ndarray, timestamp: float | None) -> FleetStepResult:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.shape != (self.num_shards, self.num_variates):
            raise ValueError(
                f"rows must have shape ({self.num_shards}, {self.num_variates}), got {rows.shape}"
            )
        with self._tracer.span("fleet.ingest"):
            missing = ~np.isfinite(rows)
            any_missing = bool(missing.any())
            masked = missing
            if self.rearm_min_gap:
                # Re-arm guard: a star rejoining after a real dropout keeps its
                # scores masked while its window is still dominated by imputed
                # rows, instead of paging the operator with a rejoin transient.
                rejoined = ~missing & (self._gap_streak >= self.rearm_min_gap)
                if rejoined.any():
                    # A fresh dropout during an active re-arm must not *shorten*
                    # the remaining suppression — the window may still be
                    # dominated by the earlier gap's imputed rows.
                    self._suppress[rejoined] = np.maximum(
                        self._suppress[rejoined],
                        np.minimum(self._gap_streak[rejoined], self.config.window - 1),
                    )
                    num_rejoined = int(np.count_nonzero(rejoined))
                    self._rejoins += num_rejoined
                    self._m_rejoins.inc(num_rejoined)
                    logger.warning(
                        "star_rejoin step=%d stars=%d", self._step, num_rejoined
                    )
                self._gap_streak[missing] += 1
                self._gap_streak[~missing] = 0
                if any_missing:
                    dropped = int(
                        np.count_nonzero(missing & (self._gap_streak == self.rearm_min_gap))
                    )
                    if dropped:
                        self._dropouts += dropped
                        self._m_dropouts.inc(dropped)
                        logger.warning(
                            "star_dropout step=%d stars=%d min_gap=%d",
                            self._step, dropped, self.rearm_min_gap,
                        )
                suppressed = ~missing & (self._suppress > 0)
                if suppressed.any():
                    self._suppress[suppressed] -= 1
                    masked = missing | suppressed
            any_masked = bool(masked.any())
            if any_missing:
                self._missing_total += missing.sum(axis=1)
            scaled = self._scaler.transform(rows)
            times = self._timeline.resolve(1, None if timestamp is None else [timestamp])
            self._timeline.append(times[0])

            window = self.config.window
            short = self.config.short_window
            if any_missing:
                for shard in np.flatnonzero(missing.any(axis=1)):
                    impute_missing_row(scaled[shard], missing[shard], self._buffers[shard])
            for shard, buffer in enumerate(self._buffers):
                buffer.append(scaled[shard])
            step_index = self._step
            self._step += 1
            if self._telemetry:
                self._record_tick_metrics(missing, masked, any_missing, any_masked)

        if not self._buffers[0].is_full:
            scores = np.full((self.num_shards, self.num_variates), np.nan)  # repro: allow[hot-alloc] -- warm-up ticks only (buffer not yet full); results outlive the tick
            labels = np.zeros((self.num_shards, self.num_variates), dtype=np.int64)  # repro: allow[hot-alloc] -- warm-up ticks only, same as above
            return FleetStepResult(
                step=step_index, scores=scores, labels=labels,
                threshold=self.threshold, thresholds=self._current_thresholds(),
                ready=False,
            )

        with self._tracer.span("fleet.forward"):
            if self._incremental:
                scores = self._incremental_forward(scaled, float(times[0]))
            elif self._engine is not None:
                self._batch_times[:] = self._timeline.view(window)[None, :]
                for shard, buffer in enumerate(self._buffers):
                    self._batch_stack[shard] = buffer.view(window)
                scores = self._engine.score_stack(self._batch_stack, self._batch_times)
            else:
                self._batch_times[:] = self._timeline.view(window)[None, :]
                for shard, buffer in enumerate(self._buffers):
                    self._batch_long[shard] = buffer.view(window).T
                scores = self.detector.score_windows(
                    self._batch_long,
                    self._batch_long[:, :, window - short :],
                    self._batch_times,
                    self._batch_times[:, window - short :],
                    backend="autograd",
                )
        if any_masked:
            # An imputed window still yields a finite model output, but a
            # star that was not observed this tick — or is re-arming after a
            # dropout — has no trustworthy score: emit NaN so labels, POT
            # state and alert streaks all treat it as a gap.
            scores = scores.copy() if not scores.flags.writeable else scores  # repro: allow[hot-alloc] -- copy-on-write for masked ticks only; unmasked steady state takes the no-copy branch
            scores[masked] = np.nan
        with self._tracer.span("fleet.thresholds"):
            if self.adaptive_pot is not None:
                # The SPOT decision uses the thresholds as they stood *before*
                # this observation — snapshot them so results and alerts record
                # the values that actually fired, then advance the whole fleet
                # with one array-native update.
                thresholds = self._current_thresholds()
                labels = self.adaptive_pot.update(scores.ravel()).reshape(scores.shape)
            else:
                thresholds = self._current_thresholds()
                labels = (scores >= self.threshold).astype(np.int64)  # repro: allow[hot-alloc] -- the emitted label array must outlive the tick
        with self._tracer.span("fleet.alerts"):
            if self.adaptive_pot is not None:
                alerts = self.alert_policy.update(
                    step_index, scores, thresholds.ravel(), shard_width=self.num_variates
                )
            else:
                alerts = self.alert_policy.update(
                    step_index, scores, self.threshold, shard_width=self.num_variates
                )
        return FleetStepResult(
            step=step_index, scores=scores, labels=labels,
            threshold=self.threshold, thresholds=thresholds, alerts=alerts,
        )

    def _incremental_forward(self, scaled: np.ndarray, timestamp: float) -> np.ndarray:
        """Serve one tick from the cross-tick incremental state.

        The state ingests the same imputed, scaled rows the ring buffers
        just did, so the two stay in lockstep and each tick costs only the
        newest timestep's compute.  Whenever the state has no trustworthy
        history — fresh fleet, hot swap — it rebuilds from the ring buffers
        in place and serves the same tick from the rebuilt window.
        """
        state = self._inc_state
        window = self.config.window
        if state is not None and state.valid:
            scores = self._engine.score_stack_step(state, scaled, timestamp)
            if state.supported:
                self._m_inc_ticks.inc()
        else:
            if state is None:
                state = self._engine.new_incremental_state(self.num_shards)
                self._inc_state = state
            for shard, buffer in enumerate(self._buffers):
                self._batch_stack[shard] = buffer.view(window)
            state.rebuild(self._batch_stack, self._timeline.view(window))
            scores = state.score()
            self._m_inc_rebuilds.inc()
        if not state.supported:
            self._m_inc_fallbacks.inc()
        return scores

    def _retire_inc_state(self) -> None:
        """Fold the current state's accounting into the running totals."""
        state = self._inc_state
        if state is not None:
            self._inc_retired["ticks"] += state.ticks
            self._inc_retired["incremental_ticks"] += state.incremental_ticks
            self._inc_retired["rebuilds"] += state.rebuilds
            self._inc_retired["fallback_ticks"] += state.fallbacks
        self._inc_state = None

    def incremental_stats(self) -> dict | None:
        """Cross-tick cache accounting, or ``None`` off the incremental backend.

        Cumulative across the fleet's lifetime (hot swaps retire the live
        state but keep its counts).  ``incremental_ticks`` counts cache
        hits (only the newest timestep recomputed), ``rebuilds`` counts
        ring-buffer state rebuilds, and ``fallback_ticks`` counts ticks
        served by the full compiled forward because the model shape has no
        exact incremental plan.
        """
        if not self._incremental:
            return None
        stats = dict(self._inc_retired)
        state = self._inc_state
        if state is not None:
            stats["ticks"] += state.ticks
            stats["incremental_ticks"] += state.incremental_ticks
            stats["rebuilds"] += state.rebuilds
            stats["fallback_ticks"] += state.fallbacks
        return stats

    def _record_tick_metrics(self, missing, masked, any_missing: bool, any_masked: bool) -> None:
        """Per-tick metric updates (telemetry on only): O(1) array ops."""
        if any_missing:
            self._m_missing.add(missing.sum(axis=1))
        if any_masked:
            self._m_masked.add(masked.sum(axis=1))
        self._m_gap_rate.set(self._missing_total / (self._step * self.num_variates))
        if self.rearm_min_gap:
            self._m_rearming.set(int(np.count_nonzero(self._suppress > 0)))

    def _current_thresholds(self) -> np.ndarray:
        """The per-star thresholds in force right now, as ``(num_shards, N)``."""
        if self.adaptive_pot is not None:
            return self.adaptive_pot.thresholds.reshape(
                self.num_shards, self.num_variates
            ).copy()
        return np.full((self.num_shards, self.num_variates), self.threshold)

    def run(self, exposures: np.ndarray, timestamps: np.ndarray | None = None) -> list[FleetStepResult]:
        """Step through ``(T, num_shards, N)`` exposures and collect the results."""
        exposures = np.asarray(exposures, dtype=np.float64)
        if exposures.ndim != 3:
            raise ValueError("exposures must be 3-D (time, shards, variates)")
        results = []
        for tick, rows in enumerate(exposures):
            timestamp = None if timestamps is None else float(timestamps[tick])
            results.append(self.step(rows, timestamp))
        return results
