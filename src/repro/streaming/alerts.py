"""Alert policy layer for the GWAC monitoring scenario.

Raw per-timestamp exceedances are too noisy to page an astronomer on: a
single spurious residual spike would fire thousands of alerts per night
across a fleet.  :class:`AlertPolicy` turns exceedances into actionable
alerts with two standard serving-side controls:

* **debouncing** — a star must exceed the threshold on ``min_consecutive``
  consecutive steps before an alert fires (short flares still pass because
  the paper's anomaly segments span many samples);
* **cooldown** — once a star fires, further alerts for the same star are
  suppressed for ``cooldown`` steps, so one long event produces one alert.

The policy is fully vectorised over the fleet's flattened star axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import get_registry

__all__ = ["Alert", "AlertPolicy"]


@dataclass(frozen=True)
class Alert:
    """One debounced alert for one star."""

    star: int          # flat star index across the fleet
    shard: int         # shard the star lives in (0 for a single detector)
    variate: int       # variate index within the shard
    step: int          # stream step at which the alert fired
    score: float
    threshold: float   # the (per-star, when adaptive) threshold that fired it


class AlertPolicy:
    """Debounced, cooldown-limited alerting over per-star exceedances."""

    def __init__(self, min_consecutive: int = 2, cooldown: int = 30):
        if min_consecutive < 1:
            raise ValueError("min_consecutive must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.min_consecutive = min_consecutive
        self.cooldown = cooldown
        self._streak: np.ndarray | None = None
        self._muted_until: np.ndarray | None = None
        self.alerts_fired = 0
        self._m_fired = get_registry().counter(
            "alerts_fired_total", "Debounced alerts fired across all policies"
        )

    def _ensure_state(self, num_stars: int) -> None:
        if self._streak is None:
            self._streak = np.zeros(num_stars, dtype=np.int64)
            self._muted_until = np.full(num_stars, -1, dtype=np.int64)
        elif len(self._streak) != num_stars:
            raise ValueError(
                f"policy tracks {len(self._streak)} stars but update got {num_stars}"
            )

    def reset(self) -> None:
        self._streak = None
        self._muted_until = None
        self.alerts_fired = 0

    def update(
        self,
        step: int,
        scores: np.ndarray,
        threshold: float | np.ndarray,
        shard_width: int | None = None,
    ) -> list[Alert]:
        """Ingest one step of scores (any shape; flattened) and emit alerts.

        ``threshold`` is either one fleet-wide scalar or a per-star array
        (one entry per flattened star, e.g. the adaptive thresholds of a
        ``threshold_mode="per_star"`` fleet); each fired :class:`Alert`
        records the threshold that actually fired it.

        ``shard_width`` fixes the ``shard``/``variate`` decoding of flat
        star indices.  Callers that know their geometry (a fleet with ``N``
        variates per shard) must pass it explicitly — inferring it from the
        score array's last axis mislabels alerts whenever the caller hands
        in pre-flattened scores.  Left as ``None``, 2-D input decodes by its
        last axis and 1-D input is treated as a single shard.

        NaN scores (warm-up) never fire and do not break a star's streak.
        """
        scores = np.asarray(scores, dtype=np.float64)
        flat = scores.ravel()
        if shard_width is None:
            shard_width = scores.shape[-1] if scores.ndim > 1 else flat.size
        if shard_width < 1:
            raise ValueError("shard_width must be at least 1")
        self._ensure_state(flat.size)

        thresholds = np.asarray(threshold, dtype=np.float64).ravel()
        if thresholds.size not in (1, flat.size):
            raise ValueError(
                f"threshold must be a scalar or one entry per star ({flat.size}), "
                f"got {thresholds.size}"
            )
        per_star = np.broadcast_to(thresholds, flat.shape) if thresholds.size == 1 else thresholds

        valid = np.isfinite(flat)
        exceed = valid & (flat >= per_star)
        self._streak[exceed] += 1
        self._streak[valid & ~exceed] = 0

        eligible = exceed & (self._streak >= self.min_consecutive) & (self._muted_until < step)
        fired = np.flatnonzero(eligible)
        self._muted_until[fired] = step + self.cooldown
        self._streak[fired] = 0
        self.alerts_fired += len(fired)
        if fired.size:
            self._m_fired.inc(len(fired))
        return [
            Alert(
                star=int(star),
                shard=int(star) // shard_width,
                variate=int(star) % shard_width,
                step=step,
                score=float(flat[star]),
                threshold=float(per_star[star]),
            )
            for star in fired
        ]
