"""Alert policy layer for the GWAC monitoring scenario.

Raw per-timestamp exceedances are too noisy to page an astronomer on: a
single spurious residual spike would fire thousands of alerts per night
across a fleet.  :class:`AlertPolicy` turns exceedances into actionable
alerts with two standard serving-side controls:

* **debouncing** — a star must exceed the threshold on ``min_consecutive``
  consecutive steps before an alert fires (short flares still pass because
  the paper's anomaly segments span many samples);
* **cooldown** — once a star fires, further alerts for the same star are
  suppressed for ``cooldown`` steps, so one long event produces one alert.

The policy is fully vectorised over the fleet's flattened star axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Alert", "AlertPolicy"]


@dataclass(frozen=True)
class Alert:
    """One debounced alert for one star."""

    star: int          # flat star index across the fleet
    shard: int         # shard the star lives in (0 for a single detector)
    variate: int       # variate index within the shard
    step: int          # stream step at which the alert fired
    score: float
    threshold: float


class AlertPolicy:
    """Debounced, cooldown-limited alerting over per-star exceedances."""

    def __init__(self, min_consecutive: int = 2, cooldown: int = 30):
        if min_consecutive < 1:
            raise ValueError("min_consecutive must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.min_consecutive = min_consecutive
        self.cooldown = cooldown
        self._streak: np.ndarray | None = None
        self._muted_until: np.ndarray | None = None
        self.alerts_fired = 0

    def _ensure_state(self, num_stars: int) -> None:
        if self._streak is None:
            self._streak = np.zeros(num_stars, dtype=np.int64)
            self._muted_until = np.full(num_stars, -1, dtype=np.int64)
        elif len(self._streak) != num_stars:
            raise ValueError(
                f"policy tracks {len(self._streak)} stars but update got {num_stars}"
            )

    def reset(self) -> None:
        self._streak = None
        self._muted_until = None
        self.alerts_fired = 0

    def update(self, step: int, scores: np.ndarray, threshold: float) -> list[Alert]:
        """Ingest one step of scores (any shape; flattened) and emit alerts.

        NaN scores (warm-up) never fire and do not break a star's streak.
        """
        scores = np.asarray(scores, dtype=np.float64)
        shard_width = scores.shape[-1] if scores.ndim > 1 else scores.size
        flat = scores.ravel()
        self._ensure_state(flat.size)

        valid = np.isfinite(flat)
        exceed = valid & (flat >= threshold)
        self._streak[exceed] += 1
        self._streak[valid & ~exceed] = 0

        eligible = exceed & (self._streak >= self.min_consecutive) & (self._muted_until < step)
        fired = np.flatnonzero(eligible)
        self._muted_until[fired] = step + self.cooldown
        self._streak[fired] = 0
        self.alerts_fired += len(fired)
        return [
            Alert(
                star=int(star),
                shard=int(star) // shard_width,
                variate=int(star) % shard_width,
                step=step,
                score=float(flat[star]),
                threshold=float(threshold),
            )
            for star in fired
        ]
