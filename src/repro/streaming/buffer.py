"""Contiguous ring buffer with O(1) appends and zero-copy window views.

The batch pipeline materialises every sliding window of the series on every
``score()`` call.  A streaming detector instead keeps the last ``W`` rows in
a :class:`RingBuffer`: appends are amortised O(1) and the current window is a
plain numpy *view* into contiguous storage — no copying, no re-windowing.

The buffer allocates twice its logical capacity and writes monotonically
forward; when the write head reaches the physical end, the retained rows are
copied back to the front in one vectorised move.  That compaction happens
once per ``capacity`` appends, so the amortised cost per append stays O(1)
while every window view remains contiguous (a classic "power-of-two mirror"
ring, see e.g. kernel scatter-gather rings).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RingBuffer"]


class RingBuffer:
    """Fixed-capacity FIFO over rows (or scalars) backed by contiguous storage.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained; older rows are overwritten.
    num_variates:
        Row width ``N``; ``None`` stores a 1-D stream of scalars.
    dtype:
        Storage dtype (default ``float64``, matching the detector).
    """

    def __init__(self, capacity: int, num_variates: int | None = None, dtype=np.float64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if num_variates is not None and num_variates <= 0:
            raise ValueError("num_variates must be positive")
        self.capacity = capacity
        self.num_variates = num_variates
        shape = (2 * capacity,) if num_variates is None else (2 * capacity, num_variates)
        self._data = np.zeros(shape, dtype=dtype)
        self._start = 0
        self._size = 0
        self._total = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of rows currently retained (at most ``capacity``)."""
        return self._size

    @property
    def total_appended(self) -> int:
        """Number of rows ever appended, including overwritten ones."""
        return self._total

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def clear(self) -> None:
        self._start = 0
        self._size = 0
        self._total = 0

    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Move the retained rows back to the front of the storage."""
        self._data[: self._size] = self._data[self._start : self._start + self._size]
        self._start = 0

    def append(self, row) -> None:
        """Append one row; evicts the oldest row when full.  Amortised O(1)."""
        if self.num_variates is not None:
            row = np.asarray(row, dtype=self._data.dtype)
            if row.shape != (self.num_variates,):
                raise ValueError(
                    f"row must have shape ({self.num_variates},), got {row.shape}"
                )
        if self._start + self._size == len(self._data):
            self._compact()
        self._data[self._start + self._size] = row
        if self._size == self.capacity:
            self._start += 1
        else:
            self._size += 1
        self._total += 1

    def extend(self, rows) -> None:
        """Append several rows in order."""
        for row in np.asarray(rows, dtype=self._data.dtype):
            self.append(row)

    # ------------------------------------------------------------------
    def view(self, length: int | None = None) -> np.ndarray:
        """Zero-copy view of the most recent ``length`` rows (default: all).

        The returned array aliases the internal storage: it is only valid
        until the next ``append``.  Callers that need to keep the window must
        copy it themselves (micro-batching in the fleet manager does exactly
        that, once, into the batch array).
        """
        if length is None:
            length = self._size
        if not 0 <= length <= self._size:
            raise ValueError(f"cannot view {length} rows; buffer holds {self._size}")
        end = self._start + self._size
        return self._data[end - length : end]

    def array(self, length: int | None = None) -> np.ndarray:
        """Copy of the most recent ``length`` rows (safe to keep)."""
        return self.view(length).copy()
