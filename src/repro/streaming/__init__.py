"""Streaming inference subsystem: online scoring over live survey streams.

The batch :class:`repro.core.AeroDetector` re-windows and re-scans the full
series on every :meth:`score` call — fine for offline evaluation, unusable
for the paper's headline scenario of *online* detection over live GWAC
streams (Algorithm 2).  This package turns the reproduction into a serving
system:

* :mod:`~repro.streaming.buffer` — :class:`RingBuffer`, contiguous O(1)
  appends with zero-copy sliding-window views;
* :mod:`~repro.streaming.online_detector` — :class:`StreamingDetector`,
  one-timestamp-at-a-time scoring provably equal to the batch path;
* :mod:`~repro.streaming.online_pot` — :class:`IncrementalPOT`, streaming
  POT thresholding with periodic GPD tail re-fits;
* :mod:`~repro.streaming.vector_pot` — :class:`VectorizedIncrementalPOT`,
  per-star adaptive thresholds for a whole fleet in one array-native
  update per tick (bit-equal to independent scalar instances);
* :mod:`~repro.streaming.fleet` — :class:`FleetManager`, sharded multi-star
  serving that micro-batches score steps through one vectorised model call;
* :mod:`~repro.streaming.alerts` — :class:`AlertPolicy`, debounced per-star
  alerting for the GWAC monitoring scenario;
* :mod:`~repro.streaming.service` — :class:`StreamingService`, a minimal
  ingestion loop with backpressure statistics.
"""

from .buffer import RingBuffer
from .online_pot import IncrementalPOT
from .vector_pot import VectorizedIncrementalPOT, calibrate_adaptive_pot
from .online_detector import StreamingDetector, StreamStepResult
from .alerts import Alert, AlertPolicy
from .fleet import FleetManager, FleetStepResult
from .service import ServiceStats, StreamingService

__all__ = [
    "RingBuffer",
    "IncrementalPOT",
    "VectorizedIncrementalPOT",
    "calibrate_adaptive_pot",
    "StreamingDetector",
    "StreamStepResult",
    "Alert",
    "AlertPolicy",
    "FleetManager",
    "FleetStepResult",
    "ServiceStats",
    "StreamingService",
]
