"""Shared timestamp policy for the streaming front-ends.

Both :class:`~repro.streaming.online_detector.StreamingDetector` and
:class:`~repro.streaming.fleet.FleetManager` must stitch arriving
observation times onto the detector's training-tail context exactly the way
the batch path does, and must commit to one timeline for the life of the
stream.  :class:`StreamTimeline` owns that rule in one place:

* real caller timestamps are honoured only when they can be stitched to a
  consistent context timeline — the detector stored tail timestamps, or
  there is no context at all (a cold start has no seam to stitch);
* otherwise the timeline falls back to global row indices, matching the
  batch path's ``WindowDataset`` default;
* the mode locks on the first step; switching direction afterwards raises
  (except when real timestamps were never usable, where they are ignored
  exactly as the batch path ignores them).
"""

from __future__ import annotations

import numpy as np

from .buffer import RingBuffer

__all__ = ["StreamTimeline", "seed_stream_state"]


def seed_stream_state(detector, num_buffers: int, seed_context: bool):
    """Build seeded value buffers and a timeline for a streaming front-end.

    Shared by :class:`~repro.streaming.online_detector.StreamingDetector`
    (one buffer) and :class:`~repro.streaming.fleet.FleetManager` (one per
    shard) so the context contract — which rows and timestamps are stitched
    in front of the stream — has exactly one implementation.

    Returns ``(buffers, timeline)``.
    """
    window = detector.config.window
    num_variates = detector.model.num_variates
    tail, tail_times = detector.window_context()
    if not seed_context:
        tail, tail_times = None, None
    buffers = [RingBuffer(window, num_variates=num_variates) for _ in range(num_buffers)]
    context_length = 0
    if tail is not None and len(tail):
        for buffer in buffers:
            buffer.extend(tail)
        context_length = len(tail)
    return buffers, StreamTimeline(window, tail_times, context_length)


class StreamTimeline:
    """Mode-locked observation timeline backing a stream's window views.

    Parameters
    ----------
    window:
        Long window length ``W`` (the ring capacity).
    tail_times:
        The detector's training-tail timestamps, or ``None`` when absent.
    context_length:
        Number of context rows seeded into the stream's value buffer.
    """

    def __init__(self, window: int, tail_times: np.ndarray | None, context_length: int):
        self._times = RingBuffer(window)
        has_tail_times = tail_times is not None and len(tail_times) == context_length
        self._tail_times = np.asarray(tail_times, dtype=np.float64) if has_tail_times else None
        self._has_real = has_tail_times or context_length == 0
        self._mode: str | None = None  # locked on the first resolve
        self._context_length = context_length
        self._next_index = context_length

    @property
    def mode(self) -> str | None:
        return self._mode

    def resolve(self, count: int, timestamps: np.ndarray | None) -> np.ndarray:
        """Lock the mode if needed and return the times for ``count`` new rows.

        The returned values must then be fed back through :meth:`append` as
        their rows are ingested (keeping the ring in lock-step with the
        value buffer).
        """
        if self._mode is None:
            if timestamps is not None and self._has_real:
                self._mode = "real"
                seed = self._tail_times if self._tail_times is not None else ()
            else:
                self._mode = "index"
                seed = range(self._context_length)
            for value in seed:
                self._times.append(float(value))
        if self._mode == "real":
            if timestamps is None:
                raise ValueError("this stream was started with real timestamps; keep providing them")
            times = np.asarray(timestamps, dtype=np.float64).reshape(-1)
            if times.shape != (count,):
                raise ValueError(f"expected {count} timestamps, got {times.shape}")
        else:
            if timestamps is not None and self._has_real:
                raise ValueError(
                    "this stream was started without timestamps; cannot switch to real timestamps mid-stream"
                )
            # Real times were never usable (no tail timestamps): ignore the
            # caller's values, exactly as the batch path does.
            times = np.arange(self._next_index, self._next_index + count, dtype=np.float64)
        self._next_index += count
        return times

    def append(self, value: float) -> None:
        self._times.append(float(value))

    def view(self, length: int) -> np.ndarray:
        """Zero-copy view of the most recent ``length`` timestamps."""
        return self._times.view(length)
