"""Minimal ingestion service: a bounded queue in front of the fleet.

Real survey pipelines decouple camera readout from scoring with a queue.
:class:`StreamingService` reproduces that shape in-process:

* :meth:`submit` enqueues one exposure (returns ``False`` and counts a drop
  when the bounded queue is full — backpressure made visible);
* :meth:`drain` scores queued exposures, recording per-step wall-clock
  latency (and driving an optional :class:`repro.obs.MetricsFlusher`);
* :meth:`shed` explicitly discards the stalest queued exposures (a survey
  stream's load-shedding lever — stale exposures are worthless);
* :meth:`stats` reports queue depth, drops by reason, and p50/p99 step
  latency plus stars/sec throughput — the numbers an operator actually
  watches; :meth:`health` folds in the fleet's own health snapshot.

The service is deliberately synchronous: the numpy substrate is single-
process, so an async loop would only hide the arithmetic.  The queue +
stats layer is where a production deployment would graft asyncio or a
message bus without touching the scoring path.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..obs.health import ServiceHealth, latency_percentiles
from ..obs.metrics import get_registry

__all__ = ["StreamingService", "ServiceStats"]

logger = logging.getLogger("repro.streaming.service")

#: Queue-drop WARN logs are rate limited: the first drop always logs, then
#: every this-many drops, so a saturated producer cannot flood the log.
_DROP_LOG_EVERY = 100


@dataclass
class ServiceStats:
    """Operational snapshot of the ingestion loop."""

    processed_steps: int
    dropped_steps: int                   # total drops, all reasons
    queue_depth: int
    max_queue_depth: int
    alerts_fired: int
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    stars_per_second: float
    threshold_refits: int = 0
    dropped_queue_full: int = 0          # rejected at submit: bounded queue full
    dropped_shed: int = 0                # explicitly shed stale queued exposures

    def format(self) -> str:
        return (
            f"steps={self.processed_steps} dropped={self.dropped_steps} "
            f"(queue_full={self.dropped_queue_full} shed={self.dropped_shed}) "
            f"queue={self.queue_depth} (max {self.max_queue_depth}) "
            f"alerts={self.alerts_fired} refits={self.threshold_refits} "
            f"latency p50={self.p50_latency_ms:.2f}ms p99={self.p99_latency_ms:.2f}ms "
            f"throughput={self.stars_per_second:,.0f} stars/s"
        )

    __str__ = format


class StreamingService:
    """Bounded-queue ingestion loop around a fleet (or single-stream) scorer.

    Parameters
    ----------
    fleet:
        Any object with a ``step(rows, timestamp)`` method returning an
        object with an ``alerts`` attribute (duck-typed:
        :class:`~repro.streaming.fleet.FleetManager` or a compatible
        wrapper) and a ``num_stars`` property.
    max_queue:
        Bound on queued exposures; submits beyond it are dropped and counted
        (load shedding — for survey streams, a stale exposure is worthless).
    latency_window:
        Number of recent step latencies retained for the p50/p99 stats, so a
        long-running service holds O(1) memory (an operator watches recent
        latency, not the all-time distribution).
    flusher:
        Optional :class:`repro.obs.MetricsFlusher`; :meth:`drain` calls its
        ``tick()`` once per drained step, so metric snapshots land on disk
        periodically without a separate scheduler thread.
    registry:
        Telemetry sink (see :mod:`repro.obs`); ``None`` captures the process
        default at construction (a no-op until
        :func:`repro.obs.enable_telemetry` runs).
    slo:
        Optional :class:`repro.obs.SLOMonitor`.  The service feeds it from
        its always-on accounting — every submit/shed outcome lands in the
        ingest window, every drained step in the tick-latency, alert-rate
        and POT-refit windows — and after each drained step any SLO burning
        past the monitor's ``burn_alert`` triggers the fleet's flight
        recorder (when one is attached) with reason ``"slo_burn"``.
        Purely observational: attach or detach it and scores, thresholds
        and alerts are bit-identical.
    """

    def __init__(
        self,
        fleet,
        max_queue: int = 256,
        latency_window: int = 4096,
        flusher=None,
        registry=None,
        slo=None,
    ):
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self.fleet = fleet
        self.max_queue = max_queue
        self.flusher = flusher
        self.slo = slo
        self._queue: deque = deque()
        self._latencies: deque = deque(maxlen=latency_window)
        self._processed = 0
        self._dropped_queue_full = 0
        self._dropped_shed = 0
        self._max_queue_depth = 0
        self._alerts = 0
        self._stars_per_step = 0
        self._registry = get_registry() if registry is None else registry
        self._telemetry = bool(self._registry.enabled)
        self._m_submitted = self._registry.counter(
            "service_submitted_total", "Exposures accepted into the ingestion queue"
        )
        self._m_dropped = self._registry.counter(
            "service_dropped_total",
            "Exposures dropped by the ingestion service, by reason",
            labels=("reason",),
        )
        self._m_queue_depth = self._registry.gauge(
            "service_queue_depth", "Exposures currently waiting in the ingestion queue"
        )
        self._m_step_seconds = self._registry.histogram(
            "service_step_seconds", "Wall-clock latency of one drained scoring step"
        )

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def under_pressure(self) -> bool:
        """True when the queue is more than half full."""
        return len(self._queue) > self.max_queue // 2

    @property
    def _dropped(self) -> int:
        """Total drops, all reasons (back-compat internal alias)."""
        return self._dropped_queue_full + self._dropped_shed

    def submit(self, rows: np.ndarray, timestamp: float | None = None) -> bool:
        """Enqueue one exposure; returns ``False`` if it was shed.

        The rows are copied, so a producer may reuse its exposure buffer
        immediately — queued entries never alias caller memory.
        """
        if len(self._queue) >= self.max_queue:
            self._dropped_queue_full += 1
            self._m_dropped.labels(reason="queue_full").inc()
            if self.slo is not None:
                self.slo.record_ingest(dropped=1)
            if self._dropped_queue_full == 1 or self._dropped_queue_full % _DROP_LOG_EVERY == 0:
                logger.warning(
                    "queue_drop reason=queue_full dropped=%d queue=%d/%d",
                    self._dropped_queue_full, len(self._queue), self.max_queue,
                )
            return False
        self._queue.append((np.array(rows, dtype=np.float64, copy=True), timestamp))
        self._max_queue_depth = max(self._max_queue_depth, len(self._queue))
        self._m_submitted.inc()
        if self.slo is not None:
            self.slo.record_ingest(accepted=1)
        if self._telemetry:
            self._m_queue_depth.set(len(self._queue))
        return True

    def shed(self, count: int | None = None) -> int:
        """Drop the ``count`` *stalest* queued exposures (all when ``None``).

        The explicit load-shedding lever: under sustained pressure an
        operator (or an autoscaler) discards the oldest exposures — the ones
        whose transients have already evolved past — rather than letting the
        queue reject the freshest.  Returns the number actually shed.
        """
        if count is None:
            count = len(self._queue)
        if count < 0:
            raise ValueError("count must be non-negative")
        shed = min(count, len(self._queue))
        for _ in range(shed):
            self._queue.popleft()
        if shed:
            self._dropped_shed += shed
            self._m_dropped.labels(reason="shed").inc(shed)
            if self.slo is not None:
                self.slo.record_ingest(dropped=shed)
            logger.warning(
                "queue_drop reason=shed dropped=%d queue=%d/%d",
                shed, len(self._queue), self.max_queue,
            )
            if self._telemetry:
                self._m_queue_depth.set(len(self._queue))
        return shed

    def drain(self, max_steps: int | None = None) -> list:
        """Score queued exposures (all of them by default); returns step results."""
        drained = []
        while self._queue and (max_steps is None or len(drained) < max_steps):
            rows, timestamp = self._queue.popleft()
            started = time.perf_counter()
            result = self.fleet.step(rows, timestamp)
            elapsed = time.perf_counter() - started
            self._latencies.append(elapsed)
            self._processed += 1
            self._alerts += len(getattr(result, "alerts", ()))
            scores = getattr(result, "scores", None)
            if scores is not None:
                # Remember how many variates one step scores, so throughput
                # stays honest for scorers without a num_stars property.
                self._stars_per_step = int(np.asarray(scores).size)
            drained.append(result)
            self._m_step_seconds.observe(elapsed)
            if self.slo is not None:
                self.slo.observe_tick(
                    elapsed, result,
                    refits=int(getattr(self.fleet, "threshold_refits", 0)),
                    refit_failures=int(getattr(self.fleet, "threshold_refit_failures", 0)),
                )
                burning = self.slo.burning()
                if burning:
                    recorder = getattr(self.fleet, "recorder", None)
                    if recorder is not None:
                        recorder.trigger("slo_burn")
            if self.flusher is not None:
                self.flusher.tick()
        if drained and self._telemetry:
            self._m_queue_depth.set(len(self._queue))
        return drained

    def run(self, exposures, timestamps: np.ndarray | None = None) -> list:
        """Submit-and-drain a whole night of exposures, step by step.

        Returns only the results produced by *this* call; earlier drained
        results are not replayed.
        """
        produced = []
        for tick, rows in enumerate(exposures):
            timestamp = None if timestamps is None else float(timestamps[tick])
            self.submit(rows, timestamp)
            produced.extend(self.drain())
        return produced

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        latencies = np.asarray(self._latencies, dtype=np.float64)
        if latencies.size:
            mean = float(latencies.mean())
            if latencies.size > 1:
                p50 = float(np.percentile(latencies, 50))
                p99 = float(np.percentile(latencies, 99))
            else:
                # One sample is no distribution; report it verbatim instead
                # of interpolating percentiles out of it.
                p50 = p99 = float(latencies[0])
            # A FleetManager advertises its star count; for a bare
            # StreamingDetector (or any duck-typed scorer) fall back to the
            # variate count actually scored per step, never to 1 — the old
            # fallback under-reported throughput N-fold.
            num_stars = getattr(self.fleet, "num_stars", None)
            if num_stars is None:
                num_stars = self._stars_per_step or getattr(self.fleet, "num_variates", 1)
            throughput = num_stars / mean if mean > 0 else float("inf")
        else:
            mean = p50 = p99 = 0.0
            throughput = 0.0
        return ServiceStats(
            processed_steps=self._processed,
            dropped_steps=self._dropped,
            queue_depth=len(self._queue),
            max_queue_depth=self._max_queue_depth,
            alerts_fired=self._alerts,
            mean_latency_ms=mean * 1e3,
            p50_latency_ms=p50 * 1e3,
            p99_latency_ms=p99 * 1e3,
            stars_per_second=throughput,
            threshold_refits=int(getattr(self.fleet, "threshold_refits", 0)),
            dropped_queue_full=self._dropped_queue_full,
            dropped_shed=self._dropped_shed,
        )

    def health(self) -> ServiceHealth:
        """Live service-state snapshot, with the fleet's health nested.

        Works with telemetry off — everything comes from the service's
        always-on accounting plus the fleet's own :meth:`health`, when it
        has one (duck-typed scorers without it yield ``fleet=None``).
        """
        p50, p99 = latency_percentiles(self._latencies)
        fleet_health = None
        health = getattr(self.fleet, "health", None)
        if callable(health):
            fleet_health = health()
        return ServiceHealth(
            processed_steps=self._processed,
            queue_depth=len(self._queue),
            max_queue=self.max_queue,
            max_queue_depth=self._max_queue_depth,
            under_pressure=self.under_pressure,
            dropped_total=self._dropped,
            dropped_queue_full=self._dropped_queue_full,
            dropped_shed=self._dropped_shed,
            alerts_fired=self._alerts,
            p50_step_ms=p50,
            p99_step_ms=p99,
            fleet=fleet_health,
        )
