"""Incremental online scoring equal to the batch detector (Algorithm 2).

:class:`StreamingDetector` wraps a *fitted* :class:`repro.core.AeroDetector`
and ingests one timestamp (or a micro-batch of timestamps) at a time.  Per
arriving row it

1. normalises the row with the detector's fitted scaler,
2. appends it to a :class:`~repro.streaming.buffer.RingBuffer` seeded with
   the detector's training-tail context (exactly what the batch path
   prepends), and
3. runs one single-window forward pass via
   :meth:`repro.core.AeroDetector.score_windows` — O(1) work per step
   instead of the O(T) re-windowing of ``AeroDetector.score()``.

Equivalence contract: for ``"window"`` and ``"static"`` graph modes every
window is scored independently, so the streaming scores are *identical* to
the batch scores on the same series (:meth:`score_series` even reproduces
the batch path's micro-batch grouping, making the comparison bit-for-bit).
For the ``"dynamic"`` ablation the smoothed graph state evolves across
windows; the stream applies the same sequential semantics, matching a
single batch ``score()`` call over the same windows.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from .timeline import seed_stream_state
from .vector_pot import VectorizedIncrementalPOT, calibrate_adaptive_pot

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from ..core.detector import AeroDetector

__all__ = [
    "StreamingDetector",
    "StreamStepResult",
    "impute_missing_row",
    "resolve_backend_engine",
    "resolve_swap_source",
]

logger = logging.getLogger("repro.streaming.online_detector")


def resolve_backend_engine(detector: "AeroDetector", backend):
    """Resolve a streaming front-end's ``backend`` argument to an engine.

    Returns a :class:`repro.runtime.CompiledDetector` when the resolved
    backend is ``"compiled"`` (building/caching it through
    :meth:`AeroDetector.compile`), or ``None`` for the autograd path.
    ``backend`` may be ``None`` (inherit the detector default), one of the
    backend names, or an already-built :class:`CompiledDetector` — e.g. one
    loaded from a checkpoint or compiled with ``dtype="float32"``.
    """
    if backend is None or isinstance(backend, str):
        resolved = detector._resolve_backend(backend)
        return detector.compile() if resolved == "compiled" else None
    from ..runtime import CompiledDetector

    if not isinstance(backend, CompiledDetector):
        raise TypeError(
            "backend must be None, 'autograd', 'compiled' or a CompiledDetector, "
            f"got {type(backend).__name__}"
        )
    if backend.num_variates != detector._require_fitted().num_variates:
        raise ValueError(
            f"compiled plan serves {backend.num_variates} variates, "
            f"detector has {detector.model.num_variates}"
        )
    return backend


@dataclass
class SwapTarget:
    """Resolved ingredients of a model hot-swap (see :func:`resolve_swap_source`)."""

    detector: "AeroDetector | None"   # None when serving a compiled plan only
    engine: "object | None"           # CompiledDetector, or None for autograd
    scaler: object
    threshold: float
    config: object
    num_variates: int
    graph_mode: str | None


def resolve_swap_source(source, *, prefer_compiled: bool, dtype=None) -> SwapTarget:
    """Resolve a hot-swap ``source`` into the pieces a front-end swaps in.

    ``source`` may be a fitted :class:`repro.core.AeroDetector`, a
    pre-built :class:`repro.runtime.CompiledDetector` (e.g. float32 plans),
    or a ``str``/``Path`` to an :meth:`AeroDetector.save` artifact — which
    is exactly what a :class:`repro.training.ModelRegistry` version stores.
    With ``prefer_compiled`` (the front-end currently serves compiled
    plans), a detector source is compiled with ``dtype`` — pass the current
    engine's dtype so both the backend kind *and* its precision mode are
    preserved across the swap.
    """
    from ..runtime import CompiledDetector

    if isinstance(source, (str, Path)):
        from ..core.detector import AeroDetector

        source = AeroDetector.load(source)
    if isinstance(source, CompiledDetector):
        return SwapTarget(
            detector=None,
            engine=source,
            scaler=source.scaler,
            threshold=source.threshold,
            config=source.config,
            num_variates=source.num_variates,
            graph_mode=source.model.graph_mode,
        )
    model = getattr(source, "_require_fitted", None)
    if model is None:
        raise TypeError(
            "swap source must be a fitted AeroDetector, a CompiledDetector or a "
            f"checkpoint path, got {type(source).__name__}"
        )
    fitted = model()
    engine = None
    if prefer_compiled:
        engine = source.compile() if dtype is None else source.compile(dtype=dtype)
    return SwapTarget(
        detector=source,
        engine=engine,
        scaler=source.scaler,
        threshold=source.threshold(),
        config=source.config,
        num_variates=fitted.num_variates,
        graph_mode=None if fitted.noise is None else fitted.noise.graph_mode,
    )


def impute_missing_row(scaled_row: np.ndarray, missing: np.ndarray, buffer) -> None:
    """Fill a row's missing (non-finite) entries before it enters a ring buffer.

    Missing stars carry their last buffered (scaled) value forward — the
    standard last-observation-carried-forward imputation — so one survey gap
    never poisons the next ``W`` windows with NaN.  A cold buffer with no
    history yet falls back to the scaled-space origin.  The caller remains
    responsible for masking the star's *score* for this tick; imputation only
    keeps the model input finite.
    """
    if len(buffer):
        scaled_row[missing] = buffer.view(1)[0][missing]
    else:
        scaled_row[missing] = 0.0


def rescale_buffer_rows(buffers, old_scaler, new_scaler) -> None:
    """Re-express buffered scaled rows under a new scaler, in place.

    Streaming buffers hold rows normalised by the *serving* model's scaler;
    swapping in a model fitted on fresher data means a (slightly) different
    min/max calibration.  Mapping the retained rows back to raw magnitudes
    and through the new scaler keeps the whole window history valid, so the
    very next tick scores with the new model — no warm-up, nothing dropped.
    """
    for buffer in buffers:
        rows = buffer.view()
        if len(rows):
            rows[:] = new_scaler.transform(old_scaler.inverse_transform(rows))


def check_swap_compatible(target: SwapTarget, num_variates: int, config) -> None:
    """Validate that a swap target fits the live stream's geometry."""
    if target.num_variates != num_variates:
        raise ValueError(
            f"cannot hot-swap: new model serves {target.num_variates} variates, "
            f"stream has {num_variates}"
        )
    if (
        target.config.window != config.window
        or target.config.short_window != config.short_window
    ):
        raise ValueError(
            "cannot hot-swap: window geometry changed "
            f"(W={target.config.window}, omega={target.config.short_window} vs "
            f"serving W={config.window}, omega={config.short_window}); "
            "start a fresh stream for the new geometry"
        )


@dataclass
class StreamStepResult:
    """Scores and labels emitted for one ingested timestamp.

    ``scores``/``labels`` have shape ``(N,)``.  During warm-up (the buffer
    does not yet hold a full window, only possible when the training series
    was shorter than ``W - 1``) ``ready`` is ``False`` and the scores are
    NaN; the batch path backfills those positions retroactively, which a
    stream by construction cannot.
    """

    index: int
    scores: np.ndarray
    labels: np.ndarray
    threshold: float
    adaptive_threshold: np.ndarray | None = None  # (N,) per-star thresholds
    ready: bool = True


class StreamingDetector:
    """Online scoring front-end over a fitted :class:`AeroDetector`.

    Parameters
    ----------
    detector:
        A fitted batch detector; its model, scaler, training-tail context and
        POT threshold are reused unchanged.
    adaptive_pot:
        When ``True``, a per-star
        :class:`~repro.streaming.vector_pot.VectorizedIncrementalPOT`
        (one POT per variate, calibrated on that variate's training scores)
        is advanced with every emitted score vector and exposed as the
        ``(N,)`` ``adaptive_threshold`` array (the fixed train-calibrated
        threshold keeps producing the equivalence-grade ``labels``).
    pot_refit_interval:
        Per-star GPD re-fit cadence of the adaptive POT (ignored otherwise).
    seed_context:
        Seed the buffer with the detector's training tail (default), which is
        what the batch path prepends; disable for a cold-started star with no
        history, which then warms up over the first ``W - 1`` steps.
    backend:
        ``"autograd"`` steps through the detector's model; ``"compiled"``
        compiles the detector into the tape-free plans of
        :mod:`repro.runtime` and serves from those (same scores, bit for bit
        in float64).  ``"incremental"`` additionally keeps a cross-tick
        :class:`repro.runtime.IncrementalState`: every ingested row appends
        into the state's ring arenas and only the newest timestep's work is
        recomputed per tick; the state rebuilds transparently from the ring
        buffer when its history is discarded (fresh stream, hot swap), and
        model shapes without an exact incremental plan fall back to the
        full compiled forward.  A pre-built
        :class:`repro.runtime.CompiledDetector` may also be passed
        directly, e.g. one loaded from a checkpoint or compiled with
        ``dtype="float32"``.  ``None`` inherits the detector's default
        backend.
    """

    def __init__(
        self,
        detector: "AeroDetector",
        adaptive_pot: bool = False,
        pot_refit_interval: int = 32,
        seed_context: bool = True,
        backend=None,
    ):
        model = detector._require_fitted()
        self.detector = detector
        self.config = detector.config
        self.num_variates = model.num_variates
        self._scaler = detector.scaler
        # "incremental" rides on the compiled engine: resolve it as
        # "compiled" and layer the cross-tick state on top.
        self._incremental = backend == "incremental"
        self._engine = resolve_backend_engine(
            detector, "compiled" if self._incremental else backend
        )
        self._inc_state = None
        if self._incremental:
            self.backend = "incremental"
        else:
            self.backend = "autograd" if self._engine is None else "compiled"

        buffers, self._timeline = seed_stream_state(detector, 1, seed_context)
        self._buffer = buffers[0]
        self._steps = 0

        self.threshold = detector.threshold()
        self.adaptive_pot: VectorizedIncrementalPOT | None = None
        if adaptive_pot:
            self.adaptive_pot = calibrate_adaptive_pot(
                detector, num_stars=self.num_variates, refit_interval=pot_refit_interval
            )

        if model.noise is not None and model.noise.graph_mode == "dynamic":
            model.noise.reset_dynamic_state()
        if self._engine is not None and self._engine.model.graph_mode == "dynamic":
            self._engine.reset_dynamic_state()

        # Telemetry (no-ops until repro.obs.enable_telemetry; never perturbs
        # scores).  model_version is stamped by ModelRegistry.deploy.
        self.model_version: str | None = None
        self._tracer = get_tracer()
        self._registry = get_registry()
        self._m_steps = self._registry.counter(
            "stream_steps_total", "Rows ingested by single-stream detectors"
        )
        self._m_step_seconds = self._registry.histogram(
            "stream_step_seconds", "Wall-clock latency of one streaming micro-batch"
        )
        self._m_swaps = self._registry.counter(
            "stream_hot_swaps_total", "Serving models hot-swapped into running streams"
        )

    # ------------------------------------------------------------------
    @property
    def steps_ingested(self) -> int:
        return self._steps

    @property
    def warmed_up(self) -> bool:
        """Whether the buffer holds a full window (scores are being emitted)."""
        return self._buffer.is_full

    @property
    def threshold_refits(self) -> int:
        """Total adaptive GPD re-fits across the stream's stars (0 if fixed)."""
        return 0 if self.adaptive_pot is None else self.adaptive_pot.total_refits

    # ------------------------------------------------------------------
    def threshold_state(self) -> dict | None:
        """Per-star adaptive threshold state, or ``None`` when fixed-threshold."""
        return None if self.adaptive_pot is None else self.adaptive_pot.state_dict()

    def load_threshold_state(self, state: dict) -> None:
        """Restore (and enable) adaptive per-star thresholds from a state dict."""
        pot = VectorizedIncrementalPOT.from_state_dict(state)
        if pot.num_stars != self.num_variates:
            raise ValueError(
                f"threshold state covers {pot.num_stars} stars, stream has {self.num_variates}"
            )
        self.adaptive_pot = pot

    # ------------------------------------------------------------------
    def swap_model(self, source) -> None:
        """Hot-swap the serving model without dropping buffered state.

        ``source`` is a fitted :class:`~repro.core.AeroDetector`, a
        :class:`~repro.runtime.CompiledDetector`, or a path to a saved
        detector artifact (e.g. ``ModelRegistry.latest(...).artifact_path``).
        The new model must serve the same variates and window geometry.  The
        retained window history is re-expressed under the new model's scaler,
        so the very next :meth:`step` emits the new model's scores — no
        warm-up gap, no dropped rows.  The fixed threshold switches to the
        new model's POT calibration; an adaptive POT keeps its state and
        continues adapting.
        """
        target = resolve_swap_source(
            source,
            prefer_compiled=self._engine is not None,
            dtype=None if self._engine is None else self._engine.dtype,
        )
        check_swap_compatible(target, self.num_variates, self.config)
        rescale_buffer_rows([self._buffer], self._scaler, target.scaler)

        self.detector = target.detector
        self.config = target.config
        self._scaler = target.scaler
        self._engine = target.engine
        self.backend = "autograd" if self._engine is None else "compiled"
        if self._incremental:
            # prefer_compiled guarantees a compiled engine above; the old
            # state's cached history was built under the old model and
            # scaler, so it is discarded and rebuilt on the next tick.
            self.backend = "incremental"
            self._inc_state = None
        self.threshold = target.threshold
        if target.graph_mode == "dynamic":
            # A dynamic-graph model starts its smoothed-adjacency state fresh,
            # exactly as a newly constructed stream would.
            if target.detector is not None:
                target.detector.model.noise.reset_dynamic_state()
            if self._engine is not None:
                self._engine.reset_dynamic_state()
        # A raw-source swap leaves the registry-version label unknown;
        # ModelRegistry.deploy re-stamps it after calling us.
        self.model_version = None
        self._m_swaps.inc()
        logger.warning(
            "hot_swap step=%d backend=%s threshold=%.6g", self._steps, self.backend, self.threshold
        )

    def step(self, row: np.ndarray, timestamp: float | None = None) -> StreamStepResult:
        """Ingest one observation row of shape ``(N,)`` and emit its scores."""
        results = self.step_many(
            np.asarray(row, dtype=np.float64).reshape(1, -1),
            None if timestamp is None else np.asarray([timestamp], dtype=np.float64),
        )
        return results[0]

    def step_many(
        self,
        rows: np.ndarray,
        timestamps: np.ndarray | None = None,
    ) -> list[StreamStepResult]:
        """Ingest a micro-batch of rows; one vectorised model call for all.

        Rows are appended in order; every row whose window is complete is
        scored in a single ``score_windows`` call, so a micro-batch of ``k``
        rows costs one forward pass of batch size ``<= k``.

        Non-finite entries mark missing observations: the buffered value is
        imputed by carrying the star's last value forward (one gap must not
        poison the next ``W`` windows), while the emitted score for that star
        is NaN on the gap tick and it is skipped by the adaptive POT.
        """
        started = time.perf_counter()
        with self._tracer.span("stream.step"):
            results = self._step_many_inner(rows, timestamps)
        if results:
            self._m_steps.inc(len(results))
            self._m_step_seconds.observe(time.perf_counter() - started)
        return results

    def _step_many_inner(
        self,
        rows: np.ndarray,
        timestamps: np.ndarray | None = None,
    ) -> list[StreamStepResult]:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.num_variates:
            raise ValueError(f"rows must have shape (k, {self.num_variates}), got {rows.shape}")
        count = rows.shape[0]
        if count == 0:
            return []
        times = self._timeline.resolve(count, timestamps)
        scaled = self._scaler.transform(rows)
        missing = ~np.isfinite(rows)
        if self._incremental:
            return self._step_many_incremental(scaled, times, missing, count)

        window = self.config.window
        short = self.config.short_window
        ready_rows: list[int] = []
        longs = np.empty((count, self.num_variates, window))
        long_times = np.empty((count, window))
        for position in range(count):
            if missing[position].any():
                impute_missing_row(scaled[position], missing[position], self._buffer)
            self._buffer.append(scaled[position])
            self._timeline.append(times[position])
            if self._buffer.is_full:
                # The ring views alias storage mutated by the next append, so
                # materialise this window into the micro-batch now.
                longs[len(ready_rows)] = self._buffer.view(window).T
                long_times[len(ready_rows)] = self._timeline.view(window)
                ready_rows.append(position)
        self._steps += count

        batch = len(ready_rows)
        if batch:
            if self._engine is not None:
                scores_batch = self._engine.score_windows(
                    longs[:batch],
                    longs[:batch, :, window - short :],
                    long_times[:batch],
                    long_times[:batch, window - short :],
                )
            else:
                scores_batch = self.detector.score_windows(
                    longs[:batch],
                    longs[:batch, :, window - short :],
                    long_times[:batch],
                    long_times[:batch, window - short :],
                    backend="autograd",
                )
        results: list[StreamStepResult] = []
        ready_cursor = 0
        for position in range(count):
            if ready_cursor < batch and ready_rows[ready_cursor] == position:
                scores = scores_batch[ready_cursor]
                ready_cursor += 1
                if missing[position].any():
                    scores = scores.copy()
                    scores[missing[position]] = np.nan
                labels = (scores >= self.threshold).astype(np.int64)
                adaptive = None
                if self.adaptive_pot is not None:
                    self.adaptive_pot.update(scores)
                    adaptive = self.adaptive_pot.thresholds.copy()
                results.append(
                    StreamStepResult(
                        index=self._steps - count + position,
                        scores=scores,
                        labels=labels,
                        threshold=self.threshold,
                        adaptive_threshold=adaptive,
                    )
                )
            else:
                results.append(
                    StreamStepResult(
                        index=self._steps - count + position,
                        scores=np.full(self.num_variates, np.nan),
                        labels=np.zeros(self.num_variates, dtype=np.int64),
                        threshold=self.threshold,
                        ready=False,
                    )
                )
        return results

    def _step_many_incremental(
        self,
        scaled: np.ndarray,
        times: np.ndarray,
        missing: np.ndarray,
        count: int,
    ) -> list[StreamStepResult]:
        """Serve a micro-batch row by row from the cross-tick state.

        Each ingested row advances the ring buffer, the timeline and the
        incremental state in lockstep, so every ready tick costs only the
        newest timestep's compute.  Imputed rows enter the state exactly as
        they enter the ring buffer, which keeps the two bit-identical; only
        a hot swap (or a fresh stream) discards the state, and the next
        ready tick rebuilds it from the ring buffer transparently.
        """
        base = self._steps
        results: list[StreamStepResult] = []
        for position in range(count):
            row_missing = missing[position]
            if row_missing.any():
                impute_missing_row(scaled[position], row_missing, self._buffer)
            self._buffer.append(scaled[position])
            self._timeline.append(times[position])
            if not self._buffer.is_full:
                results.append(
                    StreamStepResult(
                        index=base + position,
                        scores=np.full(self.num_variates, np.nan),
                        labels=np.zeros(self.num_variates, dtype=np.int64),
                        threshold=self.threshold,
                        ready=False,
                    )
                )
                continue
            scores = self._incremental_scores(scaled[position], float(times[position]))
            if row_missing.any():
                scores = scores.copy()
                scores[row_missing] = np.nan
            labels = (scores >= self.threshold).astype(np.int64)
            adaptive = None
            if self.adaptive_pot is not None:
                self.adaptive_pot.update(scores)
                adaptive = self.adaptive_pot.thresholds.copy()
            results.append(
                StreamStepResult(
                    index=base + position,
                    scores=scores,
                    labels=labels,
                    threshold=self.threshold,
                    adaptive_threshold=adaptive,
                )
            )
        self._steps += count
        return results

    def _incremental_scores(self, scaled_row: np.ndarray, timestamp: float) -> np.ndarray:
        """One ready tick's ``(N,)`` scores from the incremental state."""
        state = self._inc_state
        if state is not None and state.valid:
            return self._engine.score_stack_step(state, scaled_row[None, :], timestamp)[0]
        if state is None:
            # "windows" layout: the per-stream reference path is
            # score_windows, whose multivariate error strides differ from
            # score_stack's (both are bit-exact worlds; pick the right one).
            state = self._engine.new_incremental_state(1, layout="windows")
            self._inc_state = state
        window = self.config.window
        # The buffer already holds this tick's row, so rebuilding from the
        # current window view serves the same tick the caller asked for.
        state.rebuild(self._buffer.view(window)[None], self._timeline.view(window))
        return state.score()[0]

    # ------------------------------------------------------------------
    def score_series(
        self,
        series: np.ndarray,
        timestamps: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stream a whole series and return ``(T, N)`` scores equal to the batch path.

        Micro-batches are aligned with the batch scorer's grouping (warm-up
        rows first, then chunks of ``config.batch_size``), so the model sees
        byte-identical inputs in byte-identical batches and the output
        matches ``AeroDetector.score()`` bit for bit.  Warm-up rows are
        backfilled with the first computed score, exactly like the batch
        path's conservative early-point rule.
        """
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2:
            raise ValueError("series must be 2-D (time, variates)")
        num_points = series.shape[0]
        scores = np.zeros((num_points, self.num_variates))
        if num_points == 0:
            return scores

        warmup = max(0, self.config.window - len(self._buffer) - 1)
        chunks: list[np.ndarray] = []
        if warmup:
            chunks.append(np.arange(0, min(warmup, num_points)))
        start = min(warmup, num_points)
        for chunk_start in range(start, num_points, self.config.batch_size):
            chunks.append(np.arange(chunk_start, min(chunk_start + self.config.batch_size, num_points)))

        covered = np.zeros(num_points, dtype=bool)
        for chunk in chunks:
            chunk_times = None if timestamps is None else np.asarray(timestamps, dtype=np.float64)[chunk]
            for offset, result in enumerate(self.step_many(series[chunk], chunk_times)):
                if result.ready:
                    position = int(chunk[offset])
                    scores[position] = result.scores
                    covered[position] = True
        if covered.any():
            first = int(np.argmax(covered))
            scores[:first] = scores[first]
        return scores

    def detect_series(self, series: np.ndarray, timestamps: np.ndarray | None = None) -> np.ndarray:
        """Stream a series and return binary labels equal to ``AeroDetector.detect()``."""
        return (self.score_series(series, timestamps) >= self.threshold).astype(np.int64)
