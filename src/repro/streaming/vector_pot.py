"""Array-native per-star POT thresholding for fleet serving.

The paper calibrates its POT threshold *per star*, but serving a fleet of
``K = num_shards * N`` stars through ``K`` scalar
:class:`~repro.streaming.online_pot.IncrementalPOT` instances costs one
Python call per star per tick — the per-star loop dominates the tick long
before the model forward pass does.  :class:`VectorizedIncrementalPOT`
maintains the same state as ``K`` independent scalar instances in flat
arrays and advances the whole fleet with **one** :meth:`update` call per
tick:

* per-star initial thresholds, observation counts, GPD parameters and
  final thresholds are ``(K,)`` arrays;
* the ragged per-star excess sets live in one geometrically grown pool
  (a ``(K, capacity)`` block with per-star counts — star ``i``'s live
  excesses are ``pool[i, :counts[i]]``), so appends are amortised O(1)
  fancy-indexed writes with no per-star allocation;
* the cheap closed-form threshold refresh (the per-tick hot path) is fully
  vectorised over the fleet;
* GPD re-fits stay *staggered*: each star re-fits only every
  ``refit_interval`` of **its own** new excesses, so a tick re-fits the few
  stars whose counters rolled over — the expensive grid search remains
  amortised exactly as in the scalar class.

Equivalence contract: a fleet advanced through :meth:`update` is
**bit-for-bit identical** to ``K`` independent scalar ``IncrementalPOT``
instances fed the same per-star score streams (same thresholds, alarms,
observation counts, excess sets and re-fit cadence) — asserted in
``tests/streaming/test_vector_pot.py`` and at 1k-star scale in
``benchmarks/test_adaptive_thresholds.py``.
"""

from __future__ import annotations

import logging

import numpy as np

from ..evaluation.pot import fit_gpd, gpd_tail_thresholds
from ..obs.metrics import get_registry
from .online_pot import IncrementalPOT

logger = logging.getLogger("repro.streaming.pot")

__all__ = ["VectorizedIncrementalPOT", "calibrate_adaptive_pot"]

_MIN_POOL_CAPACITY = 64

_STATE_SCALARS = ("q", "level", "refit_interval", "max_excesses")
_STATE_ARRAYS = (
    "initial_thresholds",
    "thresholds",
    "counts",
    "num_observations",
    "since_refit",
    "shapes",
    "scales",
    "has_fit",
    "num_refits",
)


class VectorizedIncrementalPOT:
    """Per-star streaming POT over a whole fleet, one array op per tick.

    Parameters match :class:`~repro.streaming.online_pot.IncrementalPOT`;
    they are shared by every star (state is per star, hyperparameters are
    fleet-wide).

    Calibration (:meth:`fit`) accepts either a 1-D score array — one shared
    calibration broadcast to ``num_stars`` stars, the train-once /
    serve-many fleet shape — or a ``(num_stars, T)`` array with one
    calibration stream per star.  Calibration runs the *scalar* class per
    distinct stream (a one-off cost); only the per-tick :meth:`update` path
    must be, and is, loop-free over stars.
    """

    def __init__(
        self,
        q: float = 1e-3,
        level: float = 0.99,
        refit_interval: int = 32,
        max_excesses: int | None = None,
    ):
        # Reuse the scalar validation so both classes reject the same inputs.
        probe = IncrementalPOT(
            q=q, level=level, refit_interval=refit_interval, max_excesses=max_excesses
        )
        self.q = probe.q
        self.level = probe.level
        self.refit_interval = probe.refit_interval
        self.max_excesses = probe.max_excesses

        self.initial_thresholds: np.ndarray | None = None
        self.thresholds: np.ndarray | None = None
        self._pool = np.zeros((0, _MIN_POOL_CAPACITY), dtype=np.float64)
        self._counts = np.zeros(0, dtype=np.int64)
        self._num_observations = np.zeros(0, dtype=np.int64)
        self._since_refit = np.zeros(0, dtype=np.int64)
        self._shapes = np.zeros(0, dtype=np.float64)
        self._scales = np.zeros(0, dtype=np.float64)
        self._has_fit = np.zeros(0, dtype=bool)
        self.num_refits = np.zeros(0, dtype=np.int64)
        # Runtime-only always-on accounting (not part of state_dict): a
        # restored calibration starts a fresh failure ledger.
        self.refit_failures = 0

    # ------------------------------------------------------------------
    @property
    def num_stars(self) -> int:
        return 0 if self.thresholds is None else int(self.thresholds.size)

    @property
    def num_observations(self) -> np.ndarray:
        return self._num_observations

    @property
    def num_excesses(self) -> np.ndarray:
        return self._counts

    @property
    def total_refits(self) -> int:
        """Fleet-wide GPD re-fit count (the operator-facing stats number)."""
        return int(self.num_refits.sum())

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def fit(self, scores: np.ndarray, num_stars: int | None = None) -> "VectorizedIncrementalPOT":
        """Calibrate the fleet on initial scores (e.g. the train scores).

        1-D ``scores``: one shared calibration, broadcast to ``num_stars``
        identical per-star states (they diverge as the live streams do).
        2-D ``scores`` of shape ``(num_stars, T)``: one calibration stream
        per star (``num_stars``, if given, must match).
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim == 1:
            if num_stars is None or num_stars <= 0:
                raise ValueError("1-D calibration scores need an explicit positive num_stars")
            reference = self._scalar_template().fit(scores)
            self._adopt([reference] * num_stars)
        elif scores.ndim == 2:
            if num_stars is not None and num_stars != scores.shape[0]:
                raise ValueError(
                    f"num_stars={num_stars} does not match calibration rows {scores.shape[0]}"
                )
            self._adopt([self._scalar_template().fit(row) for row in scores])
        else:
            raise ValueError("calibration scores must be 1-D (shared) or 2-D (per star)")
        return self

    def _scalar_template(self) -> IncrementalPOT:
        return IncrementalPOT(
            q=self.q,
            level=self.level,
            refit_interval=self.refit_interval,
            max_excesses=self.max_excesses,
        )

    def _adopt(self, pots: list[IncrementalPOT]) -> None:
        """Take over the state of fitted scalar instances, one per star."""
        count = len(pots)
        capacity = _MIN_POOL_CAPACITY
        most = max((pot.num_excesses for pot in pots), default=0)
        while capacity < most:
            capacity *= 2
        self._pool = np.zeros((count, capacity), dtype=np.float64)
        self._counts = np.zeros(count, dtype=np.int64)
        self._num_observations = np.zeros(count, dtype=np.int64)
        self._since_refit = np.zeros(count, dtype=np.int64)
        self._shapes = np.zeros(count, dtype=np.float64)
        self._scales = np.zeros(count, dtype=np.float64)
        self._has_fit = np.zeros(count, dtype=bool)
        self.num_refits = np.zeros(count, dtype=np.int64)
        self.initial_thresholds = np.zeros(count, dtype=np.float64)
        self.thresholds = np.zeros(count, dtype=np.float64)
        for star, pot in enumerate(pots):
            self._counts[star] = pot.num_excesses
            self._pool[star, : pot.num_excesses] = pot._excesses[: pot.num_excesses]
            self._num_observations[star] = pot.num_observations
            self._since_refit[star] = pot._excesses_since_refit
            self.num_refits[star] = pot.num_refits
            self.initial_thresholds[star] = pot.initial_threshold
            self.thresholds[star] = pot.threshold
            if pot._fit is not None:
                self._has_fit[star] = True
                self._shapes[star] = pot._fit.shape
                self._scales[star] = pot._fit.scale

    def tile(self, reps: int) -> "VectorizedIncrementalPOT":
        """A new instance with every star's state repeated ``reps`` times.

        Star ordering is tile-major — ``new_star = rep * num_stars + star``
        — which matches a fleet's shard-major flattening when the source was
        calibrated per variate of one reference field.
        """
        if reps <= 0:
            raise ValueError("reps must be positive")
        if self.thresholds is None:
            raise RuntimeError("fit the calibration before tiling")
        clone = VectorizedIncrementalPOT(
            q=self.q,
            level=self.level,
            refit_interval=self.refit_interval,
            max_excesses=self.max_excesses,
        )
        clone._pool = np.tile(self._pool, (reps, 1))
        clone._counts = np.tile(self._counts, reps)
        clone._num_observations = np.tile(self._num_observations, reps)
        clone._since_refit = np.tile(self._since_refit, reps)
        clone._shapes = np.tile(self._shapes, reps)
        clone._scales = np.tile(self._scales, reps)
        clone._has_fit = np.tile(self._has_fit, reps)
        clone.num_refits = np.tile(self.num_refits, reps)
        clone.initial_thresholds = np.tile(self.initial_thresholds, reps)
        clone.thresholds = np.tile(self.thresholds, reps)
        return clone

    # ------------------------------------------------------------------
    # the per-tick hot path
    # ------------------------------------------------------------------
    def update(self, scores: np.ndarray) -> np.ndarray:
        """Ingest one score per star; returns the int64 alarm flags.

        Semantics per star are exactly :meth:`IncrementalPOT.update`: scores
        above the star's final threshold are anomalies (flagged, not added
        to the tail model); scores between the star's initial and final
        thresholds enrich its excess set and may trigger its staggered GPD
        re-fit; every star's closed-form threshold is refreshed for the
        grown observation count.  Input of any shape is accepted and the
        alarms are returned in the same shape.

        A non-finite score marks a star with *no observation* this tick (a
        masked survey gap); that star's state — observation count, excess
        set, re-fit cadence and threshold — is left exactly as it was and no
        alarm is raised, matching the scalar class's no-op on NaN.  The other
        stars advance normally.
        """
        if self.thresholds is None or self.initial_thresholds is None:
            raise RuntimeError("VectorizedIncrementalPOT must be fitted before update")
        scores = np.asarray(scores, dtype=np.float64)
        flat = scores.ravel()
        if flat.size != self.num_stars:
            raise ValueError(f"expected one score per star ({self.num_stars}), got {flat.size}")

        observed = np.isfinite(flat)
        self._num_observations += observed
        alarms = observed & (flat > self.thresholds)
        enrich = observed & ~alarms & (flat > self.initial_thresholds)
        if enrich.any():
            stars = np.flatnonzero(enrich)
            self._push_excesses(stars, flat[stars] - self.initial_thresholds[stars])
            self._since_refit[stars] += 1
            due = stars[self._since_refit[stars] >= self.refit_interval]
            # Staggered re-fits: only the (few) stars whose own counter rolled
            # over pay the grid search this tick, exactly as in the scalar
            # class — and through the very same fit_gpd, keeping bit-equality.
            for star in due:
                try:
                    fit = fit_gpd(self._pool[star, : self._counts[star]])
                except Exception:
                    # Telemetry must not change behaviour: record the event,
                    # then fail exactly as the uninstrumented path would.
                    self.refit_failures += 1
                    logger.warning(
                        "pot_refit_failed star=%d excesses=%d",
                        int(star), int(self._counts[star]),
                    )
                    raise
                self._shapes[star] = fit.shape
                self._scales[star] = fit.scale
                self._has_fit[star] = True
                self.num_refits[star] += 1
            self._since_refit[due] = 0
            if due.size:
                # Resolved per refit event (rare, staggered), not per tick.
                get_registry().counter(
                    "pot_refits_total", "Per-star adaptive GPD threshold re-fits"
                ).inc(int(due.size))
        self._recompute_thresholds()
        return alarms.astype(np.int64).reshape(scores.shape)  # repro: allow[hot-alloc] -- the emitted alarm array must outlive the tick

    def _push_excesses(self, stars: np.ndarray, excesses: np.ndarray) -> None:
        self._ensure_capacity(int(self._counts[stars].max()) + 1)
        self._pool[stars, self._counts[stars]] = excesses
        self._counts[stars] += 1
        if self.max_excesses is None:
            return
        keep = self.max_excesses
        over = stars[self._counts[stars] > keep]
        if not over.size:
            return
        # Mirror the scalar sliding-calibration rescale bit for bit:
        # n <- max(round(n * keep / count), keep) with the *pre-trim* count
        # (banker's rounding, like Python's round()).  One update pushes at
        # most one excess per star, so the trim always drops exactly the
        # oldest excess.
        counts = self._counts[over]
        rescaled = np.rint(self._num_observations[over] * keep / counts).astype(np.int64)  # repro: allow[hot-alloc] -- trim branch only; `over` holds the handful of stars past the cap, not the fleet
        self._num_observations[over] = np.maximum(rescaled, keep)
        self._pool[over, :keep] = self._pool[over, 1 : keep + 1]
        self._counts[over] = keep

    def _ensure_capacity(self, needed: int) -> None:
        capacity = self._pool.shape[1]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        pool = np.zeros((self._pool.shape[0], capacity), dtype=np.float64)
        pool[:, : self._pool.shape[1]] = self._pool
        self._pool = pool

    def _recompute_thresholds(self) -> None:
        """Vectorised :func:`repro.evaluation.gpd_tail_threshold` over stars.

        Same closed form, same branch split (exponential limit for
        ``|shape| < 1e-9``), same clamp at the initial threshold — computed
        element-wise over the fleet instead of per star.
        """
        thresholds = self.initial_thresholds.copy()  # repro: allow[hot-alloc] -- the recomputed threshold vector is retained across ticks (snapshotted by results), so it cannot reuse a workspace
        fitted = np.flatnonzero(self._has_fit)
        if fitted.size:
            thresholds[fitted] = gpd_tail_thresholds(
                self.initial_thresholds[fitted],
                self._shapes[fitted],
                self._scales[fitted],
                self._counts[fitted],
                self.q,
                self._num_observations[fitted],
            )
        self.thresholds = thresholds

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """The complete calibration state as flat arrays (npz/manifest-safe).

        The excess pool is trimmed to the live region; ``max_excesses=None``
        is encoded as ``-1``.  :meth:`from_state_dict` restores a
        bit-identical instance.
        """
        if self.thresholds is None:
            raise RuntimeError("fit the calibration before exporting state")
        used = max(int(self._counts.max()) if self._counts.size else 0, 1)
        return {
            "q": np.asarray(self.q, dtype=np.float64),
            "level": np.asarray(self.level, dtype=np.float64),
            "refit_interval": np.asarray(self.refit_interval, dtype=np.int64),
            "max_excesses": np.asarray(
                -1 if self.max_excesses is None else self.max_excesses, dtype=np.int64
            ),
            "initial_thresholds": self.initial_thresholds.copy(),
            "thresholds": self.thresholds.copy(),
            "pool": self._pool[:, :used].copy(),
            "counts": self._counts.copy(),
            "num_observations": self._num_observations.copy(),
            "since_refit": self._since_refit.copy(),
            "shapes": self._shapes.copy(),
            "scales": self._scales.copy(),
            "has_fit": self._has_fit.copy(),
            "num_refits": self.num_refits.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "VectorizedIncrementalPOT":
        """Rebuild an instance from :meth:`state_dict` output (or an npz)."""
        missing = [key for key in (*_STATE_SCALARS, "pool", *_STATE_ARRAYS) if key not in state]
        if missing:
            raise ValueError(f"threshold state is missing keys: {missing}")
        max_excesses = int(state["max_excesses"])
        pot = cls(
            q=float(state["q"]),
            level=float(state["level"]),
            refit_interval=int(state["refit_interval"]),
            max_excesses=None if max_excesses < 0 else max_excesses,
        )
        pool = np.asarray(state["pool"], dtype=np.float64)
        if pool.ndim != 2:
            raise ValueError("threshold state 'pool' must be 2-D (stars, excess capacity)")
        count = pool.shape[0]
        capacity = _MIN_POOL_CAPACITY
        while capacity < pool.shape[1]:
            capacity *= 2
        pot._pool = np.zeros((count, capacity), dtype=np.float64)
        pot._pool[:, : pool.shape[1]] = pool
        pot._counts = np.asarray(state["counts"], dtype=np.int64).copy()
        pot._num_observations = np.asarray(state["num_observations"], dtype=np.int64).copy()
        pot._since_refit = np.asarray(state["since_refit"], dtype=np.int64).copy()
        pot._shapes = np.asarray(state["shapes"], dtype=np.float64).copy()
        pot._scales = np.asarray(state["scales"], dtype=np.float64).copy()
        pot._has_fit = np.asarray(state["has_fit"], dtype=bool).copy()
        pot.num_refits = np.asarray(state["num_refits"], dtype=np.int64).copy()
        pot.initial_thresholds = np.asarray(state["initial_thresholds"], dtype=np.float64).copy()
        pot.thresholds = np.asarray(state["thresholds"], dtype=np.float64).copy()
        sizes = {
            key: np.asarray(state[key]).shape[0] for key in (*_STATE_ARRAYS, "pool")
        }
        if len(set(sizes.values())) != 1:
            raise ValueError(f"threshold state arrays disagree on the star count: {sizes}")
        return pot


def calibrate_adaptive_pot(
    detector,
    num_stars: int,
    refit_interval: int = 32,
    max_excesses: int | None = None,
) -> VectorizedIncrementalPOT:
    """Per-star POT calibrated from a fitted detector's training scores.

    The paper calibrates its threshold per star: with the usual ``(T, N)``
    training scores, each of the reference field's ``N`` variates gets its
    own calibration, tiled across shards when ``num_stars`` is a multiple
    of ``N`` (star ``shard * N + v`` starts from variate ``v``'s state).
    Otherwise one calibration over all training scores is broadcast to
    every star — the per-star states still diverge as the live streams do.
    """
    train_scores = getattr(detector, "train_scores_", None)
    if train_scores is None:
        raise RuntimeError("per-star thresholds need a fitted detector with train scores")
    config = detector.config
    train = np.asarray(train_scores, dtype=np.float64)
    pot = VectorizedIncrementalPOT(
        q=config.pot_q,
        level=config.pot_level,
        refit_interval=refit_interval,
        max_excesses=max_excesses,
    )
    if train.ndim == 2 and train.shape[1] >= 1 and num_stars % train.shape[1] == 0:
        pot.fit(train.T)
        reps = num_stars // train.shape[1]
        return pot if reps == 1 else pot.tile(reps)
    return pot.fit(train.ravel(), num_stars=num_stars)
