"""Core neural-network layers built on the autodiff :class:`~repro.nn.tensor.Tensor`.

The layers here are the building blocks used by the AERO model and every
baseline: linear projections, layer normalization, dropout, activation
wrappers, feed-forward blocks and a ``Sequential`` container.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "FeedForward",
    "Embedding",
]


class Linear(Module):
    """Affine transformation ``y = x W + b`` applied to the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable affine terms."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((normalized_shape,)))
        self.beta = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class FeedForward(Module):
    """Two-layer position-wise feed-forward network used in Transformer blocks."""

    def __init__(
        self,
        d_model: int,
        d_hidden: int | None = None,
        dropout: float = 0.0,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        d_hidden = d_hidden or 4 * d_model
        self.linear1 = Linear(d_model, d_hidden, rng=rng)
        self.linear2 = Linear(d_hidden, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        if activation not in {"relu", "gelu", "tanh"}:
            raise ValueError(f"unsupported activation: {activation}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.linear1(x)
        if self.activation == "relu":
            hidden = hidden.relu()
        elif self.activation == "gelu":
            hidden = hidden.gelu()
        else:
            hidden = hidden.tanh()
        hidden = self.dropout(hidden)
        return self.linear2(hidden)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.1))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]
