"""Recurrent layers (GRU / LSTM cells) used by the OmniAnomaly and Donut-style
baselines and by the dynamic-graph (ESG) baseline."""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["GRUCell", "GRU", "LSTMCell", "LSTM"]


class GRUCell(Module):
    """A single gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.x_gates = Linear(input_size, 3 * hidden_size, rng=rng)
        self.h_gates = Linear(hidden_size, 3 * hidden_size, rng=rng)

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """Advance the cell one step.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        hidden:
            Previous hidden state of shape ``(batch, hidden_size)``.
        """
        gx = self.x_gates(x)
        gh = self.h_gates(hidden)
        h = self.hidden_size
        reset = (gx[:, :h] + gh[:, :h]).sigmoid()
        update = (gx[:, h:2 * h] + gh[:, h:2 * h]).sigmoid()
        candidate = (gx[:, 2 * h:] + reset * gh[:, 2 * h:]).tanh()
        return update * hidden + (Tensor(1.0) - update) * candidate


class GRU(Module):
    """Unrolled single-layer GRU over a sequence."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, hidden: Tensor | None = None) -> tuple[Tensor, Tensor]:
        """Run the GRU over ``x`` of shape ``(batch, length, input_size)``.

        Returns the stacked hidden states ``(batch, length, hidden_size)`` and
        the final hidden state ``(batch, hidden_size)``.
        """
        batch, length, _ = x.shape
        if hidden is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(length):
            hidden = self.cell(x[:, t, :], hidden)
            outputs.append(hidden)
        return Tensor.stack(outputs, axis=1), hidden


class LSTMCell(Module):
    """A single long short-term memory cell."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.x_gates = Linear(input_size, 4 * hidden_size, rng=rng)
        self.h_gates = Linear(hidden_size, 4 * hidden_size, rng=rng)

    def forward(self, x: Tensor, hidden: Tensor, cell: Tensor) -> tuple[Tensor, Tensor]:
        gates = self.x_gates(x) + self.h_gates(hidden)
        h = self.hidden_size
        input_gate = gates[:, :h].sigmoid()
        forget_gate = gates[:, h:2 * h].sigmoid()
        candidate = gates[:, 2 * h:3 * h].tanh()
        output_gate = gates[:, 3 * h:].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class LSTM(Module):
    """Unrolled single-layer LSTM over a sequence."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self,
        x: Tensor,
        state: tuple[Tensor, Tensor] | None = None,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        batch, length, _ = x.shape
        if state is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size)))
            cell = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            hidden, cell = state
        outputs = []
        for t in range(length):
            hidden, cell = self.cell(x[:, t, :], hidden, cell)
            outputs.append(hidden)
        return Tensor.stack(outputs, axis=1), (hidden, cell)
