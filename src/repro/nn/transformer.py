"""Transformer encoder and decoder blocks (Eq. 7-8 in the paper).

These blocks use the post-norm residual arrangement of the original
Transformer, which is what the AERO paper describes:

* encoder:  ``LayerNorm(x + MHA(x, x, x))`` followed by
  ``LayerNorm(h + FFN(h))``;
* decoder:  self-attention on the short-window embedding, then
  cross-attention with the encoder output as keys/values, then a
  feed-forward block.
"""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention
from .layers import Dropout, FeedForward, LayerNorm
from .module import Module
from .tensor import Tensor

__all__ = [
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "TransformerEncoder",
    "TransformerDecoder",
]


class TransformerEncoderLayer(Module):
    """A single post-norm Transformer encoder layer."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.self_attention = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.feed_forward = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        attended = self.self_attention(x, x, x, mask=mask)
        x = self.norm1(x + self.dropout(attended))
        transformed = self.feed_forward(x)
        return self.norm2(x + self.dropout(transformed))


class TransformerDecoderLayer(Module):
    """A single post-norm Transformer decoder layer with cross-attention."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.self_attention = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.cross_attention = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.feed_forward = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.norm3 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        attended = self.self_attention(x, x, x, mask=self_mask)
        x = self.norm1(x + self.dropout(attended))
        cross = self.cross_attention(x, memory, memory, mask=memory_mask)
        x = self.norm2(x + self.dropout(cross))
        transformed = self.feed_forward(x)
        return self.norm3(x + self.dropout(transformed))


class TransformerEncoder(Module):
    """A stack of encoder layers."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        num_layers: int = 1,
        d_ff: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = [
            TransformerEncoderLayer(d_model, num_heads, d_ff=d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        ]

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x


class TransformerDecoder(Module):
    """A stack of decoder layers sharing the same encoder memory."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        num_layers: int = 1,
        d_ff: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = [
            TransformerDecoderLayer(d_model, num_heads, d_ff=d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        ]

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, memory, self_mask=self_mask, memory_mask=memory_mask)
        return x
