"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of the ``repro.nn`` package.  The paper's
original implementation relies on PyTorch; in this reproduction every neural
component (Transformer, GCN, GRU, VAE, ...) is built on the :class:`Tensor`
class defined here, which provides a small but complete reverse-mode autodiff
engine:

* element-wise arithmetic with numpy broadcasting,
* matrix multiplication, reductions, reshaping, slicing and concatenation,
* the non-linearities required by the models (sigmoid, tanh, relu, gelu,
  softmax, log-softmax),
* a topological-order ``backward`` pass that accumulates gradients.

The design intentionally mirrors the familiar ``torch.Tensor`` surface so the
model code in :mod:`repro.core` and :mod:`repro.baselines` reads like the
paper's reference implementation.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Grad mode is *per thread* (like torch's): concurrent training sessions —
# e.g. a FleetTrainer thread pool — must not see each other's no_grad blocks.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad``.  While active, newly created tensors do not
    record the computation graph, which makes inference significantly cheaper.
    The flag is thread-local, so parallel training/inference threads are
    isolated from one another.
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        _GRAD_STATE.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled (in this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to the shape of
    ``grad`` during the forward pass, the corresponding gradient must be
    summed over the broadcast axes before being accumulated.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed array that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and getattr(_GRAD_STATE, "enabled", True)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], Iterable[np.ndarray | None]],
    ) -> "Tensor":
        """Create an output tensor wired to ``parents`` via ``backward``.

        ``backward`` maps the output gradient to one gradient per parent
        (``None`` for parents that do not require gradients).
        """
        requires = getattr(_GRAD_STATE, "enabled", True) and any(
            p.requires_grad for p in parents
        )
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)

            def _run() -> None:
                grads = backward(out.grad)
                for parent, grad in zip(out._parents, grads):
                    if grad is None or not parent.requires_grad:
                        continue
                    grad = _unbroadcast(np.asarray(grad), parent.data.shape)
                    if parent.grad is None:
                        parent.grad = grad.copy()
                    else:
                        parent.grad = parent.grad + grad

            out._backward = _run
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data
        return Tensor._make(data, (self, other), lambda g: (g, g))

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data
        return Tensor._make(data, (self, other), lambda g: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return other.__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data
        return Tensor._make(
            data, (self, other), lambda g: (g * other.data, g * self.data)
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data
        return Tensor._make(
            data,
            (self, other),
            lambda g: (g / other.data, -g * self.data / (other.data ** 2)),
        )

    def __rtruediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return other.__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        data = self.data ** exponent
        return Tensor._make(
            data,
            (self,),
            lambda g: (g * exponent * self.data ** (exponent - 1.0),),
        )

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(g: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return g * b, g * a
            if a.ndim == 1:
                grad_a = g @ np.swapaxes(b, -1, -2)
                grad_b = np.outer(a, g) if b.ndim == 2 else a[:, None] * g
                return grad_a, grad_b
            if b.ndim == 1:
                grad_a = np.expand_dims(g, -1) * b
                grad_b = np.swapaxes(a, -1, -2) @ g
                return grad_a, grad_b
            grad_a = g @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ g
            return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            grad = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(grad, self.data.shape).copy(),)
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, self.data.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            grad = np.asarray(g)
            expanded = data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            return (mask * grad,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # element-wise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._make(data, (self,), lambda g: (g * data,))

    def log(self) -> "Tensor":
        data = np.log(self.data)
        return Tensor._make(data, (self,), lambda g: (g / self.data,))

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._make(data, (self,), lambda g: (g * 0.5 / data,))

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        return Tensor._make(data, (self,), lambda g: (g * np.sign(self.data),))

    def sin(self) -> "Tensor":
        data = np.sin(self.data)
        return Tensor._make(data, (self,), lambda g: (g * np.cos(self.data),))

    def cos(self) -> "Tensor":
        data = np.cos(self.data)
        return Tensor._make(data, (self,), lambda g: (-g * np.sin(self.data),))

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._make(data, (self,), lambda g: (g * (1.0 - data ** 2),))

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        return Tensor._make(data, (self,), lambda g: (g * data * (1.0 - data),))

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        return Tensor._make(self.data * mask, (self,), lambda g: (g * mask,))

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        data = 0.5 * x * (1.0 + tanh_inner)

        def backward(g: np.ndarray):
            d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
            grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * (1.0 - tanh_inner ** 2) * d_inner
            return (g * grad,)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
        return Tensor._make(data, (self,), lambda g: (g * mask,))

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray):
            dot = (g * data).sum(axis=axis, keepdims=True)
            return (data * (g - dot),)

        return Tensor._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_sum
        softmax = np.exp(data)

        def backward(g: np.ndarray):
            return (g - softmax * g.sum(axis=axis, keepdims=True),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)
        return Tensor._make(data, (self,), lambda g: (g.reshape(original),))

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        data = self.data.transpose(axes)
        return Tensor._make(data, (self,), lambda g: (g.transpose(inverse),))

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        data = self.data.swapaxes(axis1, axis2)
        return Tensor._make(data, (self,), lambda g: (g.swapaxes(axis1, axis2),))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(g: np.ndarray):
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, g)
            return (grad,)

        return Tensor._make(data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)
        return Tensor._make(data, (self,), lambda g: (np.squeeze(g, axis=axis),))

    def squeeze(self, axis: int | None = None) -> "Tensor":
        original = self.data.shape
        data = np.squeeze(self.data, axis=axis)
        return Tensor._make(data, (self,), lambda g: (g.reshape(original),))

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        """Tile the tensor along ``axis`` (gradient sums over the copies)."""
        data = np.repeat(self.data, repeats, axis=axis)
        original = self.data.shape

        def backward(g: np.ndarray):
            new_shape = list(original)
            new_shape.insert(axis + 1, repeats)
            return (g.reshape(new_shape).sum(axis=axis + 1),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # combination helpers
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray):
            grads = []
            slicer: list = [slice(None)] * g.ndim
            for i in range(len(tensors)):
                slicer[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
                grads.append(g[tuple(slicer)])
            return grads

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray):
            return [np.take(g, i, axis=axis) for i in range(len(tensors))]

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a = a if isinstance(a, Tensor) else Tensor(a)
        b = b if isinstance(b, Tensor) else Tensor(b)
        cond = np.asarray(condition, dtype=bool)
        data = np.where(cond, a.data, b.data)
        return Tensor._make(
            data,
            (a, b),
            lambda g: (np.where(cond, g, 0.0), np.where(cond, 0.0, g)),
        )

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (appropriate when this tensor is a scalar loss).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological ordering of the graph reachable from ``self``.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:  # repro: allow[id-key] -- visited-set for one walk; every keyed node is alive on `stack`/`order`, so no address can recycle mid-walk
                continue
            visited.add(id(node))  # repro: allow[id-key] -- same walk-scoped visited-set
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:  # repro: allow[id-key] -- same walk-scoped visited-set
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()
