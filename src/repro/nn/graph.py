"""Graph neural-network layers.

``GCNLayer`` implements the propagation rule used by AERO's concurrent-noise
reconstruction module (Eq. 14): a degree-normalized adjacency multiplies the
node features, followed by a learnable linear map and an activation.  The
adjacency matrix is supplied at call time, which is what makes the paper's
window-wise graph structure learning possible — every sliding window can use
a different graph.

``GraphAttentionLayer`` provides a simple graph-attention variant used by the
GDN baseline.
"""

from __future__ import annotations

import numpy as np

from . import init
from .layers import Linear
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["normalize_adjacency", "GCNLayer", "GraphAttentionLayer"]


def normalize_adjacency(
    adjacency: np.ndarray,
    remove_self_loops: bool = False,
    add_self_loops: bool = False,
    eps: float = 1e-8,
) -> np.ndarray:
    """Return the row-normalized adjacency ``D^-1 A``.

    Parameters
    ----------
    adjacency:
        Square adjacency matrix (may carry real-valued weights).
    remove_self_loops:
        Zero the diagonal before normalizing.  AERO removes self-loops so a
        true anomaly cannot be reconstructed from its own error signature.
    add_self_loops:
        Add the identity before normalizing (classic GCN formulation).
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
    result = adjacency.copy()
    if remove_self_loops:
        np.fill_diagonal(result, 0.0)
    if add_self_loops:
        result = result + np.eye(result.shape[0])
    # Normalise by the total absolute edge weight so rows with mixed-sign or
    # near-zero weights do not blow up the propagation.
    degree = np.abs(result).sum(axis=1)
    inverse_degree = np.where(degree > eps, 1.0 / (degree + eps), 0.0)
    return inverse_degree[:, None] * result


class GCNLayer(Module):
    """Single graph-convolution layer ``sigma(D^-1 A X W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "sigmoid",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,)))
        if activation not in {"sigmoid", "relu", "tanh", "identity"}:
            raise ValueError(f"unsupported activation: {activation}")
        self.activation = activation

    def forward(self, x: Tensor, normalized_adjacency: np.ndarray) -> Tensor:
        """Apply the layer to node features ``x`` of shape ``(nodes, features)``."""
        propagated = Tensor(np.asarray(normalized_adjacency)) @ x
        out = propagated @ self.weight + self.bias
        if self.activation == "sigmoid":
            return out.sigmoid()
        if self.activation == "relu":
            return out.relu()
        if self.activation == "tanh":
            return out.tanh()
        return out


class GraphAttentionLayer(Module):
    """Graph attention with additive scoring, as used by the GDN baseline.

    The attention coefficients are computed between a node and its neighbors
    (given by a binary adjacency), then used to aggregate neighbor features.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.project = Linear(in_features, out_features, rng=rng)
        self.attention_vector = Parameter(init.xavier_uniform((2 * out_features, 1), rng))

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        """Node features ``x``: ``(nodes, in_features)``; binary ``adjacency``."""
        num_nodes = x.shape[0]
        projected = self.project(x)
        out_features = projected.shape[-1]

        # Build all pairwise concatenations (i, j) -> [h_i ; h_j].
        left = projected.expand_dims(1).repeat(num_nodes, axis=1)
        right = projected.expand_dims(0).repeat(num_nodes, axis=0)
        pairs = Tensor.concat([left, right], axis=-1)
        scores = (pairs @ self.attention_vector).squeeze(-1)
        scores = scores.tanh()

        mask = np.asarray(adjacency, dtype=bool)
        np.fill_diagonal(mask, True)
        penalty = np.where(mask, 0.0, -1e9)
        weights = (scores + Tensor(penalty)).softmax(axis=-1)
        return (weights @ projected).relu()
