"""Loss functions used by AERO and the baselines."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["mse_loss", "mae_loss", "huber_loss", "gaussian_nll", "kl_divergence_normal"]


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error (the reconstruction loss in Eq. 15-16)."""
    prediction = _as_tensor(prediction)
    target = _as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    prediction = _as_tensor(prediction)
    target = _as_tensor(target)
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails."""
    prediction = _as_tensor(prediction)
    target = _as_tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - Tensor(0.5 * delta ** 2)
    mask = abs_diff.data <= delta
    return Tensor.where(mask, quadratic, linear).mean()


def gaussian_nll(target: Tensor, mean: Tensor, log_var: Tensor) -> Tensor:
    """Negative log-likelihood of ``target`` under a diagonal Gaussian.

    Used by the VAE-based baselines (Donut, OmniAnomaly).
    """
    target = _as_tensor(target)
    diff = target - mean
    return (0.5 * (log_var + diff * diff / log_var.exp() + np.log(2.0 * np.pi))).mean()


def kl_divergence_normal(mean: Tensor, log_var: Tensor) -> Tensor:
    """KL( N(mean, exp(log_var)) || N(0, 1) ), averaged over elements."""
    return (-0.5 * (Tensor(1.0) + log_var - mean * mean - log_var.exp())).mean()
