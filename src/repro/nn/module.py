"""Base classes for trainable neural-network components.

``Parameter`` marks a tensor as trainable; ``Module`` provides parameter
registration, traversal, train/eval switching and (de)serialization so that
models built on :mod:`repro.nn` compose the same way PyTorch modules do.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must always track gradients, even if created inside a
        # ``no_grad`` block (e.g. lazily constructed layers during inference).
        self.requires_grad = True


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by :meth:`parameters` and
    :meth:`named_parameters`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and submodules."""
        for attr, value in vars(self).items():
            if attr == "training":
                continue
            qualified = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{qualified}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{qualified}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{key}.")

    def parameters(self) -> list[Parameter]:
        """Return the list of all trainable parameters."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule, depth first."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # training state
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            param = own[name]
            values = np.asarray(values, dtype=param.data.dtype)
            if values.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {values.shape}"
                )
            param.data = values.copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
