"""Saving and loading model parameters to/from ``.npz`` archives.

``save_module``/``load_module`` persist one :class:`~repro.nn.Module`;
``save_optimizer``/``load_optimizer`` do the same for an
:class:`~repro.nn.Optimizer` (Adam moments, SGD velocity) so that a training
session can resume bit-identically; ``save_arrays``/``load_arrays`` are the
underlying flat-archive helpers, reused by higher-level checkpoints (e.g.
``AeroDetector.save()`` and ``TrainingSession.save_checkpoint()``, which
store several components in one artifact).

All loaders validate eagerly and raise descriptive errors — a missing
file, a corrupt archive, missing/unexpected parameters or a shape mismatch
each name the offending path and keys instead of surfacing a cryptic numpy
failure deep inside ``load_state_dict``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .module import Module

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from .optim import Optimizer

__all__ = [
    "save_module",
    "load_module",
    "save_optimizer",
    "load_optimizer",
    "save_arrays",
    "load_arrays",
]


def save_arrays(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """Persist a flat ``name -> array`` mapping into a compressed ``.npz``.

    Keys may contain dots (they are escaped — ``np.savez`` forbids some
    separators in archive member names on some platforms).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{_escape(key): value for key, value in arrays.items()})
    return path


def load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Load a ``name -> array`` mapping saved by :func:`save_arrays`.

    Raises
    ------
    FileNotFoundError
        If ``path`` does not exist.
    ValueError
        If the file is not a readable ``.npz`` archive.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint found at {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {_unescape(key): archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except Exception as error:  # zipfile.BadZipFile, pickle refusals, ...
        raise ValueError(f"{path} is not a readable .npz checkpoint: {error}") from error


def save_module(module: Module, path: str | Path) -> Path:
    """Persist all parameters of ``module`` into a compressed ``.npz`` file."""
    return save_arrays(path, module.state_dict())


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` in place.

    The archive is validated against the module before anything is written:
    missing keys, unexpected keys and per-parameter shape mismatches raise
    with the checkpoint path, the module class and the offending names.
    """
    path = Path(path)
    state = load_arrays(path)
    own = dict(module.named_parameters())
    context = f"checkpoint {path} does not match {type(module).__name__}"

    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing or unexpected:
        details = []
        if missing:
            details.append(f"missing parameters: {_preview(missing)}")
        if unexpected:
            details.append(f"unexpected parameters: {_preview(unexpected)}")
        raise KeyError(f"{context}: " + "; ".join(details))
    mismatched = [
        f"{name} (expected {own[name].data.shape}, got {np.shape(state[name])})"
        for name in own
        if np.shape(state[name]) != own[name].data.shape
    ]
    if mismatched:
        raise ValueError(f"{context}: shape mismatch for {_preview(mismatched)}")

    module.load_state_dict(state)
    return module


def save_optimizer(optimizer: "Optimizer", path: str | Path) -> Path:
    """Persist an optimizer's internal state into a compressed ``.npz`` file.

    Only the state (Adam step count and moment estimates, SGD velocity) is
    stored; hyperparameters are reconstructed from the configuration that
    rebuilds the optimizer before :func:`load_optimizer` restores the state.
    """
    return save_arrays(path, optimizer.state_dict())


def load_optimizer(optimizer: "Optimizer", path: str | Path) -> "Optimizer":
    """Load state saved by :func:`save_optimizer` into ``optimizer`` in place.

    The optimizer must already hold the same parameter list (same count and
    shapes) as the one that was saved; mismatches raise with the checkpoint
    path and the offending keys.
    """
    path = Path(path)
    state = load_arrays(path)
    try:
        optimizer.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise type(error)(
            f"checkpoint {path} does not match {type(optimizer).__name__}: {error}"
        ) from error
    return optimizer


def _preview(items: list[str], limit: int = 5) -> str:
    shown = ", ".join(items[:limit])
    if len(items) > limit:
        shown += f", ... ({len(items)} total)"
    return shown


def _escape(key: str) -> str:
    return key.replace(".", "__DOT__")


def _unescape(key: str) -> str:
    return key.replace("__DOT__", ".")
