"""Saving and loading model parameters to/from ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | Path) -> Path:
    """Persist all parameters of ``module`` into a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    # ``np.savez`` forbids "/" in keys on some platforms; escape dots too for safety.
    np.savez_compressed(path, **{_escape(key): value for key, value in state.items()})
    return path


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` in place."""
    path = Path(path)
    with np.load(path) as archive:
        state = {_unescape(key): archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def _escape(key: str) -> str:
    return key.replace(".", "__DOT__")


def _unescape(key: str) -> str:
    return key.replace("__DOT__", ".")
