"""Scaled dot-product and multi-head attention (Eq. 5-6 in the paper)."""

from __future__ import annotations

import numpy as np

from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["scaled_dot_product_attention", "MultiHeadAttention"]


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
    return_weights: bool = False,
):
    """Compute ``softmax(Q K^T / sqrt(d)) V``.

    Parameters
    ----------
    query, key, value:
        Tensors of shape ``(..., length, d)``; the leading axes must be
        broadcast compatible.
    mask:
        Optional boolean array broadcastable to the attention score shape;
        positions where the mask is ``True`` are excluded from attention.
    return_weights:
        If ``True``, also return the attention weight tensor.
    """
    d_k = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_k))
    if mask is not None:
        penalty = np.where(np.asarray(mask, dtype=bool), -1e9, 0.0)
        scores = scores + Tensor(penalty)
    weights = scores.softmax(axis=-1)
    output = weights @ value
    if return_weights:
        return output, weights
    return output


class MultiHeadAttention(Module):
    """Multi-head attention with separate projection matrices per head.

    Follows the standard Transformer formulation used by the paper's temporal
    reconstruction module (Eq. 6): the input embeddings are projected into
    ``num_heads`` sets of queries/keys/values, attended independently, then
    concatenated and mixed by an output projection.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(
                f"d_model ({d_model}) must be divisible by num_heads ({num_heads})"
            )
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.w_query = Linear(d_model, d_model, rng=rng)
        self.w_key = Linear(d_model, d_model, rng=rng)
        self.w_value = Linear(d_model, d_model, rng=rng)
        self.w_out = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.last_attention: np.ndarray | None = None

    def _split_heads(self, x: Tensor) -> Tensor:
        """Reshape ``(batch, length, d_model)`` to ``(batch, heads, length, d_head)``."""
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, d_head = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * d_head)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        q = self._split_heads(self.w_query(query))
        k = self._split_heads(self.w_key(key))
        v = self._split_heads(self.w_value(value))
        attended, weights = scaled_dot_product_attention(q, k, v, mask=mask, return_weights=True)
        self.last_attention = weights.data
        merged = self._merge_heads(attended)
        return self.dropout(self.w_out(merged))
