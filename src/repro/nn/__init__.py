"""A compact numpy-based deep-learning framework.

This package is the substrate substitution for PyTorch described in
``DESIGN.md``: reverse-mode autodiff (:class:`Tensor`), module system,
layers (linear, layer norm, dropout, attention, transformer blocks, GRU/LSTM,
graph convolutions, 1-D/2-D convolutions), optimizers and losses.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from .module import Module, Parameter
from .layers import (
    Linear,
    LayerNorm,
    Dropout,
    ReLU,
    GELU,
    Tanh,
    Sigmoid,
    Sequential,
    FeedForward,
    Embedding,
)
from .attention import MultiHeadAttention, scaled_dot_product_attention
from .transformer import (
    TransformerEncoder,
    TransformerDecoder,
    TransformerEncoderLayer,
    TransformerDecoderLayer,
)
from .recurrent import GRU, GRUCell, LSTM, LSTMCell
from .graph import GCNLayer, GraphAttentionLayer, normalize_adjacency
from .conv import Conv1d, Conv2d
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .losses import mse_loss, mae_loss, huber_loss, gaussian_nll, kl_divergence_normal
from .serialization import (
    save_module,
    load_module,
    save_optimizer,
    load_optimizer,
    save_arrays,
    load_arrays,
)
from . import init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "FeedForward",
    "Embedding",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "TransformerEncoder",
    "TransformerDecoder",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "GCNLayer",
    "GraphAttentionLayer",
    "normalize_adjacency",
    "Conv1d",
    "Conv2d",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "gaussian_nll",
    "kl_divergence_normal",
    "save_module",
    "load_module",
    "save_optimizer",
    "load_optimizer",
    "save_arrays",
    "load_arrays",
    "init",
]
