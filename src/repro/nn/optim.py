"""Gradient-descent optimizers (SGD with momentum, Adam) and gradient clipping."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad = param.grad * scale
    return total


class Optimizer:
    """Base class holding the parameter list and providing ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # (de)serialization — required for resumable training sessions: Adam's
    # moment estimates (and SGD's velocity) are part of the training
    # trajectory, so a checkpoint without them cannot resume bit-identically.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of the optimizer's internal state as flat arrays.

        Hyperparameters (learning rate, betas, ...) are *not* included; they
        are reconstructed from the configuration that builds the optimizer.
        """
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore internal state produced by :meth:`state_dict`."""
        self._check_state_keys(state, expected=set())

    def _check_state_keys(self, state: dict[str, np.ndarray], expected: set[str]) -> None:
        missing = sorted(expected - set(state))
        unexpected = sorted(set(state) - expected)
        if missing or unexpected:
            raise KeyError(
                f"{type(self).__name__} state mismatch: "
                f"missing={missing} unexpected={unexpected}"
            )

    @staticmethod
    def _load_slot(slots: list[np.ndarray], index: int, value: np.ndarray, name: str) -> None:
        value = np.asarray(value, dtype=slots[index].dtype)
        if value.shape != slots[index].shape:
            raise ValueError(
                f"shape mismatch for {name}: expected {slots[index].shape}, got {value.shape}"
            )
        slots[index] = value.copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        expected = {f"velocity.{i}" for i in range(len(self.parameters))}
        self._check_state_keys(state, expected)
        for i in range(len(self.parameters)):
            self._load_slot(self._velocity, i, state[f"velocity.{i}"], f"velocity.{i}")

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015), the optimizer used in the paper."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"step": np.asarray(self._step, dtype=np.int64)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        expected = {"step"}
        for i in range(len(self.parameters)):
            expected.add(f"m.{i}")
            expected.add(f"v.{i}")
        self._check_state_keys(state, expected)
        step = np.asarray(state["step"])
        if step.shape != () or int(step) < 0:
            raise ValueError(f"Adam step count must be a non-negative scalar, got {step!r}")
        for i in range(len(self.parameters)):
            self._load_slot(self._m, i, state[f"m.{i}"], f"m.{i}")
            self._load_slot(self._v, i, state[f"v.{i}"], f"v.{i}")
        self._step = int(step)

    def step(self) -> None:
        self._step += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step
        bias_correction2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
