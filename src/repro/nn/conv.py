"""1-D and 2-D convolution layers (used by the TimesNet baseline).

The implementation lowers convolution to matrix multiplication (im2col) so
gradients flow through the standard autodiff ops without any bespoke backward
code.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Conv1d", "Conv2d"]


class Conv1d(Module):
    """1-D convolution over the last axis with "same" padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.weight = Parameter(
            init.xavier_uniform((in_channels * kernel_size, out_channels), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        """Input shape ``(batch, in_channels, length)`` -> ``(batch, out_channels, length)``."""
        batch, channels, length = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        pad_left = (self.kernel_size - 1) // 2
        pad_right = self.kernel_size - 1 - pad_left

        padded = np.zeros((batch, channels, length + self.kernel_size - 1))
        padded_tensor = Tensor(padded)
        # Insert x into the padded buffer via concatenation to keep gradients.
        zeros_left = Tensor(np.zeros((batch, channels, pad_left)))
        zeros_right = Tensor(np.zeros((batch, channels, pad_right)))
        padded_tensor = Tensor.concat([zeros_left, x, zeros_right], axis=2)

        # im2col: gather kernel_size shifted views and stack on the channel axis.
        columns = [
            padded_tensor[:, :, offset:offset + length]
            for offset in range(self.kernel_size)
        ]
        stacked = Tensor.concat(columns, axis=1)  # (batch, C*K, length)
        stacked = stacked.transpose(0, 2, 1)  # (batch, length, C*K)
        out = stacked @ self.weight + self.bias  # (batch, length, out_channels)
        return out.transpose(0, 2, 1)


class Conv2d(Module):
    """2-D convolution with "same" padding, lowered to matrix multiplication."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.weight = Parameter(
            init.xavier_uniform((in_channels * kernel_size * kernel_size, out_channels), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        """Input ``(batch, in_channels, height, width)`` -> same spatial shape."""
        batch, channels, height, width = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        k = self.kernel_size
        pad = (k - 1) // 2
        pad_after = k - 1 - pad

        zeros_top = Tensor(np.zeros((batch, channels, pad, width)))
        zeros_bottom = Tensor(np.zeros((batch, channels, pad_after, width)))
        padded = Tensor.concat([zeros_top, x, zeros_bottom], axis=2)
        padded_height = height + k - 1
        zeros_left = Tensor(np.zeros((batch, channels, padded_height, pad)))
        zeros_right = Tensor(np.zeros((batch, channels, padded_height, pad_after)))
        padded = Tensor.concat([zeros_left, padded, zeros_right], axis=3)

        patches = []
        for dy in range(k):
            for dx in range(k):
                patches.append(padded[:, :, dy:dy + height, dx:dx + width])
        stacked = Tensor.concat(patches, axis=1)  # (batch, C*K*K, H, W)
        stacked = stacked.transpose(0, 2, 3, 1)  # (batch, H, W, C*K*K)
        out = stacked @ self.weight + self.bias  # (batch, H, W, out_channels)
        return out.transpose(0, 3, 1, 2)
