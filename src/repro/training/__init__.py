"""Fleet-scale training subsystem: resumable sessions, parallel orchestration.

The training-side counterpart of :mod:`repro.streaming` and
:mod:`repro.runtime`: where those scale *serving* to many stars, this
package scales *producing and refreshing* the models behind them.

* :mod:`~repro.training.session` — :class:`TrainingSession`, the two-stage
  loop of Algorithm 1 with epoch-level checkpoint/resume (bit-identical),
  validation-split early stopping, best-weight restore and warm starting;
* :mod:`~repro.training.fleet` — :class:`FleetTrainer`, worker-pool
  orchestration of many per-star trainings with deterministic per-star
  seeds and isolated failures;
* :mod:`~repro.training.registry` — :class:`ModelRegistry`, versioned
  on-disk artifacts feeding the serving fleet, including hot swaps into a
  running :class:`~repro.streaming.FleetManager`;
* :mod:`~repro.training.canary` — shadow-canary evaluation of a retrained
  candidate against the live model on recorded traffic, with explicit
  recall / quiet-star / PSI promotion budgets;
* :mod:`~repro.training.loop` — :class:`ContinualLearningController`, the
  closed loop: drift-triggered warm-start retrains, canary-gated
  promotion, post-deploy watch window with automatic rollback.

Everything logs under the ``repro.training`` logger namespace.
"""

from .session import EarlyStopping, TrainingHistory, TrainingSession
from .fleet import FleetTrainer, FleetTrainingReport, StarResult, StarTask
from .registry import ModelRegistry, ModelVersion
from .canary import (
    CanaryBudget,
    CanaryReport,
    GateResult,
    ProbeEvent,
    ShadowTraffic,
    evaluate_canary,
    inject_probes,
    score_psi,
)
from .loop import ContinualLearningController, LoopEvent

__all__ = [
    "TrainingSession",
    "TrainingHistory",
    "EarlyStopping",
    "FleetTrainer",
    "FleetTrainingReport",
    "StarTask",
    "StarResult",
    "ModelRegistry",
    "ModelVersion",
    "CanaryBudget",
    "CanaryReport",
    "GateResult",
    "ProbeEvent",
    "ShadowTraffic",
    "evaluate_canary",
    "inject_probes",
    "score_psi",
    "ContinualLearningController",
    "LoopEvent",
]
