"""Parallel multi-star training orchestration.

A GWAC-scale deployment refreshes thousands of per-field detectors per day;
driving :meth:`AeroDetector.fit` star by star leaves every other core idle.
:class:`FleetTrainer` fans a list of :class:`StarTask` workloads out over a
worker pool (process-based by default — the numpy autodiff substrate is
mostly GIL-bound Python, so threads only help on BLAS-heavy shapes) and
collects one :class:`StarResult` per star.

Determinism contract: every star trains under its *own* seed, derived only
from the task order (``base_seed + index``) or given explicitly, and tasks
share no mutable state — so the trained weights are bit-identical regardless
of worker count, executor kind or completion order.  Failures are isolated:
one diverging star produces a ``failed`` result with the error message, the
rest of the fleet trains on.

Each trained detector is saved as a standard ``AeroDetector.save()``
artifact under ``output_dir`` (and optionally published straight into a
:class:`~repro.training.registry.ModelRegistry`), which is what the serving
fleet hot-swaps from.
"""

from __future__ import annotations

import logging
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import numpy as np

from ..obs.metrics import get_registry
from .session import TrainingHistory

if TYPE_CHECKING:  # pragma: no cover - imports only for type checkers
    from ..core.config import AeroConfig
    from .registry import ModelRegistry

__all__ = ["StarTask", "StarResult", "FleetTrainingReport", "FleetTrainer"]

logger = logging.getLogger("repro.training.fleet")

EXECUTORS = ("serial", "thread", "process")


@dataclass
class StarTask:
    """One star (or star group) to train.

    ``series`` is the unlabeled training series of shape ``(T, N)``.
    ``seed`` overrides the fleet's derived per-star seed; ``warm_start``
    points at an existing detector checkpoint to fine-tune from (the drifted
    -star refresh path); ``detector_kwargs`` selects an ablation variant or
    other :class:`~repro.core.AeroDetector` flags.
    """

    star_id: str
    series: np.ndarray
    timestamps: np.ndarray | None = None
    seed: int | None = None
    warm_start: str | Path | None = None
    detector_kwargs: dict = field(default_factory=dict)


@dataclass
class StarResult:
    """Outcome of one star's training run."""

    star_id: str
    status: str                        # "trained" | "failed"
    seed: int
    checkpoint_path: Path | None = None
    history: TrainingHistory | None = None
    duration_seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "trained"


@dataclass
class FleetTrainingReport:
    """All per-star results of one :meth:`FleetTrainer.train` call."""

    results: list[StarResult]
    wall_seconds: float
    workers: int
    executor: str

    @property
    def trained(self) -> list[StarResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[StarResult]:
        return [r for r in self.results if not r.ok]

    def result(self, star_id: str) -> StarResult:
        for result in self.results:
            if result.star_id == star_id:
                return result
        raise KeyError(f"no result for star {star_id!r}")

    def summary(self) -> str:
        cpu = sum(r.duration_seconds for r in self.results)
        return (
            f"{len(self.trained)}/{len(self.results)} stars trained "
            f"({len(self.failed)} failed) in {self.wall_seconds:.1f}s wall "
            f"/ {cpu:.1f}s cpu on {self.workers} {self.executor} worker(s)"
        )


def _train_star(
    task: StarTask,
    config: "AeroConfig",
    seed: int,
    output_dir: str,
    validation_split: float,
) -> StarResult:
    """Train one star end to end; module-level so process pools can pickle it."""
    from ..core.detector import AeroDetector

    start = time.perf_counter()
    try:
        detector = AeroDetector(config=config.scaled(seed=seed), **task.detector_kwargs)
        detector.fit(
            task.series,
            task.timestamps,
            validation_split=validation_split,
            warm_start=task.warm_start,
        )
        path = detector.save(Path(output_dir) / f"{task.star_id}.npz")
        return StarResult(
            star_id=task.star_id,
            status="trained",
            seed=seed,
            checkpoint_path=path,
            history=detector.history,
            duration_seconds=time.perf_counter() - start,
        )
    except Exception as error:  # noqa: BLE001 - failures must not sink the fleet
        return StarResult(
            star_id=task.star_id,
            status="failed",
            seed=seed,
            duration_seconds=time.perf_counter() - start,
            error="".join(traceback.format_exception_only(type(error), error)).strip(),
        )


class FleetTrainer:
    """Trains many independent per-star detectors through a worker pool.

    Parameters
    ----------
    config:
        Base :class:`~repro.core.AeroConfig`; each star trains under a copy
        with its own seed.
    output_dir:
        Directory receiving one ``<star_id>.npz`` detector artifact per
        trained star.
    workers:
        Pool size (default 1).  Results are identical for any value.
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"`` (in-process
        loop, no pool — useful for debugging and tiny fleets).
    base_seed:
        Per-star seeds default to ``base_seed + task_index``; ``None`` uses
        ``config.seed`` as the base.
    validation_split:
        Forwarded to every star's training session.
    registry:
        Optional :class:`~repro.training.registry.ModelRegistry`; every
        trained star is published under its ``star_id``.
    """

    def __init__(
        self,
        config: "AeroConfig",
        output_dir: str | Path,
        *,
        workers: int = 1,
        executor: str = "process",
        base_seed: int | None = None,
        validation_split: float = 0.0,
        registry: "ModelRegistry | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.config = config
        self.output_dir = Path(output_dir)
        self.workers = workers
        self.executor = executor
        self.base_seed = config.seed if base_seed is None else base_seed
        self.validation_split = validation_split
        self.registry = registry

    # ------------------------------------------------------------------
    def _normalize_tasks(
        self, tasks: Iterable[StarTask] | Mapping[str, np.ndarray]
    ) -> list[StarTask]:
        if isinstance(tasks, Mapping):
            tasks = [StarTask(star_id=str(star_id), series=series) for star_id, series in tasks.items()]
        tasks = list(tasks)
        if not tasks:
            raise ValueError("no tasks to train")
        seen: set[str] = set()
        for task in tasks:
            if not task.star_id:
                raise ValueError("every task needs a non-empty star_id")
            if task.star_id in seen:
                raise ValueError(f"duplicate star_id {task.star_id!r}")
            seen.add(task.star_id)
        return tasks

    def _seed_for(self, task: StarTask, index: int) -> int:
        return task.seed if task.seed is not None else self.base_seed + index

    def _make_pool(self) -> Executor | None:
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return None

    # ------------------------------------------------------------------
    def train(
        self,
        tasks: Iterable[StarTask] | Mapping[str, np.ndarray],
        progress: Callable[[StarResult, int, int], None] | None = None,
    ) -> FleetTrainingReport:
        """Train every task; returns results in task order.

        ``progress`` (if given) is called in the parent process as each star
        finishes, with ``(result, completed_count, total)`` — completion
        order, not task order.
        """
        tasks = self._normalize_tasks(tasks)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        total = len(tasks)
        start = time.perf_counter()
        results: list[StarResult | None] = [None] * total
        completed = 0

        # Resolved once per train() call — star training runs for seconds,
        # so telemetry toggles take effect on the next fleet run.
        metrics = get_registry()
        m_trained = metrics.counter(
            "fleet_stars_trained_total", "Stars trained to completion by FleetTrainer"
        )
        m_failed = metrics.counter(
            "fleet_stars_failed_total", "Star training runs that failed"
        )
        m_duration = metrics.histogram(
            "fleet_star_train_seconds", "Wall-clock duration of one star's training run"
        )

        def finish(index: int, result: StarResult) -> None:
            nonlocal completed
            completed += 1
            results[index] = result
            m_duration.observe(result.duration_seconds)
            (m_trained if result.ok else m_failed).inc()
            if result.ok:
                logger.info(
                    "[fleet] %s trained in %.1fs (%d/%d)",
                    result.star_id, result.duration_seconds, completed, total,
                )
                if self.registry is not None:
                    self.registry.publish(
                        result.star_id,
                        result.checkpoint_path,
                        metadata={"seed": result.seed, "source": "FleetTrainer"},
                    )
            else:
                logger.warning(
                    "[fleet] %s FAILED after %.1fs (%d/%d): %s",
                    result.star_id, result.duration_seconds, completed, total, result.error,
                )
            if progress is not None:
                progress(result, completed, total)

        pool = self._make_pool()
        if pool is None:
            for index, task in enumerate(tasks):
                finish(
                    index,
                    _train_star(
                        task, self.config, self._seed_for(task, index),
                        str(self.output_dir), self.validation_split,
                    ),
                )
        else:
            with pool:
                pending = {
                    pool.submit(
                        _train_star,
                        task, self.config, self._seed_for(task, index),
                        str(self.output_dir), self.validation_split,
                    ): index
                    for index, task in enumerate(tasks)
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        try:
                            result = future.result()
                        except Exception as error:  # pool infrastructure failure
                            result = StarResult(
                                star_id=tasks[index].star_id,
                                status="failed",
                                seed=self._seed_for(tasks[index], index),
                                error=f"{type(error).__name__}: {error}",
                            )
                        finish(index, result)

        report = FleetTrainingReport(
            results=list(results),  # type: ignore[arg-type]  (all slots filled)
            wall_seconds=time.perf_counter() - start,
            workers=self.workers,
            executor=self.executor,
        )
        logger.info("[fleet] %s", report.summary())
        return report
