"""Shadow-canary evaluation: gate a retrained candidate against live traffic.

The promotion gate of the continual-learning loop
(:mod:`repro.training.loop`).  A candidate detector is never trusted on the
strength of its training loss: recent recorded traffic is replayed through
*both* the live model and the candidate in shadow fleets (no alerts leave
the canary), and the candidate must clear three explicit budgets before it
may be published:

* **event-level recall** no worse than the live model's minus an epsilon —
  measured on known events when the traffic carries ground truth, and on
  deterministic **synthetic probes** (template anomalies injected into the
  recorded traffic under the canary seed) when it does not.  Probes make
  the recall gate self-contained in production, where nobody labels last
  hour's traffic: both models see the identical probed traffic, so a
  candidate that went blind fails loudly even though the night itself was
  quiet.  Recall is judged at the *score* level — the host star's shadow
  score crossing the model's own serving threshold inside the event
  window — because that is what the canary compares (each model plus the
  threshold it would serve with); alert debouncing is the same policy on
  both sides and is judged by the quiet gate;
* **quiet-star false alerts** within budget — stars that hosted no probe
  and no live alert must stay silent under the candidate;
* **score-distribution PSI** of the candidate's freshest shadow scores
  against its *own* calibration scores within budget — a candidate whose
  serving-score distribution does not match the distribution its threshold
  was fitted on is mis-calibrated no matter how good its recall looks.

Everything here is deterministic: the only randomness is the probe
placement, drawn from a seeded generator, and the shadow fleets inherit
the serving stack's bit-reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..data.anomalies import render_template
from ..streaming import AlertPolicy, FleetManager

__all__ = [
    "ShadowTraffic",
    "ProbeEvent",
    "CanaryBudget",
    "GateResult",
    "CanaryReport",
    "inject_probes",
    "score_psi",
    "evaluate_canary",
]

_MIN_PSI_SAMPLE = 16       # finite shadow scores a star needs to enter the PSI gate
_PSI_EPS = 1e-4            # probability smoothing, matching the drift monitor's sketch


@dataclass(frozen=True)
class ProbeEvent:
    """One synthetic anomaly injected into recorded traffic for the canary."""

    star: int          # flat star index across the fleet
    start: int         # first affected tick (inclusive)
    end: int           # last affected tick (inclusive)
    kind: str
    amplitude: float


@dataclass(frozen=True)
class ShadowTraffic:
    """A replayable slice of recent serving traffic.

    ``rows`` is the raw exposure block ``(T, num_shards, num_variates)``
    exactly as the live fleet ingested it (NaNs mark missing photometry);
    ``timestamps`` the matching per-tick times (NaN entries mean "let the
    stream timeline advance by cadence").  ``events`` optionally carries
    ground truth — any objects exposing ``star``/``start``/``end`` — and
    ``quiet_stars`` the stars known to host nothing; both are derived
    automatically (synthetic probes, live-model silence) when absent.
    """

    rows: np.ndarray
    timestamps: np.ndarray | None = None
    events: tuple = ()
    quiet_stars: np.ndarray | None = None

    @property
    def num_ticks(self) -> int:
        return int(self.rows.shape[0])

    @property
    def num_shards(self) -> int:
        return int(self.rows.shape[1])

    @property
    def num_variates(self) -> int:
        return int(self.rows.shape[2])

    @property
    def num_stars(self) -> int:
        return self.num_shards * self.num_variates

    @classmethod
    def from_scenario(cls, scenario) -> "ShadowTraffic":
        """Wrap a built :class:`~repro.simulation.Scenario` night as traffic."""
        return cls(
            rows=np.asarray(scenario.exposures, dtype=np.float64),
            timestamps=np.asarray(scenario.timestamps, dtype=np.float64),
            events=tuple(scenario.events),
            quiet_stars=np.asarray(scenario.quiet_stars, dtype=np.int64),
        )


@dataclass(frozen=True)
class CanaryBudget:
    """Explicit promotion budgets for :func:`evaluate_canary`.

    ``recall_epsilon`` is how much event-level recall the candidate may
    give up relative to the live model; ``quiet_false_alerts`` the number
    of candidate alerts tolerated on quiet stars; ``psi_budget`` the
    maximum per-star PSI between the candidate's freshest shadow scores
    (the trailing ``psi_window`` ticks) and its own calibration scores.
    ``warmup_ticks`` excludes the swap-seam transient at the head of the
    shadow replay from every gate, and ``min_ticks`` rejects traffic too
    thin to judge.  The ``probe_*`` knobs shape the synthetic recall
    probes injected when the traffic has no ground truth.
    """

    recall_epsilon: float = 0.05
    quiet_false_alerts: int = 2
    psi_budget: float = 0.5
    min_ticks: int = 64
    warmup_ticks: int = 32
    grace: int = 12
    psi_window: int = 64
    num_probes: int = 3
    probe_length: int = 12
    probe_amplitude: float = 12.0    # in units of the host star's traffic std
    probe_kind: str = "flare"


@dataclass(frozen=True)
class GateResult:
    """One canary gate's verdict: the measured value against its budget."""

    name: str
    passed: bool
    value: float
    budget: float
    detail: str = ""


@dataclass(frozen=True)
class CanaryReport:
    """Everything :func:`evaluate_canary` measured, gate by gate."""

    gates: tuple
    live_recall: float
    candidate_recall: float
    quiet_false_alerts: int
    psi_max: float
    num_ticks: int
    num_events: int
    probes_injected: bool
    live_alerts: int = 0
    candidate_alerts: int = 0

    @property
    def passed(self) -> bool:
        return all(gate.passed for gate in self.gates)

    def gate(self, name: str) -> GateResult:
        for gate in self.gates:
            if gate.name == name:
                return gate
        raise KeyError(f"no canary gate named {name!r}")

    def format(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        parts = [
            f"[{'+' if gate.passed else '-'}] {gate.name}: "
            f"{gate.value:.4g} vs budget {gate.budget:.4g}"
            for gate in self.gates
        ]
        return f"canary {verdict} ({self.num_ticks} ticks) " + "; ".join(parts)

    def summary(self) -> dict:
        """Flat JSON-safe summary for structured log events and benchmarks."""
        return {
            "passed": self.passed,
            "live_recall": round(self.live_recall, 4),
            "candidate_recall": round(self.candidate_recall, 4),
            "quiet_false_alerts": self.quiet_false_alerts,
            "psi_max": round(self.psi_max, 4),
            "num_ticks": self.num_ticks,
            "num_events": self.num_events,
            "probes_injected": self.probes_injected,
            "failed_gates": [gate.name for gate in self.gates if not gate.passed],
        }


def inject_probes(
    traffic: ShadowTraffic, budget: CanaryBudget, seed: int
) -> ShadowTraffic:
    """Recorded traffic with synthetic recall probes injected under ``seed``.

    Deterministically picks ``num_probes`` distinct host stars and start
    ticks (past the warm-up seam, clear of the tail grace window), renders
    the probe template at ``probe_amplitude`` times the host's observed
    traffic scatter (floored at 0.25 mag so probes on near-constant stars
    stay visible against a fleet-wide threshold) and adds it onto the
    recorded rows.  Probes are deliberately *sharp*: the detector tracks
    smooth astrophysical ramps well, so its response concentrates at the
    onset discontinuity — exactly the shape the score-level recall gate
    measures.  Ticks that were missing stay missing — the probe inherits
    the traffic's gaps, which is exactly what the alert grace window is
    for.
    """
    rows = np.asarray(traffic.rows, dtype=np.float64).copy()
    ticks, shards, variates = rows.shape
    first = budget.warmup_ticks
    last = ticks - budget.probe_length - budget.grace
    if last <= first:
        raise ValueError(
            f"traffic too short for probes: {ticks} ticks cannot fit a "
            f"{budget.probe_length}-tick probe past warmup {budget.warmup_ticks} "
            f"with grace {budget.grace}"
        )
    num_stars = shards * variates
    count = min(budget.num_probes, num_stars)
    rng = np.random.default_rng(seed)
    hosts = np.sort(rng.choice(num_stars, size=count, replace=False))
    starts = rng.integers(first, last, size=count)
    template = render_template(budget.probe_kind, budget.probe_length, 1.0)
    events = []
    for star, start in zip(hosts.tolist(), starts.tolist()):
        shard, variate = divmod(star, variates)
        observed = rows[:, shard, variate]
        scale = float(np.nanstd(observed)) if np.isfinite(observed).any() else 0.0
        amplitude = budget.probe_amplitude * max(scale, 0.25)
        stop = start + budget.probe_length
        rows[start:stop, shard, variate] += amplitude * template
        events.append(
            ProbeEvent(
                star=star, start=int(start), end=int(stop) - 1,
                kind=budget.probe_kind, amplitude=amplitude,
            )
        )
    return replace(traffic, rows=rows, events=tuple(events), quiet_stars=None)


def score_psi(
    reference: np.ndarray,
    shadow: np.ndarray,
    *,
    num_bins: int = 5,
    exclude: np.ndarray | None = None,
) -> float:
    """Max per-star PSI of shadow scores against calibration scores.

    ``reference`` is the candidate's own calibration score matrix —
    ``(Tc, N)`` per variate of the reference field (tiled across shards
    like the drift monitor's reference) or ``(Tc, S*N)`` per star;
    ``shadow`` the canary's score block ``(T, S, N)``.  ``exclude``
    optionally masks shadow cells (``(T, S*N)`` boolean, True = drop) —
    probe ticks must not count as distribution shift.  Stars with fewer
    than 16 finite shadow scores are skipped: too thin to judge either
    way.  The default binning is deliberately coarser than the serving
    drift monitor's: canary windows hold tens of scores per star, where
    the sampling-noise floor of PSI grows with ``(num_bins - 1)`` times
    the inverse sample sizes, and a genuinely mis-calibrated candidate
    clears PSI 1.0 under any binning.
    """
    reference = np.asarray(reference, dtype=np.float64)
    if reference.ndim == 1:
        reference = reference[:, None]
    shadow = np.asarray(shadow, dtype=np.float64)
    ticks, shards, variates = shadow.shape
    flat = shadow.reshape(ticks, shards * variates)
    worst = 0.0
    for star in range(shards * variates):
        ref = reference[:, star % reference.shape[1]]
        ref = ref[np.isfinite(ref)]
        live = flat[:, star]
        if exclude is not None:
            live = live[~exclude[:, star]]
        live = live[np.isfinite(live)]
        if ref.size < _MIN_PSI_SAMPLE or live.size < _MIN_PSI_SAMPLE:
            continue
        edges = np.quantile(ref, np.linspace(0.0, 1.0, num_bins + 1)[1:-1])
        edges = np.unique(edges)
        if edges.size < 1:
            continue
        ref_counts = np.bincount(np.searchsorted(edges, ref), minlength=edges.size + 1)
        live_counts = np.bincount(np.searchsorted(edges, live), minlength=edges.size + 1)
        p = (ref_counts + _PSI_EPS) / (ref_counts.sum() + _PSI_EPS * ref_counts.size)
        q = (live_counts + _PSI_EPS) / (live_counts.sum() + _PSI_EPS * live_counts.size)
        worst = max(worst, float(np.sum((q - p) * np.log(q / p))))
    return worst


def _shadow_replay(detector, threshold, traffic, policy, backend):
    """Replay the traffic through one shadow fleet; scores plus alerts."""
    fleet = FleetManager(
        detector,
        num_shards=traffic.num_shards,
        alert_policy=AlertPolicy(
            min_consecutive=policy.min_consecutive, cooldown=policy.cooldown
        ),
        threshold=threshold,
        backend=backend,
    )
    timestamps = traffic.timestamps
    scores = np.empty((traffic.num_ticks, traffic.num_shards, traffic.num_variates))
    alerts = []
    for tick in range(traffic.num_ticks):
        timestamp = None
        if timestamps is not None and np.isfinite(timestamps[tick]):
            timestamp = float(timestamps[tick])
        result = fleet.step(traffic.rows[tick], timestamp)
        scores[tick] = result.scores
        alerts.extend(result.alerts)
    return scores, alerts


def _recall(events, scores, threshold: float, warm: int, grace: int) -> float:
    """Fraction of events whose host star's score crosses ``threshold``.

    Judged at the score level inside ``[start, end + grace]`` (clipped to
    the post-warm-up range): the canary compares each model *with the
    threshold it would serve at*, and the detector's response to a
    transient concentrates at its onset — one or two ticks the alert
    debouncer may legitimately absorb on both sides.
    """
    if not events:
        return 1.0
    flat = np.asarray(scores, dtype=np.float64)
    flat = flat.reshape(flat.shape[0], -1)
    ticks = flat.shape[0]
    hit = 0
    for event in events:
        star, start, end = int(event.star), int(event.start), int(event.end)
        window = flat[max(start, warm): min(end + grace + 1, ticks), star]
        window = window[np.isfinite(window)]
        if window.size and float(window.max()) > threshold:
            hit += 1
    return hit / len(events)


def evaluate_canary(
    live_detector,
    candidate_detector,
    traffic: ShadowTraffic,
    *,
    live_threshold: float,
    candidate_threshold: float,
    candidate_calibration: np.ndarray,
    budget: CanaryBudget | None = None,
    seed: int = 0,
    alert_policy: AlertPolicy | None = None,
    backend=None,
) -> CanaryReport:
    """Shadow-score a candidate against the live model and gate promotion.

    Replays ``traffic`` through two fresh shadow fleets — the live model at
    the current serving ``live_threshold``, the candidate at its own
    ``candidate_threshold`` — and measures the three canary gates described
    in the module docstring.  ``candidate_calibration`` is the score matrix
    the candidate's threshold was fitted on; ``seed`` controls probe
    placement when the traffic has no ground-truth events.  Deterministic:
    identical inputs produce a bit-identical report.
    """
    budget = budget or CanaryBudget()
    policy = alert_policy or AlertPolicy()
    gates = []
    ticks = traffic.num_ticks
    gates.append(
        GateResult(
            name="traffic",
            passed=ticks >= budget.min_ticks,
            value=float(ticks),
            budget=float(budget.min_ticks),
            detail="recorded ticks available to the shadow replay",
        )
    )
    probes_injected = False
    if not traffic.events:
        traffic = inject_probes(traffic, budget, seed)
        probes_injected = True
    events = list(traffic.events)

    live_scores, live_alerts = _shadow_replay(
        live_detector, live_threshold, traffic, policy, backend
    )
    cand_scores, cand_alerts = _shadow_replay(
        candidate_detector, candidate_threshold, traffic, policy, backend
    )
    warm = budget.warmup_ticks
    live_alerts = [alert for alert in live_alerts if alert.step >= warm]
    cand_alerts = [alert for alert in cand_alerts if alert.step >= warm]

    live_recall = _recall(events, live_scores, live_threshold, warm, budget.grace)
    cand_recall = _recall(events, cand_scores, candidate_threshold, warm, budget.grace)
    gates.append(
        GateResult(
            name="recall",
            passed=cand_recall >= live_recall - budget.recall_epsilon,
            value=cand_recall,
            budget=live_recall - budget.recall_epsilon,
            detail=f"event-level recall over {len(events)} event(s), "
                   f"live={live_recall:.3f}",
        )
    )

    num_stars = traffic.num_stars
    if traffic.quiet_stars is not None:
        quiet = np.zeros(num_stars, dtype=bool)
        quiet[np.asarray(traffic.quiet_stars, dtype=np.int64)] = True
    else:
        # Stars the live model considered quiet: no probe, no live alert.
        quiet = np.ones(num_stars, dtype=bool)
        for alert in live_alerts:
            quiet[alert.star] = False
    for event in events:
        quiet[int(event.star)] = False
    quiet_violations = sum(1 for alert in cand_alerts if quiet[alert.star])
    gates.append(
        GateResult(
            name="quiet",
            passed=quiet_violations <= budget.quiet_false_alerts,
            value=float(quiet_violations),
            budget=float(budget.quiet_false_alerts),
            detail=f"candidate alerts on {int(quiet.sum())} quiet star(s)",
        )
    )

    # PSI judges the freshest traffic only: the candidate was calibrated on
    # the most recent scores, and promotion cares whether that calibration
    # still describes what the fleet is serving *now*.
    window = max(budget.psi_window, _MIN_PSI_SAMPLE)
    tail = slice(max(warm, ticks - window), ticks)
    exclude = np.zeros((ticks, num_stars), dtype=bool)
    for event in events:
        exclude[int(event.start):int(event.end) + budget.grace + 1, int(event.star)] = True
    psi_max = score_psi(
        candidate_calibration, cand_scores[tail], exclude=exclude[tail]
    )
    gates.append(
        GateResult(
            name="psi",
            passed=psi_max <= budget.psi_budget,
            value=psi_max,
            budget=budget.psi_budget,
            detail="max per-star PSI of trailing shadow scores vs own calibration",
        )
    )

    return CanaryReport(
        gates=tuple(gates),
        live_recall=live_recall,
        candidate_recall=cand_recall,
        quiet_false_alerts=int(quiet_violations),
        psi_max=psi_max,
        num_ticks=ticks,
        num_events=len(events),
        probes_injected=probes_injected,
        live_alerts=len(live_alerts),
        candidate_alerts=len(cand_alerts),
    )
