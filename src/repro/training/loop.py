"""Closed-loop continual learning: drift trips → retrain → canary → promote.

The integration layer over everything the previous subsystems built.  A
:class:`ContinualLearningController` wraps a serving
:class:`~repro.streaming.FleetManager` and closes the MLOps loop that the
paper's unattended survey deployment needs:

1. **watch** — every tick it reads the fleet's
   :class:`~repro.obs.DriftMonitor` (per-star PSI/KS trips against the
   live model's calibration snapshot) and, when attached, an
   :class:`~repro.obs.SLOMonitor`'s error-budget burn;
2. **trigger** — enough tripped stars (or a newly burning SLO) outside the
   cooldown starts a retrain cycle on the recorded traffic ring;
3. **retrain** — a budgeted synchronous fine-tune through
   :class:`~repro.training.FleetTrainer` (serial executor, one task),
   warm-started from the live registry artifact, on the recent traffic of
   the worst-drifting shard; the trailing ``calibration_ticks`` are held
   back and the candidate's threshold is re-fit on them with the paper's
   POT estimator;
4. **canary** — the recorded ring is replayed through the live model and
   the candidate in shadow (:func:`~repro.training.canary.evaluate_canary`)
   and promotion is gated on explicit budgets: event-level recall no worse
   than live minus epsilon (synthetic probes when the traffic carries no
   ground truth), quiet-star false alerts within budget, and the
   candidate's shadow-score PSI against its own calibration within budget;
5. **promote** — only a passing candidate is published to the
   :class:`~repro.training.ModelRegistry` (with a fresh drift-reference
   sidecar fitted on its calibration scores under the live monitor's
   policy, and its threshold in the version metadata) and ``deploy``ed
   into the live fleet with the threshold carried across the swap;
6. **watch window** — for ``watch_ticks`` after a promotion, any new drift
   trip or newly burning SLO rolls the fleet back to the previous version
   (model, threshold and drift reference all restored from the registry).

Every decision — trigger, retrain, canary pass/fail, promote, rollback,
watch-clear — is recorded as a structured :class:`LoopEvent`, logged on
``repro.training.loop`` and counted on the metrics registry
(``continual_*_total``).  The whole loop is deterministic under its seed:
retrain seeds derive from ``seed + cycle``, canary probes from the same,
and the SLO feed uses data-driven windows only (tick latency is accounted
as in-budget), so two runs over the same scenario produce bit-identical
decisions, thresholds and traces.

The controller exposes ``step(rows, timestamp)`` with the fleet's own
contract, so anything that drives a fleet — including
:class:`~repro.simulation.ReplayHarness` — can drive the closed loop
unchanged.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..evaluation import pot_threshold
from ..obs.drift import calibrate_drift_monitor
from ..obs.metrics import get_registry
from .canary import CanaryBudget, ShadowTraffic, evaluate_canary
from .fleet import FleetTrainer, StarTask

__all__ = ["LoopEvent", "ContinualLearningController"]

logger = logging.getLogger("repro.training.loop")


@dataclass(frozen=True)
class LoopEvent:
    """One structured decision record of the continual-learning loop."""

    step: int          # fleet step at which the decision was taken
    kind: str          # baseline | trigger | retrain | retrain_failed |
    #                    canary_pass | canary_fail | promote | rollback | watch_clear
    detail: dict = field(default_factory=dict)

    def format(self) -> str:
        parts = " ".join(f"{key}={self.detail[key]}" for key in sorted(self.detail))
        return f"[step {self.step}] {self.kind} {parts}".rstrip()


class ContinualLearningController:
    """Drift-triggered retrain → shadow canary → gated promote → rollback.

    Parameters
    ----------
    fleet:
        The live serving :class:`~repro.streaming.FleetManager`.  Must run
        ``threshold_mode="global"`` and carry a *fitted*
        :class:`~repro.obs.DriftMonitor` — drift trips are the loop's
        primary trigger, and the candidate's drift sidecar is calibrated
        under the same policy.
    registry:
        The :class:`~repro.training.ModelRegistry` versions are published
        to and deployed from.  When the model name has no published
        versions yet, the fleet's current detector is published as the
        baseline (with its serving threshold and drift reference), so warm
        starts and rollbacks always have a registry identity to resolve.
    model_name:
        Registry name the loop publishes under.
    workdir:
        Scratch directory for retrain checkpoints (one subdirectory per
        cycle).
    retrain_config:
        :class:`~repro.core.AeroConfig` for the fine-tune; defaults to the
        live detector's own config.
    budget:
        :class:`~repro.training.canary.CanaryBudget` promotion gates.
    slo:
        Optional :class:`~repro.obs.SLOMonitor`.  The controller feeds it
        deterministically — every tick accounted as latency-in-budget, the
        alert-rate and refit windows fed from the tick's actual results —
        so a burning data SLO can trigger retrains (and roll back a fresh
        promotion) without wall-clock reads entering the decision loop.
    history_ticks / min_history_ticks:
        Size of the recorded raw-traffic ring, and how much of it a
        retrain needs before it will run (triggers arriving earlier are
        recorded as deferred).
    calibration_ticks:
        Trailing ticks of the ring held back from the fine-tune; the
        candidate's POT threshold and drift reference are fitted on its
        scores over them.
    min_tripped_stars:
        Drift trips needed to trigger a cycle.
    cooldown_ticks:
        Quiet period after any concluded cycle (pass or fail) before the
        next trigger is honoured.
    watch_ticks:
        Post-promotion watch window; drift re-trips or newly burning SLOs
        inside it roll back to the previous version.
    pot_q:
        Tail probability for the candidate's POT threshold re-fit.
    seed:
        Master seed: cycle ``c`` retrains with ``seed + c`` and draws its
        canary probes from the same stream.
    """

    def __init__(
        self,
        fleet,
        registry,
        model_name: str,
        workdir: str | Path,
        *,
        retrain_config=None,
        budget: CanaryBudget | None = None,
        slo=None,
        history_ticks: int = 256,
        min_history_ticks: int = 96,
        calibration_ticks: int = 48,
        min_tripped_stars: int = 1,
        cooldown_ticks: int = 64,
        watch_ticks: int = 64,
        pot_q: float = 5e-3,
        seed: int = 0,
        canary_backend=None,
        metrics=None,
    ):
        if fleet.drift_monitor is None:
            raise ValueError(
                "the controller needs a fleet with a fitted DriftMonitor attached — "
                "drift trips are its primary retrain trigger"
            )
        if getattr(fleet, "threshold_mode", "global") != "global":
            raise ValueError(
                "the continual loop serves global-threshold fleets; per-star "
                "adaptive fleets re-calibrate continuously and do not need it"
            )
        if history_ticks < 1 or min_history_ticks < 1:
            raise ValueError("history_ticks and min_history_ticks must be positive")
        if min_history_ticks > history_ticks:
            raise ValueError("min_history_ticks cannot exceed history_ticks")
        if calibration_ticks < 32:
            raise ValueError(
                "calibration_ticks must be at least 32: the drift reference needs "
                "enough held-back scores per star to fit its sketch"
            )
        if watch_ticks < 1 or cooldown_ticks < 0:
            raise ValueError("watch_ticks must be positive, cooldown_ticks non-negative")
        self.fleet = fleet
        self.registry = registry
        self.model_name = str(model_name)
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.retrain_config = (
            fleet.detector.config if retrain_config is None else retrain_config
        )
        self.budget = budget or CanaryBudget()
        self.slo = slo
        self.history_ticks = int(history_ticks)
        self.min_history_ticks = int(min_history_ticks)
        self.calibration_ticks = int(calibration_ticks)
        self.min_tripped_stars = int(min_tripped_stars)
        self.cooldown_ticks = int(cooldown_ticks)
        self.watch_ticks = int(watch_ticks)
        self.pot_q = float(pot_q)
        self.seed = int(seed)
        self.canary_backend = canary_backend

        metrics = get_registry() if metrics is None else metrics
        self._m_triggers = metrics.counter(
            "continual_triggers_total", "Retrain cycles triggered by the continual loop"
        )
        self._m_canary_pass = metrics.counter(
            "continual_canary_pass_total", "Candidates that cleared every canary gate"
        )
        self._m_canary_fail = metrics.counter(
            "continual_canary_fail_total", "Candidates rejected by a canary gate"
        )
        self._m_promotions = metrics.counter(
            "continual_promotions_total", "Candidate versions promoted into the live fleet"
        )
        self._m_rollbacks = metrics.counter(
            "continual_rollbacks_total", "Watch-window rollbacks to the previous version"
        )

        self.events: list[LoopEvent] = []
        self._rows: deque = deque(maxlen=self.history_ticks)
        self._times: deque = deque(maxlen=self.history_ticks)
        self._cycle = 0
        self._cooldown_until = -1
        self._watch_until: int | None = None
        self._watch_baseline_trips = 0
        self._watch_baseline_burning: frozenset = frozenset()
        self._rollback_version: int | None = None
        self._rollback_threshold: float | None = None
        self._live_version = self._ensure_baseline()

    # ------------------------------------------------------------------
    # serving surface
    # ------------------------------------------------------------------
    def step(self, rows: np.ndarray, timestamp: float | None = None):
        """Serve one tick through the live fleet and run the loop's watch.

        Same contract as :meth:`~repro.streaming.FleetManager.step`
        (returns the fleet's ``FleetStepResult``), so replay harnesses and
        ingest runtimes drive the closed loop exactly like a bare fleet.
        """
        result = self.fleet.step(rows, timestamp)
        self._rows.append(np.array(rows, dtype=np.float64, copy=True))
        self._times.append(np.nan if timestamp is None else float(timestamp))
        if self.slo is not None:
            # Deterministic SLO feed: decisions must not depend on wall
            # clock, so every tick is accounted inside the latency budget
            # and only the data-driven windows (alert rate, refit
            # outcomes) can burn.
            self.slo.observe_tick(
                0.0,
                result,
                refits=self.fleet.threshold_refits,
                refit_failures=self.fleet.threshold_refit_failures,
            )
        self._observe(int(result.step))
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def live_version(self) -> int:
        """The registry version currently serving in the fleet."""
        return self._live_version

    @property
    def cycles(self) -> int:
        """Retrain cycles started so far."""
        return self._cycle

    @property
    def watching(self) -> bool:
        """Whether a fresh promotion is inside its rollback watch window."""
        return self._watch_until is not None

    def decision_counts(self) -> dict:
        """Event-kind histogram of every decision taken so far."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def _observe(self, step: int) -> None:
        if self._watch_until is not None:
            self._watch(step)
            return
        if step < self._cooldown_until:
            return
        tripped = int(self.fleet.drift_monitor.tripped_stars)
        burning = sorted(self.slo.burning()) if self.slo is not None else []
        if tripped < self.min_tripped_stars and not burning:
            return
        if len(self._rows) < self.min_history_ticks:
            self._m_triggers.inc()
            self._record(
                step, "trigger",
                action="deferred", tripped_stars=tripped, slo_burning=burning,
                history_ticks=len(self._rows),
            )
            logger.warning(
                "[loop] trigger deferred at step=%d: %d/%d history ticks recorded",
                step, len(self._rows), self.min_history_ticks,
            )
            self._cooldown_until = step + (self.min_history_ticks - len(self._rows))
            return
        self._run_cycle(step, tripped, burning)

    def _run_cycle(self, step: int, tripped: int, burning: list) -> None:
        self._cycle += 1
        cycle = self._cycle
        self._m_triggers.inc()
        self._record(
            step, "trigger",
            action="retrain", cycle=cycle, tripped_stars=tripped, slo_burning=burning,
        )
        logger.warning(
            "[loop] trigger step=%d cycle=%d tripped_stars=%d slo_burning=%s",
            step, cycle, tripped, burning,
        )
        rows = np.stack(self._rows)                       # (H, S, N)
        times = np.asarray(self._times, dtype=np.float64)
        outcome = self._train_candidate(step, cycle, rows, times)
        if outcome is None:
            self._cooldown_until = step + self.cooldown_ticks
            return
        candidate, threshold, calibration_scores = outcome
        traffic = ShadowTraffic(rows=rows, timestamps=times)
        report = evaluate_canary(
            self.fleet.detector,
            candidate,
            traffic,
            live_threshold=float(self.fleet.threshold),
            candidate_threshold=threshold,
            candidate_calibration=calibration_scores,
            budget=self.budget,
            seed=self.seed + cycle,
            alert_policy=self.fleet.alert_policy,
            backend=self.canary_backend,
        )
        if not report.passed:
            self._m_canary_fail.inc()
            self._record(step, "canary_fail", cycle=cycle, **report.summary())
            logger.warning("[loop] step=%d cycle=%d %s", step, cycle, report.format())
            self._cooldown_until = step + self.cooldown_ticks
            return
        self._m_canary_pass.inc()
        self._record(step, "canary_pass", cycle=cycle, **report.summary())
        logger.warning("[loop] step=%d cycle=%d %s", step, cycle, report.format())
        self._promote(step, cycle, candidate, threshold, calibration_scores)

    def _train_candidate(self, step: int, cycle: int, rows: np.ndarray, times: np.ndarray):
        """Fine-tune a candidate on recorded traffic; ``None`` on failure.

        Returns ``(candidate_detector, candidate_threshold,
        calibration_scores)``.  Overridable seam: tests monkeypatch this to
        produce deliberately broken candidates and prove the canary
        rejects them.
        """
        from ..core.detector import AeroDetector

        shard = self._pick_shard()
        per_shard = [
            self._impute(rows[:, s, :]) for s in range(self.fleet.num_shards)
        ]
        series = per_shard[shard]
        length = series.shape[0]
        held_back = min(self.calibration_ticks, length // 2)
        timestamps = times if np.isfinite(times).all() else None
        train_series = series[: length - held_back]
        train_times = None if timestamps is None else timestamps[: length - held_back]
        seed = self.seed + cycle
        warm_start = self.registry.get(self.model_name, self._live_version).artifact_path
        trainer = FleetTrainer(
            self.retrain_config,
            self.workdir / f"cycle-{cycle:03d}",
            workers=1,
            executor="serial",
        )
        task = StarTask(
            star_id=f"{self.model_name}-cycle{cycle:03d}",
            series=train_series,
            timestamps=train_times,
            seed=seed,
            warm_start=warm_start,
        )
        result = trainer.train([task]).results[0]
        if not result.ok:
            self._record(step, "retrain_failed", cycle=cycle, error=str(result.error))
            logger.warning(
                "[loop] retrain failed step=%d cycle=%d: %s", step, cycle, result.error
            )
            return None
        candidate = AeroDetector.load(result.checkpoint_path)
        # The candidate was fine-tuned on the worst shard but serves every
        # shard, so its threshold and drift reference are calibrated on the
        # trailing ticks of *all* recorded traffic: each shard's full
        # history is scored (full context, no warm-up head in the tail) and
        # the held-back block is assembled per star, ``(Tc, S*N)``.
        calibration_scores = np.hstack(
            [
                candidate.score(block, timestamps)[length - held_back:]
                for block in per_shard
            ]
        )
        finite = calibration_scores[np.isfinite(calibration_scores)]
        if finite.size == 0:
            self._record(step, "retrain_failed", cycle=cycle, error="no finite calibration scores")
            logger.warning("[loop] retrain produced no finite calibration scores (cycle %d)", cycle)
            return None
        threshold = float(pot_threshold(finite, q=self.pot_q))
        self._record(
            step, "retrain",
            cycle=cycle, shard=shard, seed=seed,
            train_ticks=int(train_series.shape[0]),
            calibration_ticks=int(held_back),
            threshold=threshold,
            duration_seconds=round(result.duration_seconds, 3),
        )
        return candidate, threshold, calibration_scores

    def _pick_shard(self) -> int:
        """The shard to retrain on: most tripped stars, then highest PSI."""
        monitor = self.fleet.drift_monitor
        shards = self.fleet.num_shards
        variates = self.fleet.num_variates
        tripped = monitor.tripped.reshape(shards, variates).sum(axis=1)
        if tripped.max() > 0:
            return int(tripped.argmax())
        psi, _ks = monitor.divergence()
        psi = np.where(np.isfinite(psi), psi, 0.0)     # unmeasured stars carry no vote
        per_shard = psi.reshape(shards, variates).sum(axis=1)
        return int(per_shard.argmax())

    def _promote(self, step, cycle, candidate, threshold, calibration_scores) -> None:
        # A fresh drift reference fitted on the candidate's own calibration
        # scores under the live monitor's policy: after the deploy the
        # fleet watches the new model against its own snapshot.
        monitor = calibrate_drift_monitor(
            calibration_scores,
            num_stars=self.fleet.num_stars,
            **self.fleet.drift_monitor.settings(),
        )
        previous_version = self._live_version
        previous_threshold = float(self.fleet.threshold)
        published = self.registry.publish(
            self.model_name,
            candidate,
            metadata={
                "threshold": threshold,
                "cycle": cycle,
                "trigger_step": step,
                "seed": self.seed + cycle,
                "parent_version": previous_version,
                "source": "continual-loop",
            },
            drift_reference=monitor,
        )
        self.registry.deploy(
            self.model_name, self.fleet, version=published.version, threshold=threshold
        )
        self._live_version = published.version
        self._m_promotions.inc()
        self._record(
            step, "promote",
            cycle=cycle, version=published.version, threshold=threshold,
            previous_version=previous_version,
        )
        logger.warning(
            "[loop] promoted %s at step=%d threshold=%.6g (watch %d ticks)",
            published.label, step, threshold, self.watch_ticks,
        )
        self._watch_until = step + self.watch_ticks
        self._watch_baseline_trips = int(self.fleet.drift_monitor.trips_total)
        self._watch_baseline_burning = (
            frozenset(self.slo.burning()) if self.slo is not None else frozenset()
        )
        self._rollback_version = previous_version
        self._rollback_threshold = previous_threshold

    def _watch(self, step: int) -> None:
        retripped = (
            int(self.fleet.drift_monitor.trips_total) > self._watch_baseline_trips
        )
        burning = (
            sorted(set(self.slo.burning()) - self._watch_baseline_burning)
            if self.slo is not None
            else []
        )
        if retripped or burning:
            self._rollback(step, retripped, burning)
            return
        if step >= self._watch_until:
            self._record(step, "watch_clear", version=self._live_version)
            logger.warning(
                "[loop] watch window clear at step=%d: v%04d stays live",
                step, self._live_version,
            )
            self._end_watch(step)

    def _rollback(self, step: int, retripped: bool, burning: list) -> None:
        version = self._rollback_version
        self.registry.deploy(
            self.model_name, self.fleet,
            version=version, threshold=self._rollback_threshold,
        )
        rolled_back = self._live_version
        self._live_version = version
        self._m_rollbacks.inc()
        self._record(
            step, "rollback",
            version=version, rolled_back_version=rolled_back,
            drift_retripped=retripped, slo_burning=burning,
        )
        logger.warning(
            "[loop] rolled back v%04d -> v%04d at step=%d (drift_retripped=%s slo=%s)",
            rolled_back, version, step, retripped, burning,
        )
        self._end_watch(step)

    def _end_watch(self, step: int) -> None:
        self._watch_until = None
        self._watch_baseline_trips = 0
        self._watch_baseline_burning = frozenset()
        self._rollback_version = None
        self._rollback_threshold = None
        self._cooldown_until = step + self.cooldown_ticks

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _ensure_baseline(self) -> int:
        versions = self.registry.versions(self.model_name)
        if versions:
            return versions[-1]
        published = self.registry.publish(
            self.model_name,
            self.fleet.detector,
            metadata={"threshold": float(self.fleet.threshold), "source": "continual-loop-baseline"},
            calibration=self.fleet.threshold_state(),
            drift_reference=self.fleet.drift_state(),
        )
        if hasattr(self.fleet, "model_version"):
            self.fleet.model_version = published.label
        self._record(0, "baseline", version=published.version)
        logger.info("[loop] published baseline %s", published.label)
        return published.version

    def _record(self, step: int, kind: str, **detail) -> None:
        self.events.append(LoopEvent(step=int(step), kind=kind, detail=detail))

    @staticmethod
    def _impute(series: np.ndarray) -> np.ndarray:
        """Deterministic forward-fill (then backfill) of missing photometry.

        The fine-tune and calibration splits need dense rows; gaps inherit
        the last seen magnitude, leading gaps the first one.  Columns with
        no finite samples at all fall back to zero.
        """
        filled = np.array(series, dtype=np.float64, copy=True)
        for column in range(filled.shape[1]):
            col = filled[:, column]
            finite = np.isfinite(col)
            if not finite.any():
                filled[:, column] = 0.0
                continue
            index = np.where(finite, np.arange(col.size), 0)
            np.maximum.accumulate(index, out=index)
            col = col[index]
            first = int(np.argmax(finite))
            col[:first] = col[first]
            filled[:, column] = col
        return filled
