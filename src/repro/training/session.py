"""Resumable two-stage training sessions (Algorithm 1, fleet-scale edition).

:class:`TrainingSession` is the training engine behind
:class:`repro.core.AeroTrainer` / :meth:`repro.core.AeroDetector.fit`.  It
runs the same two-stage loop — stage 1 fits the temporal reconstruction
module, stage 2 freezes it and fits the concurrent-noise module — but adds
the machinery a fleet of thousands of per-star models needs:

* **epoch-level checkpoint/resume** — after every epoch the full training
  state (model weights, optimizer moments, early-stopping state, RNG bit
  state, loss history) can be serialized into one ``.npz`` artifact; a
  resumed session continues *bit-identically*, as if it had never stopped;
* **validation-split early stopping** — an optional chronological holdout of
  the training windows whose loss drives early stopping instead of the
  training loss;
* **best-weight restore** — each stage ends by restoring the weights of its
  best-loss epoch rather than keeping the last (post-plateau) epoch;
* **warm starting** — a session can initialise its model from an existing
  detector checkpoint and fine-tune, the cheap refresh path for drifted
  stars;
* **budgeted stepping** — ``run(epoch_budget=k)`` trains at most ``k``
  epochs and returns, so schedulers can time-slice training work.

Everything logs through the namespaced ``repro.training`` logger so
fleet-scale runs can be filtered and captured per subsystem.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..nn import Adam, Tensor, clip_grad_norm, mse_loss, no_grad
from ..nn.serialization import load_arrays, save_arrays
from ..obs.metrics import get_registry
from ..obs.tracing import trace

if TYPE_CHECKING:  # pragma: no cover - imports only for type checkers
    from ..core.config import AeroConfig
    from ..core.model import AeroModel
    from ..data.windows import WindowDataset
    from ..nn import Module

__all__ = ["TrainingHistory", "EarlyStopping", "TrainingSession"]

logger = logging.getLogger("repro.training.session")

_verbose_handler: logging.Handler | None = None


def _ensure_verbose_output() -> None:
    """Make ``verbose=True`` visible when the application configured no logging.

    The historical behaviour was a bare ``print`` per epoch; after the move
    to the ``repro.training`` logger, a user who never touches the
    ``logging`` module would silently lose that output (INFO records die in
    the last-resort WARNING handler).  If — and only if — neither the
    ``repro.training`` logger nor the root logger has any handler, attach a
    minimal stderr handler once.  Applications that do configure logging
    keep full control: their handlers and levels are respected untouched.
    """
    global _verbose_handler
    namespace = logging.getLogger("repro.training")
    if _verbose_handler is not None or namespace.handlers or logging.getLogger().handlers:
        return
    _verbose_handler = logging.StreamHandler()
    _verbose_handler.setFormatter(logging.Formatter("%(message)s"))
    namespace.addHandler(_verbose_handler)
    if namespace.getEffectiveLevel() > logging.INFO:
        namespace.setLevel(logging.INFO)


@dataclass
class TrainingHistory:
    """Per-epoch losses of both training stages.

    ``stage*_losses`` are the training losses (mean over batches, matching
    the optimizer's objective); ``stage*_val_losses`` are populated only when
    the session holds out a validation split.  ``stage*_best_epoch`` is the
    1-based epoch whose monitored loss was best — the epoch whose weights
    the stage restored — or ``0`` when the stage did not run.
    """

    stage1_losses: list[float] = field(default_factory=list)
    stage2_losses: list[float] = field(default_factory=list)
    stage1_val_losses: list[float] = field(default_factory=list)
    stage2_val_losses: list[float] = field(default_factory=list)
    stage1_best_epoch: int = 0
    stage2_best_epoch: int = 0

    @property
    def stage1_epochs(self) -> int:
        return len(self.stage1_losses)

    @property
    def stage2_epochs(self) -> int:
        return len(self.stage2_losses)


class EarlyStopping:
    """Stop training when the loss has not improved for ``patience`` epochs.

    When constructed with a ``module``, every improving epoch snapshots the
    module's weights; :meth:`restore` puts the best-loss weights back — so a
    stage that ran ``patience`` epochs past its optimum does not ship the
    plateau weights.
    """

    def __init__(self, patience: int = 5, min_delta: float = 1e-5, module: "Module | None" = None):
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.patience = patience
        self.min_delta = min_delta
        self.module = module
        self.best_loss = np.inf
        self.epochs_without_improvement = 0
        self.epochs_seen = 0
        self.best_epoch = 0
        self.best_state: dict[str, np.ndarray] | None = None

    def step(self, loss: float) -> bool:
        """Record one epoch's loss; return ``True`` if training should stop."""
        self.epochs_seen += 1
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.epochs_without_improvement = 0
            self.best_epoch = self.epochs_seen
            if self.module is not None:
                self.best_state = self.module.state_dict()
            return False
        self.epochs_without_improvement += 1
        return self.epochs_without_improvement >= self.patience

    def restore(self) -> bool:
        """Load the best-loss weights back into the module, if snapshotted."""
        if self.module is None or self.best_state is None:
            return False
        self.module.load_state_dict(self.best_state)
        return True

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat-array state for session checkpoints (includes best weights)."""
        state: dict[str, np.ndarray] = {
            "best_loss": np.asarray(self.best_loss, dtype=np.float64),
            "epochs_without_improvement": np.asarray(self.epochs_without_improvement, dtype=np.int64),
            "epochs_seen": np.asarray(self.epochs_seen, dtype=np.int64),
            "best_epoch": np.asarray(self.best_epoch, dtype=np.int64),
        }
        for name, value in (self.best_state or {}).items():
            state[f"best.{name}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        scalars = ("best_loss", "epochs_without_improvement", "epochs_seen", "best_epoch")
        missing = [key for key in scalars if key not in state]
        if missing:
            raise KeyError(f"EarlyStopping state is missing {missing}")
        self.best_loss = float(state["best_loss"])
        self.epochs_without_improvement = int(state["epochs_without_improvement"])
        self.epochs_seen = int(state["epochs_seen"])
        self.best_epoch = int(state["best_epoch"])
        best = {
            name[len("best."):]: value
            for name, value in state.items()
            if name.startswith("best.")
        }
        self.best_state = best or None


class TrainingSession:
    """Checkpointable driver of the two-stage AERO training loop.

    Parameters
    ----------
    model:
        The :class:`~repro.core.AeroModel` to train (any ablation variant).
    window_dataset:
        Training windows (:class:`~repro.data.windows.WindowDataset`).
    config:
        The :class:`~repro.core.AeroConfig` holding optimizer settings,
        epoch limits and the shuffling seed.
    validation_split:
        Fraction of the windows (the chronologically *last* ones) held out;
        their loss drives early stopping and best-weight selection.  ``0``
        (default) monitors the training loss, matching the paper's loop.
    checkpoint_path:
        Where ``run()`` writes its epoch-level checkpoints.  ``None``
        disables automatic checkpointing (``save_checkpoint(path)`` still
        works on demand).
    checkpoint_every:
        Write a checkpoint every this many epochs (default 1: every epoch).
    verbose:
        Log epoch lines at INFO level instead of DEBUG.
    """

    CHECKPOINT_FORMAT = "aero-training-session"
    CHECKPOINT_VERSION = 1

    def __init__(
        self,
        model: "AeroModel",
        window_dataset: "WindowDataset",
        config: "AeroConfig",
        *,
        validation_split: float = 0.0,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 1,
        verbose: bool = False,
    ):
        if not 0.0 <= validation_split < 1.0:
            raise ValueError(f"validation_split must be in [0, 1), got {validation_split}")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self.model = model
        self.config = config
        self.validation_split = float(validation_split)
        self.checkpoint_path = None if checkpoint_path is None else Path(checkpoint_path)
        self.checkpoint_every = checkpoint_every
        self.verbose = verbose

        if validation_split:
            self._train_windows, self._val_windows = window_dataset.split(validation_split)
        else:
            self._train_windows, self._val_windows = window_dataset, None
        self._window_dataset = window_dataset
        self._data_fingerprint: dict | None = None  # hashed lazily, see below
        # Stage-2 holdout reconstructions are constant (the temporal module is
        # frozen); computed once on first use, see _validation_loss.
        self._val_stage2_cache: list[tuple[np.ndarray, np.ndarray]] | None = None
        if verbose:
            _ensure_verbose_output()

        self.history = TrainingHistory()
        self._rng = np.random.default_rng(config.seed)
        self._stages = [s for s in (1, 2) if self._stage_module(s) is not None]
        self._cursor = 0          # index into self._stages
        self._epoch = 0           # epochs completed in the current stage
        self._stop = False        # early stop pending for the current stage
        self._done = False
        self._optimizer: Adam | None = None
        self._stopper: EarlyStopping | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def stage(self) -> int | None:
        """The stage (1 or 2) currently being trained, or ``None`` when done."""
        return None if self._done else self._stages[self._cursor]

    @property
    def epochs_completed(self) -> int:
        """Epochs completed in the current stage."""
        return self._epoch

    @property
    def num_train_windows(self) -> int:
        return len(self._train_windows)

    @property
    def num_val_windows(self) -> int:
        return 0 if self._val_windows is None else len(self._val_windows)

    def _log(self, message: str) -> None:
        logger.log(logging.INFO if self.verbose else logging.DEBUG, message)

    def _stage_module(self, stage: int):
        return self.model.temporal if stage == 1 else self.model.noise

    @property
    def data_fingerprint(self) -> dict:
        """Identify the training data so a checkpoint can refuse to resume
        over different data (which would otherwise silently skip training or
        continue a different trajectory).  Covers the series *and* the
        observation timestamps — the time-embedding features — and is hashed
        lazily: sessions that never checkpoint never pay for it."""
        if self._data_fingerprint is None:
            import hashlib

            dataset = self._window_dataset
            digest = hashlib.sha256(np.ascontiguousarray(dataset.series).tobytes())
            digest.update(np.ascontiguousarray(dataset.timestamps).tobytes())
            self._data_fingerprint = {
                "shape": list(dataset.series.shape),
                "windows": len(dataset),
                "digest": digest.hexdigest(),
            }
        return self._data_fingerprint

    def _max_epochs(self, stage: int) -> int:
        return self.config.max_epochs_stage1 if stage == 1 else self.config.max_epochs_stage2

    # ------------------------------------------------------------------
    # warm start
    # ------------------------------------------------------------------
    def warm_start_from(self, checkpoint: str | Path) -> None:
        """Initialise the model's weights from an existing checkpoint.

        ``checkpoint`` may be an :meth:`AeroDetector.save` artifact (weights
        under ``model.*`` keys) or a bare :func:`~repro.nn.save_module`
        archive.  This is the fine-tuning path for drifted stars: start from
        the previously published weights and train for a few epochs instead
        of from scratch.  Must be called before any epoch has run.
        """
        if self._epoch or self._cursor or self._done:
            raise RuntimeError("warm_start_from() must be called before training starts")
        checkpoint = Path(checkpoint)
        arrays = load_arrays(checkpoint)
        state = {
            name[len("model."):]: value
            for name, value in arrays.items()
            if name.startswith("model.")
        } or {name: value for name, value in arrays.items() if name != "meta"}
        try:
            self.model.load_state_dict(state)
        except (KeyError, ValueError) as error:
            raise type(error)(
                f"warm-start checkpoint {checkpoint} does not match the model: {error}"
            ) from error
        self._log(f"[session] warm-started weights from {checkpoint}")

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(
        self,
        epoch_budget: int | None = None,
        resume: bool = True,
        warm_start: str | Path | None = None,
    ) -> TrainingHistory:
        """Train until done (or until ``epoch_budget`` epochs have run).

        With ``resume=True`` (default) and an existing ``checkpoint_path``,
        the session first restores that checkpoint and continues from it —
        producing *bit-identical* final weights to an uninterrupted run.
        ``warm_start`` initialises a *fresh* session's weights from an
        existing detector artifact; it is ignored when a checkpoint is
        actually resumed (the checkpoint's weights win).  Returns the
        (possibly still growing) :class:`TrainingHistory`.
        """
        if epoch_budget is not None and epoch_budget < 1:
            raise ValueError("epoch_budget must be at least 1")
        fresh = not self._done and self._epoch == 0 and self._cursor == 0
        resuming = (
            resume
            and fresh
            and self.checkpoint_path is not None
            and self.checkpoint_path.exists()
        )
        if resuming:
            self.load_checkpoint(self.checkpoint_path)
        elif warm_start is not None and fresh:
            self.warm_start_from(warm_start)
        budget = np.inf if epoch_budget is None else epoch_budget
        if not self._done:
            self.model.train()
        while not self._done and budget > 0:
            budget -= self._advance()
        if self._done:
            self.model.eval()
        return self.history

    def _advance(self) -> int:
        """Run one epoch (returns 1) or perform one stage transition (returns 0)."""
        stage = self._stages[self._cursor]
        if self._optimizer is None:
            self._begin_stage(stage)
        if self._stop or self._epoch >= self._max_epochs(stage):
            self._finish_stage(stage)
            return 0

        # Telemetry resolves the *current* defaults per epoch (long-lived
        # sessions honour enable/disable immediately); epochs are seconds,
        # so the lookups are noise.
        started = time.perf_counter()
        with trace(f"training.stage{stage}"):
            with trace("training.epoch"):
                loss = self._train_epoch(stage)
            if self._val_windows is None:
                val_loss = None
            else:
                with trace("training.validation"):
                    val_loss = self._validation_loss(stage)
        registry = get_registry()
        registry.counter(
            "training_epochs_total", "Training epochs completed, by stage",
            labels=("stage",),
        ).labels(stage=str(stage)).inc()
        registry.histogram(
            "training_epoch_seconds", "Wall-clock duration of one training epoch"
        ).observe(time.perf_counter() - started)
        if stage == 1:
            self.history.stage1_losses.append(loss)
            if val_loss is not None:
                self.history.stage1_val_losses.append(val_loss)
        else:
            self.history.stage2_losses.append(loss)
            if val_loss is not None:
                self.history.stage2_val_losses.append(val_loss)
        self._epoch += 1
        monitored = loss if val_loss is None else val_loss
        self._stop = self._stopper.step(monitored)
        suffix = "" if val_loss is None else f", val = {val_loss:.6f}"
        self._log(f"[stage {stage}] epoch {self._epoch}: loss = {loss:.6f}{suffix}")
        if self.checkpoint_path is not None and self._epoch % self.checkpoint_every == 0:
            self.save_checkpoint(self.checkpoint_path)
        return 1

    def _begin_stage(self, stage: int) -> None:
        module = self._stage_module(stage)
        self._optimizer = Adam(module.parameters(), lr=self.config.learning_rate)
        self._stopper = EarlyStopping(self.config.patience, self.config.min_delta, module=module)
        if stage == 2 and self.model.noise.graph_mode == "dynamic":
            self.model.noise.reset_dynamic_state()

    def _finish_stage(self, stage: int) -> None:
        if self._stop:
            self._log(f"[stage {stage}] early stop at epoch {self._epoch}")
        restored = self._stopper.restore() if self._stopper is not None else False
        best_epoch = self._stopper.best_epoch if self._stopper is not None else 0
        if restored and best_epoch != self._epoch:
            self._log(f"[stage {stage}] restored best weights from epoch {best_epoch}")
        if stage == 1:
            self.history.stage1_best_epoch = best_epoch
        else:
            self.history.stage2_best_epoch = best_epoch
        self._optimizer = None
        self._stopper = None
        self._stop = False
        self._epoch = 0
        self._cursor += 1
        if self._cursor >= len(self._stages):
            self._done = True
            self.model.eval()
            if self.checkpoint_path is not None:
                self.save_checkpoint(self.checkpoint_path)

    # ------------------------------------------------------------------
    # epoch bodies (Algorithm 1)
    # ------------------------------------------------------------------
    def _train_epoch(self, stage: int) -> float:
        return self._stage1_epoch() if stage == 1 else self._stage2_epoch()

    def _stage1_epoch(self) -> float:
        model, config = self.model, self.config
        losses = []
        for batch in self._train_windows.batches(config.batch_size, shuffle=True, rng=self._rng):
            target = model._target(batch.long, batch.short)
            prediction = model.temporal_forward(
                batch.long, batch.short, batch.long_times, batch.short_times
            )
            loss = mse_loss(prediction, Tensor(target))
            self._optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.temporal.parameters(), config.grad_clip)
            self._optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def _stage2_epoch(self) -> float:
        model, config = self.model, self.config
        losses = []
        for batch in self._train_windows.batches(config.batch_size, shuffle=True, rng=self._rng):
            target = model._target(batch.long, batch.short)
            if model.temporal is not None:
                with no_grad():
                    reconstruction = model.temporal_forward(
                        batch.long, batch.short, batch.long_times, batch.short_times
                    ).data
            else:
                reconstruction = np.zeros_like(target)
            errors = target - reconstruction
            noise_prediction = model.noise_forward(errors, target)
            # loss_2 = || Y - Y_hat_1 - Y_hat_2 ||  (Eq. 16), with M1 frozen.
            loss = mse_loss(noise_prediction, Tensor(errors))
            self._optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.noise.parameters(), config.grad_clip)
            self._optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def _validation_loss(self, stage: int) -> float:
        """Holdout loss of the current stage (exact mean over all elements)."""
        model, config = self.model, self.config
        # Validation must not perturb training: run in eval mode and shield
        # the dynamic-graph smoothing state from the holdout forwards.
        dynamic = model.noise is not None and model.noise.graph_mode == "dynamic"
        saved_state = model.noise._dynamic_state if dynamic else None
        model.eval()
        total, count = 0.0, 0
        try:
            with no_grad():
                if stage == 1:
                    for batch in self._val_windows.batches(config.batch_size, shuffle=False):
                        target = model._target(batch.long, batch.short)
                        prediction = model.temporal_forward(
                            batch.long, batch.short, batch.long_times, batch.short_times
                        ).data
                        diff = prediction - target
                        total += float((diff * diff).sum())
                        count += diff.size
                else:
                    for target, errors in self._stage2_val_inputs():
                        noise_prediction = model.noise_forward(errors, target).data
                        diff = noise_prediction - errors
                        total += float((diff * diff).sum())
                        count += diff.size
        finally:
            model.train()
            if dynamic:
                model.noise._dynamic_state = saved_state
        return total / count if count else 0.0

    def _stage2_val_inputs(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-batch ``(target, errors)`` of the holdout, computed once.

        Stage 2 trains only the noise module while the temporal module stays
        frozen, so the holdout targets and stage-1 errors are identical every
        epoch; recomputing the transformer forward per validation pass would
        redo the most expensive part of validation for no change.  Must only
        be called in eval mode inside ``no_grad`` (see ``_validation_loss``).
        """
        if self._val_stage2_cache is None:
            model, config = self.model, self.config
            cache = []
            for batch in self._val_windows.batches(config.batch_size, shuffle=False):
                target = model._target(batch.long, batch.short)
                if model.temporal is not None:
                    reconstruction = model.temporal_forward(
                        batch.long, batch.short, batch.long_times, batch.short_times
                    ).data
                else:
                    reconstruction = np.zeros_like(target)
                cache.append((target, target - reconstruction))
            self._val_stage2_cache = cache
        return self._val_stage2_cache

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str | Path | None = None) -> Path:
        """Serialize the full training state into one ``.npz`` artifact.

        The checkpoint captures everything a bit-identical resume needs:
        model weights and non-parameter buffers (the dynamic-graph smoothing
        state), the active optimizer's moments, the early-stopping state
        including the best-weight snapshot, the RNG bit state that drives
        batch shuffling, the loss history and the loop position.
        """
        path = Path(path) if path is not None else self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path given (and the session has none configured)")
        from dataclasses import asdict

        meta = {
            "format": self.CHECKPOINT_FORMAT,
            "version": self.CHECKPOINT_VERSION,
            "config": asdict(self.config),
            "validation_split": self.validation_split,
            "cursor": self._cursor,
            "epoch": self._epoch,
            "stop": self._stop,
            "done": self._done,
            "rng": self._rng.bit_generator.state,
            "best_epochs": [self.history.stage1_best_epoch, self.history.stage2_best_epoch],
            "data": self.data_fingerprint,
        }
        arrays: dict[str, np.ndarray] = {
            "meta": np.array(json.dumps(meta)),
            "history.stage1": np.asarray(self.history.stage1_losses, dtype=np.float64),
            "history.stage2": np.asarray(self.history.stage2_losses, dtype=np.float64),
            "history.stage1_val": np.asarray(self.history.stage1_val_losses, dtype=np.float64),
            "history.stage2_val": np.asarray(self.history.stage2_val_losses, dtype=np.float64),
        }
        for name, value in self.model.state_dict().items():
            arrays[f"model.{name}"] = value
        if self.model.noise is not None and self.model.noise._dynamic_state is not None:
            arrays["buffers.noise.dynamic_state"] = self.model.noise._dynamic_state.copy()
        if self._optimizer is not None:
            for name, value in self._optimizer.state_dict().items():
                arrays[f"optimizer.{name}"] = value
        if self._stopper is not None:
            for name, value in self._stopper.state_dict().items():
                arrays[f"stopper.{name}"] = value
        return save_arrays(path, arrays)

    def load_checkpoint(self, path: str | Path) -> None:
        """Restore the state saved by :meth:`save_checkpoint`.

        The session must have been built over the same configuration and
        model architecture; mismatches raise :class:`ValueError` /
        :class:`KeyError` naming the checkpoint path.
        """
        from dataclasses import asdict

        path = Path(path)
        arrays = load_arrays(path)
        if "meta" not in arrays:
            raise ValueError(f"{path} is not a {self.CHECKPOINT_FORMAT} checkpoint (no metadata)")
        try:
            meta = json.loads(str(arrays["meta"]))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path} holds corrupt checkpoint metadata: {error}") from error
        if meta.get("format") != self.CHECKPOINT_FORMAT:
            raise ValueError(
                f"{path} is a {meta.get('format')!r} checkpoint, "
                f"expected {self.CHECKPOINT_FORMAT!r}"
            )
        if meta.get("version", 0) > self.CHECKPOINT_VERSION:
            raise ValueError(
                f"{path} was written by a newer checkpoint format "
                f"(version {meta['version']} > {self.CHECKPOINT_VERSION})"
            )
        if meta.get("config") != asdict(self.config):
            raise ValueError(
                f"checkpoint {path} was written with a different configuration; "
                "resume requires identical hyperparameters"
            )
        if float(meta.get("validation_split", 0.0)) != self.validation_split:
            raise ValueError(
                f"checkpoint {path} used validation_split="
                f"{meta.get('validation_split')}, session has {self.validation_split}"
            )
        if meta.get("data", self.data_fingerprint) != self.data_fingerprint:
            raise ValueError(
                f"checkpoint {path} was written for different training data "
                f"(stored {meta['data']['shape']}, session has "
                f"{self.data_fingerprint['shape']}); resuming would silently "
                "continue (or skip) training on the wrong series — train a "
                "fresh session, or warm-start from a detector artifact instead"
            )

        state = {
            name[len("model."):]: value
            for name, value in arrays.items()
            if name.startswith("model.")
        }
        try:
            self.model.load_state_dict(state)
        except (KeyError, ValueError) as error:
            raise type(error)(
                f"checkpoint {path} does not match the model architecture: {error}"
            ) from error

        self._cursor = int(meta["cursor"])
        self._epoch = int(meta["epoch"])
        self._stop = bool(meta["stop"])
        self._done = bool(meta["done"])
        # Seed is irrelevant (the generator state is overwritten from the
        # checkpoint on the next line) but an unseeded default_rng() would
        # still draw OS entropy for nothing.
        rng = np.random.default_rng(0)
        rng.bit_generator.state = meta["rng"]
        self._rng = rng

        self.history = TrainingHistory(
            stage1_losses=arrays["history.stage1"].tolist(),
            stage2_losses=arrays["history.stage2"].tolist(),
            stage1_val_losses=arrays["history.stage1_val"].tolist(),
            stage2_val_losses=arrays["history.stage2_val"].tolist(),
            stage1_best_epoch=int(meta["best_epochs"][0]),
            stage2_best_epoch=int(meta["best_epochs"][1]),
        )

        self._optimizer = None
        self._stopper = None
        if not self._done and self._cursor < len(self._stages):
            optimizer_state = {
                name[len("optimizer."):]: value
                for name, value in arrays.items()
                if name.startswith("optimizer.")
            }
            stopper_state = {
                name[len("stopper."):]: value
                for name, value in arrays.items()
                if name.startswith("stopper.")
            }
            if optimizer_state or stopper_state:
                self._begin_stage(self._stages[self._cursor])
                try:
                    if optimizer_state:
                        self._optimizer.load_state_dict(optimizer_state)
                    if stopper_state:
                        self._stopper.load_state_dict(stopper_state)
                except (KeyError, ValueError) as error:
                    raise type(error)(
                        f"checkpoint {path} holds incompatible optimizer/stopper state: {error}"
                    ) from error
        # Restore non-parameter buffers last: _begin_stage resets the
        # dynamic-graph smoothing state, and resume must keep the
        # checkpointed one to stay bit-identical.
        if self.model.noise is not None:
            buffered = arrays.get("buffers.noise.dynamic_state")
            self.model.noise._dynamic_state = None if buffered is None else buffered.copy()
        if self._done:
            self.model.eval()
        else:
            self.model.train()
        self._log(
            f"[session] resumed from {path}: stage {self.stage}, "
            f"{self._epoch} epoch(s) completed"
        )

    @classmethod
    def restore(
        cls,
        path: str | Path,
        model: "AeroModel",
        window_dataset: "WindowDataset",
        *,
        checkpoint_every: int = 1,
        verbose: bool = False,
    ) -> "TrainingSession":
        """Rebuild a session from a checkpoint written by :meth:`save_checkpoint`.

        The configuration (including the validation split) is read back from
        the checkpoint; ``model`` and ``window_dataset`` must match the ones
        the original session was built over.
        """
        path = Path(path)
        arrays = load_arrays(path)
        if "meta" not in arrays:
            raise ValueError(f"{path} is not a {cls.CHECKPOINT_FORMAT} checkpoint (no metadata)")
        meta = json.loads(str(arrays["meta"]))
        from ..core.config import AeroConfig

        config = AeroConfig(**meta["config"])
        session = cls(
            model,
            window_dataset,
            config,
            validation_split=float(meta.get("validation_split", 0.0)),
            checkpoint_path=path,
            checkpoint_every=checkpoint_every,
            verbose=verbose,
        )
        session.load_checkpoint(path)
        return session
