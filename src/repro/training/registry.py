"""Versioned on-disk registry of trained detector artifacts.

The bridge between the training fleet and the serving fleet: training
publishes ``AeroDetector.save()`` artifacts under a model name, serving
resolves the latest (or a pinned) version and loads it back — as a plain
detector, or compiled straight into the tape-free plans of
:mod:`repro.runtime` — and :meth:`ModelRegistry.deploy` hands it to a
running :class:`~repro.streaming.FleetManager` /
:class:`~repro.streaming.StreamingDetector` for a hot swap that keeps every
buffered window.

Layout (one directory per name, one immutable directory per version)::

    root/
      <name>/
        v0001/
          model.npz        # the AeroDetector.save() artifact
          manifest.json    # {"name", "version", "metadata", ...}
          calibration.npz  # optional per-star threshold state (see below)
          drift.npz        # optional drift-reference sketch (see below)
        v0002/
          ...

A version may additionally carry the serving fleet's **per-star threshold
calibration** (``ModelRegistry.publish(..., calibration=...)`` with a
:class:`repro.streaming.VectorizedIncrementalPOT`, a front-end exposing
``threshold_state()``, or a plain state dict).  The manifest records the
sidecar and its star count; :meth:`ModelRegistry.deploy` restores it into
the target front-end after the hot swap, so a redeployed fleet keeps its
adapted per-star thresholds instead of re-calibrating from train scores.

Since PR 7 a version may also carry the **drift-monitoring reference
sketch** (``publish(..., drift_reference=...)`` with a fitted
:class:`repro.obs.DriftMonitor`, a front-end exposing ``drift_state()``,
or its state dict): the per-star calibration-time score distribution the
:class:`~repro.obs.drift.DriftMonitor` compares live serving against.
``deploy`` restores it into targets that already monitor drift, so the
deployed model is watched against *its own* calibration snapshot, not the
previous model's.

Publishes are atomic at the directory level: the artifact is staged into a
hidden temp directory and ``rename``d into place, so a concurrently reading
server never observes a half-written version.
"""

from __future__ import annotations

import inspect
import json
import logging
import re
import shutil
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - imports only for type checkers
    from ..core.detector import AeroDetector
    from ..runtime.compiler import CompiledDetector

__all__ = ["ModelVersion", "ModelRegistry"]

logger = logging.getLogger("repro.training.registry")

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_PATTERN = re.compile(r"^v(\d{4,})$")


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published version of a named model."""

    name: str
    version: int
    path: Path                    # the version directory
    metadata: dict

    @property
    def artifact_path(self) -> Path:
        """The ``AeroDetector.save()`` artifact of this version."""
        return self.path / ModelRegistry.ARTIFACT

    @property
    def calibration_path(self) -> Path:
        """The per-star threshold-state sidecar of this version."""
        return self.path / ModelRegistry.CALIBRATION

    @property
    def has_calibration(self) -> bool:
        """Whether this version was published with per-star thresholds."""
        return self.calibration_path.exists()

    @property
    def drift_path(self) -> Path:
        """The drift-reference sidecar of this version."""
        return self.path / ModelRegistry.DRIFT

    @property
    def has_drift_reference(self) -> bool:
        """Whether this version was published with a drift-reference sketch."""
        return self.drift_path.exists()

    @property
    def label(self) -> str:
        return f"{self.name}@v{self.version:04d}"


class ModelRegistry:
    """Filesystem-backed versioned store of detector checkpoints."""

    ARTIFACT = "model.npz"
    MANIFEST = "manifest.json"
    CALIBRATION = "calibration.npz"
    DRIFT = "drift.npz"
    _PUBLISH_RETRIES = 16

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All model names with at least one published version."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            # Skip foreign directories (.git, caches, staging debris, ...).
            if entry.is_dir() and _NAME_PATTERN.match(entry.name) and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """Published version numbers of ``name``, ascending."""
        model_dir = self.root / self._check_name(name)
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_PATTERN.match(entry.name)
            if match and entry.is_dir() and (entry / self.ARTIFACT).exists():
                found.append(int(match.group(1)))
        return sorted(found)

    def get(self, name: str, version: int | None = None) -> ModelVersion:
        """Resolve one published version (default: the latest)."""
        name = self._check_name(name)
        available = self.versions(name)
        if not available:
            raise KeyError(f"registry has no published versions of {name!r}")
        if version is None:
            version = available[-1]
        elif version not in available:
            raise KeyError(
                f"registry has no version {version} of {name!r} (available: {available})"
            )
        path = self.root / name / f"v{version:04d}"
        manifest_path = path / self.MANIFEST
        metadata = {}
        if manifest_path.exists():
            metadata = json.loads(manifest_path.read_text()).get("metadata", {})
        return ModelVersion(name=name, version=version, path=path, metadata=metadata)

    def latest(self, name: str) -> ModelVersion:
        """The most recently published version of ``name``."""
        return self.get(name)

    def load_detector(self, name: str, version: int | None = None) -> "AeroDetector":
        """Load a published version back into a scoring-ready detector."""
        from ..core.detector import AeroDetector

        return AeroDetector.load(self.get(name, version).artifact_path)

    def load_compiled(
        self, name: str, version: int | None = None, dtype="float64"
    ) -> "CompiledDetector":
        """Load a published version and compile it into tape-free plans."""
        return self.load_detector(name, version).compile(dtype=dtype)

    def load_calibration(self, name: str, version: int | None = None):
        """Load a version's per-star threshold state, ready to serve.

        Returns a :class:`repro.streaming.VectorizedIncrementalPOT` restored
        bit-for-bit from the published ``calibration.npz`` — thresholds,
        excess sets, observation counts and re-fit cadence intact, no
        re-calibration.  Raises :class:`KeyError` when the version was
        published without calibration.
        """
        from ..streaming.vector_pot import VectorizedIncrementalPOT

        resolved = self.get(name, version)
        return VectorizedIncrementalPOT.from_state_dict(self._read_calibration_state(resolved))

    @staticmethod
    def _read_calibration_state(resolved: ModelVersion) -> dict:
        if not resolved.has_calibration:
            raise KeyError(f"{resolved.label} was published without per-star calibration")
        with np.load(resolved.calibration_path) as archive:
            return {key: archive[key] for key in archive.files}

    def load_drift_reference(self, name: str, version: int | None = None):
        """Load a version's drift-reference sketch as a ready monitor.

        Returns a :class:`repro.obs.DriftMonitor` rebuilt from the published
        ``drift.npz`` — the calibration-time reference distributions and
        hysteresis settings intact, live sketches fresh.  Raises
        :class:`KeyError` when the version was published without one.
        """
        from ..obs.drift import DriftMonitor

        resolved = self.get(name, version)
        return DriftMonitor.from_state_dict(self._read_drift_state(resolved))

    @staticmethod
    def _read_drift_state(resolved: ModelVersion) -> dict:
        if not resolved.has_drift_reference:
            raise KeyError(f"{resolved.label} was published without a drift reference")
        with np.load(resolved.drift_path) as archive:
            return {key: archive[key] for key in archive.files}

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        source: "AeroDetector | str | Path",
        metadata: dict | None = None,
        calibration=None,
        drift_reference=None,
    ) -> ModelVersion:
        """Publish a fitted detector (or an existing artifact) as a new version.

        ``source`` is either a fitted :class:`~repro.core.AeroDetector`
        (saved into the registry) or a path to an ``AeroDetector.save()``
        artifact (copied in).  ``calibration`` optionally snapshots per-star
        threshold state alongside the model: a
        :class:`repro.streaming.VectorizedIncrementalPOT`, any serving
        front-end exposing ``threshold_state()`` (a per-star
        :class:`~repro.streaming.FleetManager` or
        :class:`~repro.streaming.StreamingDetector`), or a plain state
        dict.  ``drift_reference`` likewise snapshots the drift-monitoring
        reference sketch: a fitted :class:`repro.obs.DriftMonitor`, a
        front-end exposing ``drift_state()``, or its state dict.  Returns
        the new :class:`ModelVersion`.
        """
        name = self._check_name(name)
        metadata = dict(metadata or {})
        state = self._resolve_calibration(calibration)
        drift_state = self._resolve_drift_reference(drift_reference)
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)

        for _attempt in range(self._PUBLISH_RETRIES):
            # Re-reading the published versions is the whole retry story: a
            # lost race means the winner's directory is now visible, so the
            # next read already lands one past it.  (Adding the attempt
            # index on top double-advanced and left permanent gaps in the
            # version sequence.)
            version = (self.versions(name) or [0])[-1] + 1
            # Publisher-unique staging: concurrent publishers must never
            # share (or clean up) each other's in-flight directories.
            staging = Path(tempfile.mkdtemp(prefix=".staging-", dir=model_dir))
            try:
                self._write_artifact(source, staging / self.ARTIFACT)
                manifest = {
                    "format": "aero-model-version",
                    "name": name,
                    "version": version,
                    "artifact": self.ARTIFACT,
                    "metadata": metadata,
                }
                if state is not None:
                    np.savez_compressed(staging / self.CALIBRATION, **state)
                    manifest["calibration"] = self.CALIBRATION
                    manifest["calibration_stars"] = int(
                        np.asarray(state["thresholds"]).size
                    )
                if drift_state is not None:
                    np.savez_compressed(staging / self.DRIFT, **drift_state)
                    manifest["drift_reference"] = self.DRIFT
                    manifest["drift_stars"] = int(
                        np.asarray(drift_state["ref_probs"]).shape[0]
                    )
                (staging / self.MANIFEST).write_text(json.dumps(manifest, indent=2))
            except Exception:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            try:
                staging.rename(model_dir / f"v{version:04d}")
            except OSError:
                # Lost a publish race for this version number: clean the
                # staging directory and try the next slot.
                shutil.rmtree(staging, ignore_errors=True)
                continue
            published = self.get(name, version)
            get_registry().counter(
                "registry_publishes_total", "Model versions published into registries"
            ).inc()
            logger.info("[registry] published %s -> %s", published.label, published.path)
            return published
        raise RuntimeError(
            f"could not publish {name!r}: lost {self._PUBLISH_RETRIES} version races in a row"
        )

    @staticmethod
    def _resolve_calibration(calibration) -> dict | None:
        """Normalise a publishable calibration into a state dict of arrays."""
        if calibration is None:
            return None
        if isinstance(calibration, dict):
            state = calibration
        elif hasattr(calibration, "state_dict"):
            state = calibration.state_dict()
        elif hasattr(calibration, "threshold_state"):
            state = calibration.threshold_state()
            if state is None:
                raise ValueError(
                    "the serving front-end has no per-star threshold state to publish "
                    "(adaptive per-star thresholds are not enabled on it)"
                )
        else:
            raise TypeError(
                "calibration must be a VectorizedIncrementalPOT, a front-end with "
                f"threshold_state(), or a state dict — got {type(calibration).__name__}"
            )
        if "thresholds" not in state:
            raise ValueError("calibration state is missing its 'thresholds' array")
        return state

    @staticmethod
    def _resolve_drift_reference(drift_reference) -> dict | None:
        """Normalise a publishable drift reference into a state dict of arrays."""
        if drift_reference is None:
            return None
        if isinstance(drift_reference, dict):
            state = drift_reference
        elif hasattr(drift_reference, "state_dict"):
            state = drift_reference.state_dict()
        elif hasattr(drift_reference, "drift_state"):
            state = drift_reference.drift_state()
            if state is None:
                raise ValueError(
                    "the serving front-end has no drift monitor attached, "
                    "so there is no reference sketch to publish"
                )
        else:
            raise TypeError(
                "drift_reference must be a fitted DriftMonitor, a front-end with "
                f"drift_state(), or a state dict — got {type(drift_reference).__name__}"
            )
        if "ref_probs" not in state:
            raise ValueError("drift reference state is missing its 'ref_probs' array")
        return state

    def _write_artifact(self, source, destination: Path) -> None:
        if isinstance(source, (str, Path)):
            source = Path(source)
            if not source.exists():
                raise FileNotFoundError(f"no detector artifact at {source}")
            shutil.copyfile(source, destination)
            return
        save = getattr(source, "save", None)
        if save is None:
            raise TypeError(
                "source must be a fitted AeroDetector or a path to a saved artifact, "
                f"got {type(source).__name__}"
            )
        save(destination)

    # ------------------------------------------------------------------
    # serving integration
    # ------------------------------------------------------------------
    def deploy(
        self,
        name: str,
        target,
        version: int | None = None,
        dtype=None,
        restore_calibration: bool = True,
        restore_drift: bool = True,
        threshold: float | None = None,
    ):
        """Hot-swap a published version into a running serving front-end.

        ``target`` is anything exposing ``swap_model`` — a
        :class:`~repro.streaming.FleetManager` or
        :class:`~repro.streaming.StreamingDetector`.  With ``dtype`` given,
        the version is compiled first and the target serves the tape-free
        plans; otherwise the target keeps its current backend kind.

        When the version was published with per-star calibration and the
        target is *already* serving adaptive per-star thresholds
        (``restore_calibration`` left on), the published threshold state is
        restored after the swap: the target serves the published per-star
        thresholds — excess sets, observation counts and re-fit cadence
        intact — instead of re-calibrating from the new model's train
        scores.  A target deliberately running the frozen global threshold
        is left alone (enable per-star mode, or call
        ``load_threshold_state`` yourself, to opt in).  Likewise, when the
        version carries a drift-reference sketch and the target already
        monitors drift (``restore_drift`` left on), the published reference
        replaces the target's after the swap — the new model is watched
        against its own calibration snapshot, not the old model's.  A
        target without a drift monitor is left alone (attach one, or call
        ``load_drift_state`` yourself, to opt in).

        The **global serving threshold** across the swap: an explicit
        ``threshold=`` wins; otherwise a global-mode target picks up the
        version's published ``metadata["threshold"]`` when one exists.
        With neither, ``swap_model`` resets the target to the new model's
        train-score calibration *by design* — and if that silently discards
        a serving-side override (the target's current threshold differs
        from the live model's own calibration), ``deploy`` emits a
        :class:`RuntimeWarning` instead of letting the fleet revert without
        a trace.

        Star-count mismatches and corrupt sidecars are rejected *before*
        the swap; a sidecar restore that fails *after* the swap rolls the
        previous model (and its threshold) back in, so the target always
        serves a consistent model+calibration pair — old or new, never
        mixed.  Returns the deployed :class:`ModelVersion`.
        """
        resolved = self.get(name, version)
        target_stars = self._target_star_count(target)
        state = None
        if (
            restore_calibration
            and resolved.has_calibration
            and hasattr(target, "load_threshold_state")
            and getattr(target, "threshold_state", lambda: None)() is not None
        ):
            state = self._read_calibration_state(resolved)
            published_stars = int(np.asarray(state["thresholds"]).size)
            if target_stars is not None and published_stars != target_stars:
                raise ValueError(
                    f"{resolved.label} calibration covers {published_stars} stars but the "
                    f"target serves {target_stars}; aborting before the model swap"
                )
            # Parse eagerly: a corrupt sidecar must fail here, not after the
            # target is already serving the new model.
            from ..streaming.vector_pot import VectorizedIncrementalPOT

            VectorizedIncrementalPOT.from_state_dict(state)
        drift_state = None
        if (
            restore_drift
            and resolved.has_drift_reference
            and hasattr(target, "load_drift_state")
            and getattr(target, "drift_state", lambda: None)() is not None
        ):
            drift_state = self._read_drift_state(resolved)
            published_stars = int(np.asarray(drift_state["ref_probs"]).shape[0])
            if target_stars is not None and published_stars != target_stars:
                raise ValueError(
                    f"{resolved.label} drift reference covers {published_stars} stars but "
                    f"the target serves {target_stars}; aborting before the model swap"
                )
            from ..obs.drift import DriftMonitor

            DriftMonitor.from_state_dict(drift_state)
        swap_threshold = self._resolve_deploy_threshold(resolved, target, threshold)
        prior_detector = getattr(target, "detector", None)
        prior_threshold = getattr(target, "threshold", None)
        prior_version = getattr(target, "model_version", None)
        if dtype is not None:
            model = self.load_compiled(name, resolved.version, dtype=dtype)
        else:
            model = self.load_detector(name, resolved.version)
        self._swap(target, model, swap_threshold)
        try:
            if state is not None:
                target.load_threshold_state(state)
                logger.info("[registry] restored per-star thresholds from %s", resolved.label)
            if drift_state is not None:
                target.load_drift_state(drift_state)
                logger.info("[registry] restored drift reference from %s", resolved.label)
        except Exception:
            # Never leave the target serving the new model against the old
            # calibration (or half of each): swap the previous model back so
            # the pair stays consistent, then surface the failure.
            if prior_detector is not None:
                self._swap(target, prior_detector, prior_threshold)
                if hasattr(target, "model_version"):
                    target.model_version = prior_version
                logger.error(
                    "[registry] deploy of %s aborted: sidecar restore failed after the "
                    "swap; previous model swapped back",
                    resolved.label,
                )
            raise
        # Stamp the serving version for health snapshots — swap_model itself
        # cleared it, since a raw-source swap has no registry identity.
        if hasattr(target, "model_version"):
            target.model_version = resolved.label
        get_registry().counter(
            "registry_deploys_total", "Model versions hot-deployed into serving front-ends"
        ).inc()
        logger.info("[registry] deployed %s into %s", resolved.label, type(target).__name__)
        return resolved

    @staticmethod
    def _target_star_count(target) -> int | None:
        """How many stars the serving target covers, ``None`` when unknown.

        ``num_stars`` wins over ``num_variates``; both are tested with
        ``is not None`` so a malformed target reporting zero stars is a
        loud mismatch against any published sidecar, not silently treated
        as "no star count available".
        """
        stars = getattr(target, "num_stars", None)
        if stars is None:
            stars = getattr(target, "num_variates", None)
        return None if stars is None else int(stars)

    @staticmethod
    def _resolve_deploy_threshold(resolved: ModelVersion, target, threshold) -> float | None:
        """The global threshold the swap should install, or ``None``.

        Precedence: explicit ``threshold=`` argument, then the version's
        published ``metadata["threshold"]`` (global-mode targets only).
        When neither exists but the target is running a serving-side
        override — its current global threshold differs from the live
        model's own train calibration — warn that the swap is about to
        reset it, so the silent-revert failure mode of PR 5's by-design
        ``swap_model`` reset is at least visible.
        """
        if threshold is not None:
            return float(threshold)
        if getattr(target, "threshold_mode", "global") != "global":
            return None
        published = resolved.metadata.get("threshold")
        if published is not None:
            return float(published)
        current = getattr(target, "threshold", None)
        detector = getattr(target, "detector", None)
        calibrated = getattr(detector, "threshold", None)
        if current is None or not callable(calibrated):
            return None
        try:
            train_threshold = float(calibrated())
        except Exception:
            return None
        if float(current) != train_threshold:
            message = (
                f"deploying {resolved.label} resets the target's serving threshold "
                f"override ({float(current):.6g}) to the new model's train calibration; "
                "pass deploy(..., threshold=...) or publish the version with "
                'metadata={"threshold": ...} to carry one across the swap'
            )
            warnings.warn(message, RuntimeWarning, stacklevel=3)
            logger.warning("[registry] %s", message)
        return None

    @staticmethod
    def _swap(target, model, threshold: float | None) -> None:
        """``swap_model`` with the threshold applied atomically when possible.

        :class:`~repro.streaming.FleetManager` accepts the threshold as a
        swap argument; front-ends without the parameter (e.g.
        :class:`~repro.streaming.StreamingDetector`) get it assigned right
        after the swap instead.
        """
        if threshold is None:
            target.swap_model(model)
            return
        if "threshold" in inspect.signature(target.swap_model).parameters:
            target.swap_model(model, threshold=float(threshold))
            return
        target.swap_model(model)
        target.threshold = float(threshold)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name or ""):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', '_' or '-' "
                "(must not start with a separator)"
            )
        return name
