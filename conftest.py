"""Pytest bootstrap: make ``src/`` importable without installation.

This keeps the test and benchmark suites runnable in fully offline
environments where an editable install may not be possible.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# The ``slow`` benchmark marker is registered in pyproject.toml
# ([tool.pytest.ini_options]); deselect in CI with ``-m "not slow"``.
